#include "wsq/control/switching_controller.h"

#include <cmath>

namespace wsq {
namespace {

/// Paper semantics: "returns 1 if its argument is positive and -1
/// otherwise" — zero maps to -1.
int PaperSign(double v) { return v > 0.0 ? 1 : -1; }

/// Guards the ȳ_{k-1} denominator of Eq. (3) against degenerate
/// measurements.
constexpr double kMinDenominator = 1e-12;

}  // namespace

std::string_view GainModeName(GainMode mode) {
  switch (mode) {
    case GainMode::kConstant:
      return "constant_gain";
    case GainMode::kAdaptive:
      return "adaptive_gain";
  }
  return "unknown";
}

Status SwitchingConfig::Validate() const {
  if (b1 <= 0.0) return Status::InvalidArgument("b1 must be positive");
  if (b2 <= 0.0) return Status::InvalidArgument("b2 must be positive");
  if (dither_factor < 0.0) {
    return Status::InvalidArgument("dither_factor must be >= 0");
  }
  if (averaging_horizon < 1) {
    return Status::InvalidArgument("averaging_horizon must be >= 1");
  }
  if (!limits.Valid()) {
    return Status::InvalidArgument("block size limits invalid");
  }
  if (initial_block_size < 1) {
    return Status::InvalidArgument("initial_block_size must be >= 1");
  }
  return Status::Ok();
}

SwitchingExtremumController::SwitchingExtremumController(
    const SwitchingConfig& config)
    : config_(config),
      gain_mode_(config.gain_mode),
      rng_(config.seed),
      window_x_(static_cast<size_t>(config.averaging_horizon)),
      window_y_(static_cast<size_t>(config.averaging_horizon)) {
  command_ = static_cast<double>(initial_block_size());
}

int64_t SwitchingExtremumController::NextBlockSize(double response_time_ms) {
  // Eq. (2): every raw measurement advances the sliding means
  // {x̄_k, ȳ_k} over the last n (input, output) pairs, and each
  // measurement triggers one adaptivity step.
  window_x_.Add(static_cast<double>(config_.limits.Clamp(command_)));
  window_y_.Add(response_time_ms);
  const double avg_x = window_x_.Mean();
  const double avg_y = window_y_.Mean();
  ++steps_;
  avg_x_history_.push_back(avg_x);

  if (!has_prev_) {
    // First adaptivity step: no (Δx̄, Δȳ) yet — grow by b1 (paper III-A),
    // unless a supervisor asked to hold position after a delta reset.
    has_prev_ = true;
    prev_avg_x_ = avg_x;
    prev_avg_y_ = avg_y;
    if (hold_next_first_step_) {
      hold_next_first_step_ = false;
      last_gain_ = 0.0;
      // Apply dither only, so fresh deltas can form around the held point.
      const double d =
          config_.dither_factor > 0.0
              ? config_.dither_factor * rng_.Gaussian(0.0, 1.0)
              : 0.0;
      command_ = static_cast<double>(config_.limits.Clamp(command_ + d));
    } else {
      last_gain_ = config_.b1;
      command_ =
          static_cast<double>(config_.limits.Clamp(command_ + config_.b1));
    }
    return config_.limits.Clamp(command_);
  }

  const double dx = avg_x - prev_avg_x_;
  const double dy = avg_y - prev_avg_y_;
  int direction = PaperSign(dy * dx);

  // Anti-windup at the limits: pinned at a bound, Δx̄ goes to zero and
  // the sign convention (sign(0) = -1, i.e. "grow") would push into the
  // bound forever. Bounce instead, so the controller keeps probing the
  // feasible side; the *applied* direction is what enters the history
  // the hybrid criterion reads.
  const int64_t current = config_.limits.Clamp(command_);
  if (current == config_.limits.max_size && direction < 0) {
    direction = 1;  // cannot grow further: probe downward
  } else if (current == config_.limits.min_size && direction > 0) {
    direction = -1;  // cannot shrink further: probe upward
  }
  sign_history_.push_back(direction);

  // Eq. (1) gain g: constant b1, or Eq. (3) — proportional to the product
  // of the relative performance change and the block-size change.
  double gain = config_.b1;
  if (gain_mode_ == GainMode::kAdaptive) {
    const double denom = std::max(std::fabs(prev_avg_y_), kMinDenominator);
    gain = config_.b2 * (std::fabs(dy) / denom) * std::fabs(dx);
  }
  last_gain_ = gain;

  // Dither d(k) = df * w(k), w ~ N(0,1): keeps probing the neighborhood
  // so a moving optimum stays detectable.
  const double dither =
      config_.dither_factor > 0.0
          ? config_.dither_factor * rng_.Gaussian(0.0, 1.0)
          : 0.0;

  prev_avg_x_ = avg_x;
  prev_avg_y_ = avg_y;
  command_ = static_cast<double>(
      config_.limits.Clamp(command_ - gain * direction + dither));
  return config_.limits.Clamp(command_);
}

void SwitchingExtremumController::Reset() {
  gain_mode_ = config_.gain_mode;
  rng_ = Random(config_.seed);
  command_ = static_cast<double>(initial_block_size());
  window_x_.Clear();
  window_y_.Clear();
  has_prev_ = false;
  hold_next_first_step_ = false;
  prev_avg_x_ = prev_avg_y_ = 0.0;
  steps_ = 0;
  last_gain_ = 0.0;
  sign_history_.clear();
  avg_x_history_.clear();
}

std::string SwitchingExtremumController::name() const {
  return std::string(GainModeName(config_.gain_mode));
}

void SwitchingExtremumController::ClearHistories() {
  sign_history_.clear();
  avg_x_history_.clear();
}

void SwitchingExtremumController::set_command(double block_size) {
  command_ = static_cast<double>(config_.limits.Clamp(block_size));
}

void SwitchingExtremumController::ResetDeltas(bool hold_position) {
  window_x_.Clear();
  window_y_.Clear();
  has_prev_ = false;
  hold_next_first_step_ = hold_position;
}

int64_t CountSignSwitches(const std::vector<int>& signs) {
  int64_t switches = 0;
  for (size_t i = 1; i < signs.size(); ++i) {
    if (signs[i] != signs[i - 1]) ++switches;
  }
  return switches;
}

StateSnapshot SwitchingExtremumController::DebugState() const {
  StateSnapshot snapshot = Controller::DebugState();
  snapshot.Add("gain_mode", GainModeName(gain_mode_));
  snapshot.Add("gain", last_gain_);
  snapshot.Add("b1", config_.b1);
  snapshot.Add("b2", config_.b2);
  snapshot.Add("dither_factor", config_.dither_factor);
  snapshot.Add("averaging_horizon", config_.averaging_horizon);
  snapshot.Add("command", command_);
  snapshot.Add("sign_switches", CountSignSwitches(sign_history_));
  if (!sign_history_.empty()) {
    snapshot.Add("last_sign", sign_history_.back());
  }
  return snapshot;
}

}  // namespace wsq
