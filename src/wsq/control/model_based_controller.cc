#include "wsq/control/model_based_controller.h"

#include <cmath>

#include "wsq/common/logging.h"

namespace wsq {

std::string_view IdentificationModelName(IdentificationModel model) {
  switch (model) {
    case IdentificationModel::kQuadratic:
      return "quadratic";
    case IdentificationModel::kParabolic:
      return "parabolic";
  }
  return "unknown";
}

Status ModelBasedConfig::Validate() const {
  if (num_samples < 3) {
    return Status::InvalidArgument(
        "num_samples must be >= 3 (3 model parameters)");
  }
  if (samples_per_size < 1) {
    return Status::InvalidArgument("samples_per_size must be >= 1");
  }
  if (!limits.Valid()) {
    return Status::InvalidArgument("block size limits invalid");
  }
  if (reidentify_deviation < 0.0) {
    return Status::InvalidArgument("reidentify_deviation must be >= 0");
  }
  if (reidentify_patience < 1) {
    return Status::InvalidArgument("reidentify_patience must be >= 1");
  }
  return Status::Ok();
}

int64_t AnalyticOptimum(IdentificationModel model,
                        const std::vector<double>& params,
                        const BlockSizeLimits& limits, bool* failed) {
  *failed = false;
  if (params.size() != 3) {
    *failed = true;
    return limits.min_size;
  }
  double optimum = 0.0;
  switch (model) {
    case IdentificationModel::kQuadratic: {
      const double a1 = params[0];
      const double b1 = params[1];
      if (a1 <= 0.0) {
        // No interior minimum: the bowl opens downward or is flat. A
        // monotonically decreasing fit means "bigger is better" up to the
        // limit; a rising fit means the lower limit. Either way the paper
        // treats a non-concave-capturing fit as usable only when the
        // derivative picks a limit, so choose by the slope at midrange.
        const double mid =
            0.5 * static_cast<double>(limits.min_size + limits.max_size);
        const double slope = 2.0 * a1 * mid + b1;
        if (a1 == 0.0 && b1 != 0.0) {
          return b1 < 0.0 ? limits.max_size : limits.min_size;
        }
        *failed = true;
        return slope < 0.0 ? limits.max_size : limits.min_size;
      }
      optimum = -b1 / (2.0 * a1);
      break;
    }
    case IdentificationModel::kParabolic: {
      const double a2 = params[0];
      const double b2 = params[1];
      if (a2 <= 0.0 || b2 <= 0.0) {
        // y' = -a2/x^2 + b2 never vanishes on x > 0: the model failed to
        // capture the trade-off. The paper observes such runs "select the
        // lower limit value" (when b2 <= 0 the fit says bigger is always
        // better, so the upper limit).
        *failed = true;
        return b2 <= 0.0 ? limits.max_size : limits.min_size;
      }
      optimum = std::sqrt(a2 / b2);
      break;
    }
  }
  if (!std::isfinite(optimum)) {
    *failed = true;
    return limits.min_size;
  }
  return limits.Clamp(optimum);
}

ModelBasedController::ModelBasedController(const ModelBasedConfig& config)
    : config_(config) {
  // Evenly distributed sample sizes over the whole search space,
  // inclusive of both limits (paper Section IV-A).
  const int m = config_.num_samples;
  const double lo = static_cast<double>(config_.limits.min_size);
  const double hi = static_cast<double>(config_.limits.max_size);
  sample_sizes_.reserve(m);
  for (int i = 0; i < m; ++i) {
    const double frac =
        m == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(m - 1);
    sample_sizes_.push_back(config_.limits.Clamp(lo + frac * (hi - lo)));
  }
  command_ = sample_sizes_.front();
}

int64_t ModelBasedController::initial_block_size() const {
  return sample_sizes_.front();
}

int64_t ModelBasedController::NextBlockSize(double response_time_ms) {
  if (identified_.has_value()) {
    // Identification done: fixed at the estimate until the query ends,
    // unless the deviation monitor decides the model went stale.
    if (config_.reidentify_deviation > 0.0) {
      MaybeReidentify(response_time_ms);
    }
    return command_;
  }

  current_sum_ += response_time_ms;
  ++measurements_at_current_;
  if (measurements_at_current_ < config_.samples_per_size) {
    return command_;  // keep measuring this sample size
  }

  // This sample size is finished.
  sampled_x_.push_back(static_cast<double>(sample_sizes_[sample_index_]));
  sampled_y_.push_back(current_sum_ /
                       static_cast<double>(measurements_at_current_));
  current_sum_ = 0.0;
  measurements_at_current_ = 0;
  ++steps_;
  ++sample_index_;

  if (sample_index_ < sample_sizes_.size()) {
    command_ = sample_sizes_[sample_index_];
    return command_;
  }

  RunIdentification();
  return command_;
}

void ModelBasedController::RunIdentification() {
  IdentifiedModel out;
  out.model = config_.model;

  Result<FitResult> fit =
      config_.model == IdentificationModel::kQuadratic
          ? FitQuadratic(sampled_x_, sampled_y_)
          : FitParabolic(sampled_x_, sampled_y_);
  if (!fit.ok()) {
    // Numerically singular fit (e.g. degenerate samples): treat exactly
    // like a model failure and fall to the lower limit.
    WSQ_LOG(kWarning) << "model identification LS failed: "
                      << fit.status().ToString();
    out.failed = true;
    out.optimum = config_.limits.min_size;
  } else {
    out.fit = fit.value();
    out.optimum = AnalyticOptimum(config_.model, out.fit.params,
                                  config_.limits, &out.failed);
  }
  command_ = out.optimum;
  identified_ = std::move(out);
  ++steps_;  // the fit itself counts as one decision step
}

bool ModelBasedController::MaybeReidentify(double response_time_ms) {
  // Predicted per-tuple cost of the fitted model at the held size.
  const IdentifiedModel& model = *identified_;
  if (model.failed || model.fit.params.size() != 3) {
    return false;  // nothing trustworthy to compare against
  }
  const double x = static_cast<double>(command_);
  const auto& p = model.fit.params;
  const double predicted =
      model.model == IdentificationModel::kQuadratic
          ? p[0] * x * x + p[1] * x + p[2]
          : p[0] / x + p[1] * x + p[2];
  if (predicted <= 0.0) return false;

  const double deviation =
      std::fabs(response_time_ms - predicted) / predicted;
  if (deviation <= config_.reidentify_deviation) {
    consecutive_misfits_ = 0;
    return false;
  }
  if (++consecutive_misfits_ < config_.reidentify_patience) return false;

  // The environment no longer matches the model: rerun the LS from
  // scratch (paper Section IV's suggested heuristic).
  WSQ_LOG(kInfo) << "model deviation " << deviation
                 << " persisted; re-identifying";
  consecutive_misfits_ = 0;
  ++reidentifications_;
  sample_index_ = 0;
  measurements_at_current_ = 0;
  current_sum_ = 0.0;
  sampled_x_.clear();
  sampled_y_.clear();
  identified_.reset();
  command_ = sample_sizes_.front();
  return true;
}

Result<IdentifiedModel> ModelBasedController::identified_model() const {
  if (!identified_.has_value()) {
    return Status::FailedPrecondition("identification not complete yet");
  }
  return *identified_;
}

void ModelBasedController::Reset() {
  sample_index_ = 0;
  measurements_at_current_ = 0;
  current_sum_ = 0.0;
  sampled_x_.clear();
  sampled_y_.clear();
  identified_.reset();
  command_ = sample_sizes_.front();
  steps_ = 0;
  consecutive_misfits_ = 0;
  reidentifications_ = 0;
}

std::string ModelBasedController::name() const {
  return "model_" + std::string(IdentificationModelName(config_.model));
}

StateSnapshot ModelBasedController::DebugState() const {
  StateSnapshot snapshot = Controller::DebugState();
  snapshot.Add("model", IdentificationModelName(config_.model));
  snapshot.Add("identification_complete", identified_.has_value());
  snapshot.Add("command", command_);
  snapshot.Add("reidentifications", reidentifications_);
  if (identified_.has_value()) {
    snapshot.Add("optimum", identified_->optimum);
    snapshot.Add("fit_failed", identified_->failed);
    snapshot.Add("fit_rmse", identified_->fit.rmse);
    snapshot.Add("fit_r_squared", identified_->fit.r_squared);
    for (size_t i = 0; i < identified_->fit.params.size(); ++i) {
      snapshot.Add("fit_param_" + std::to_string(i),
                   identified_->fit.params[i]);
    }
  } else {
    snapshot.Add("sample_index", static_cast<int64_t>(sample_index_));
    snapshot.Add("num_samples",
                 static_cast<int64_t>(sample_sizes_.size()));
  }
  return snapshot;
}

}  // namespace wsq
