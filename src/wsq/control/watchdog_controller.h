#ifndef WSQ_CONTROL_WATCHDOG_CONTROLLER_H_
#define WSQ_CONTROL_WATCHDOG_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wsq/control/controller.h"

namespace wsq {

/// Divergence-watchdog knobs. The defaults make the watchdog a pure
/// safety net: it only intervenes on outputs that are unusable anyway
/// (NaN/Inf/out-of-range), and resets the wrapped controller after
/// sustained divergence.
struct WatchdogConfig {
  /// Range a sane `NextBlockSize` output must fall in; anything outside
  /// (or non-finite measurements on the way in) is clamped and counted.
  BlockSizeLimits limits;

  /// Divergence detector: when at least `max_clamps_in_window` of the
  /// last `window` decisions had to be clamped, the inner controller is
  /// Reset() — the paper's periodic-reset remedy (Fig. 8) generalized to
  /// fault-triggered reset: for the switching family, Reset re-enters
  /// the constant-gain phase.
  int window = 8;
  int max_clamps_in_window = 4;

  /// Refractory period: at least this many decisions between two
  /// watchdog resets, so a controller that diverges right out of Reset
  /// does not get reset on every step.
  int min_steps_between_resets = 8;
};

/// Wraps any Controller with guardrails: sanitizes non-finite
/// measurements before they reach the inner control law, clamps
/// out-of-range outputs into `limits`, and resets the inner controller
/// to its initial (constant-gain) state on sustained divergence. Every
/// intervention is counted and visible through DebugState(), so chaos
/// runs can assert how often the watchdog had to step in.
class WatchdogController : public Controller {
 public:
  WatchdogController(std::unique_ptr<Controller> inner,
                     const WatchdogConfig& config);

  int64_t initial_block_size() const override;
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override;
  void Reset() override;
  /// "watchdog(<inner>)".
  std::string name() const override;
  /// Watchdog counters plus the inner controller's state under the
  /// "inner_" prefix (same nesting idiom as the self-tuning controller).
  StateSnapshot DebugState() const override;

  int64_t bad_inputs() const { return bad_inputs_; }
  int64_t clamped_outputs() const { return clamped_outputs_; }
  int64_t watchdog_resets() const { return watchdog_resets_; }

 private:
  std::unique_ptr<Controller> inner_;
  WatchdogConfig config_;
  /// Ring of 0/1 clamp flags over the last `config_.window` decisions.
  std::vector<int> clamp_window_;
  int window_pos_ = 0;
  int clamps_in_window_ = 0;
  int64_t steps_ = 0;
  int64_t last_reset_step_ = 0;
  double last_good_metric_ = 0.0;
  bool has_good_metric_ = false;
  int64_t bad_inputs_ = 0;
  int64_t clamped_outputs_ = 0;
  int64_t watchdog_resets_ = 0;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_WATCHDOG_CONTROLLER_H_
