#include "wsq/control/fixed_controller.h"

#include <algorithm>

namespace wsq {

FixedController::FixedController(int64_t block_size)
    : block_size_(std::max<int64_t>(block_size, 1)) {}

int64_t FixedController::NextBlockSize(double /*response_time_ms*/) {
  return block_size_;
}

std::string FixedController::name() const {
  return "fixed_" + std::to_string(block_size_);
}

StateSnapshot FixedController::DebugState() const {
  StateSnapshot snapshot = Controller::DebugState();
  snapshot.Add("block_size", block_size_);
  return snapshot;
}

}  // namespace wsq
