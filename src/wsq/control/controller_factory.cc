#include "wsq/control/controller_factory.h"

#include <cerrno>
#include <cstdlib>

#include "wsq/control/fixed_controller.h"

namespace wsq {

SwitchingConfig PaperSwitchingConfig() {
  SwitchingConfig config;
  config.gain_mode = GainMode::kConstant;
  config.b1 = 2000.0;
  config.b2 = 25.0;
  config.dither_factor = 25.0;
  config.averaging_horizon = 3;
  config.limits.min_size = 100;
  config.limits.max_size = 20000;
  config.initial_block_size = 1000;
  config.seed = 42;
  return config;
}

HybridConfig PaperHybridConfig() {
  HybridConfig config;
  config.base = PaperSwitchingConfig();
  config.criterion = PhaseCriterion::kSignSwitches;
  config.criterion_horizon = 5;
  config.criterion_threshold = 1;
  config.flavor = HybridFlavor::kNoSwitchBack;
  config.reset_period = 0;
  return config;
}

ModelBasedConfig PaperModelBasedConfig() {
  ModelBasedConfig config;
  config.model = IdentificationModel::kQuadratic;
  config.num_samples = 6;
  config.samples_per_size = 1;
  config.limits.min_size = 100;
  config.limits.max_size = 20000;
  return config;
}

Result<std::unique_ptr<Controller>> ControllerFactory::MakeFixed(
    int64_t block_size) {
  if (block_size < 1) {
    return Status::InvalidArgument("fixed block size must be >= 1");
  }
  return std::unique_ptr<Controller>(new FixedController(block_size));
}

Result<std::unique_ptr<Controller>> ControllerFactory::MakeSwitching(
    const SwitchingConfig& config) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<Controller>(
      new SwitchingExtremumController(config));
}

Result<std::unique_ptr<Controller>> ControllerFactory::MakeHybrid(
    const HybridConfig& config) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<Controller>(new HybridController(config));
}

Result<std::unique_ptr<Controller>> ControllerFactory::MakeMimd(
    const MimdConfig& config) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<Controller>(new MimdController(config));
}

Result<std::unique_ptr<Controller>> ControllerFactory::MakeModelBased(
    const ModelBasedConfig& config) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<Controller>(new ModelBasedController(config));
}

Result<std::unique_ptr<Controller>> ControllerFactory::MakeSelfTuning(
    const SelfTuningConfig& config) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<Controller>(new SelfTuningController(config));
}

Result<std::unique_ptr<Controller>> ControllerFactory::FromName(
    const std::string& name) {
  if (name.rfind("fixed:", 0) == 0) {
    const char* digits = name.c_str() + 6;
    char* end = nullptr;
    errno = 0;
    const long long size = std::strtoll(digits, &end, 10);
    // 10M tuples/block is far beyond any sane configuration; also
    // rejects silent strtoll overflow (errno == ERANGE).
    constexpr long long kMaxFixedSize = 10000000;
    if (end == digits || *end != '\0' || errno == ERANGE || size < 1 ||
        size > kMaxFixedSize) {
      return Status::InvalidArgument("bad fixed controller size in: " + name);
    }
    return MakeFixed(size);
  }
  if (name == "constant") {
    return MakeSwitching(PaperSwitchingConfig());
  }
  if (name == "adaptive") {
    SwitchingConfig config = PaperSwitchingConfig();
    config.gain_mode = GainMode::kAdaptive;
    return MakeSwitching(config);
  }
  if (name == "hybrid") {
    return MakeHybrid(PaperHybridConfig());
  }
  if (name == "hybrid_s") {
    HybridConfig config = PaperHybridConfig();
    config.flavor = HybridFlavor::kSwitchBack;
    return MakeHybrid(config);
  }
  if (name == "mimd") {
    MimdConfig config;
    config.limits = PaperSwitchingConfig().limits;
    config.initial_block_size = 1000;
    return MakeMimd(config);
  }
  if (name == "model_quadratic" || name == "model_parabolic") {
    ModelBasedConfig config = PaperModelBasedConfig();
    config.model = name == "model_quadratic"
                       ? IdentificationModel::kQuadratic
                       : IdentificationModel::kParabolic;
    return MakeModelBased(config);
  }
  if (name == "self_tuning") {
    SelfTuningConfig config;
    config.identification = PaperModelBasedConfig();
    config.controller = PaperHybridConfig();
    config.continuation = Continuation::kHybrid;
    return MakeSelfTuning(config);
  }
  return Status::InvalidArgument("unknown controller name: " + name);
}

}  // namespace wsq
