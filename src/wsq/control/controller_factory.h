#ifndef WSQ_CONTROL_CONTROLLER_FACTORY_H_
#define WSQ_CONTROL_CONTROLLER_FACTORY_H_

#include <memory>
#include <string>

#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/control/hybrid_controller.h"
#include "wsq/control/mimd_controller.h"
#include "wsq/control/model_based_controller.h"
#include "wsq/control/self_tuning_controller.h"
#include "wsq/control/switching_controller.h"

namespace wsq {

/// The switching-controller parameters of the paper's WAN evaluation
/// (Section III-B.1): b1=2000, b2=25, df=25, n=3, x0=1000 tuples,
/// limits [100, 20000]. Tweak fields for the other setups (e.g. b1=1200
/// and an upper limit of 7000 for LAN conf2.1).
SwitchingConfig PaperSwitchingConfig();

/// The hybrid supervisor parameters of the paper: Eq. (5) criterion with
/// n'=5, s=1, no switch-back, no periodic reset, on top of
/// PaperSwitchingConfig().
HybridConfig PaperHybridConfig();

/// The identification parameters of the paper (Section IV-A): 6 samples,
/// one measurement each, quadratic model, limits [100, 20000].
ModelBasedConfig PaperModelBasedConfig();

/// Constructors for every controller family. All return
/// kInvalidArgument on bad configs instead of constructing a broken
/// controller.
class ControllerFactory {
 public:
  static Result<std::unique_ptr<Controller>> MakeFixed(int64_t block_size);
  static Result<std::unique_ptr<Controller>> MakeSwitching(
      const SwitchingConfig& config);
  static Result<std::unique_ptr<Controller>> MakeHybrid(
      const HybridConfig& config);
  static Result<std::unique_ptr<Controller>> MakeMimd(
      const MimdConfig& config);
  static Result<std::unique_ptr<Controller>> MakeModelBased(
      const ModelBasedConfig& config);
  static Result<std::unique_ptr<Controller>> MakeSelfTuning(
      const SelfTuningConfig& config);

  /// Creates a controller from a short name using the paper's standard
  /// parameters; understood names: "fixed:<N>", "constant", "adaptive",
  /// "hybrid", "hybrid_s", "mimd", "model_quadratic", "model_parabolic",
  /// "self_tuning". Used by the examples' command lines.
  static Result<std::unique_ptr<Controller>> FromName(const std::string& name);
};

}  // namespace wsq

#endif  // WSQ_CONTROL_CONTROLLER_FACTORY_H_
