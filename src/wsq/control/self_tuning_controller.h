#ifndef WSQ_CONTROL_SELF_TUNING_CONTROLLER_H_
#define WSQ_CONTROL_SELF_TUNING_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "wsq/common/status.h"
#include "wsq/control/hybrid_controller.h"
#include "wsq/control/model_based_controller.h"
#include "wsq/control/switching_controller.h"
#include "wsq/linalg/rls.h"

namespace wsq {

/// What runs once the LS identification phase has produced an estimate.
enum class Continuation {
  /// Stay fixed at the estimate (plain model-based behavior).
  kFixed,
  /// Seed a constant-gain switching controller with the estimate — the
  /// "model based + constant gain" curve of Fig. 9. Escapes local minima
  /// the fit missed, at the cost of saw-tooth oscillation.
  kConstantGain,
  /// Seed an adaptive-gain controller — "model based + adaptive gain";
  /// the paper observes it gets stuck when the estimate is off.
  kAdaptiveGain,
  /// Seed the hybrid controller — "model based + hybrid gain"; moves to
  /// the global minimum and then suppresses oscillation.
  kHybrid,
};

std::string_view ContinuationName(Continuation continuation);

struct SelfTuningConfig {
  /// Identification (sampling + fit) phase parameters.
  ModelBasedConfig identification;
  Continuation continuation = Continuation::kHybrid;
  /// Gains/criteria for the continuation controller. `controller.base`'s
  /// initial_block_size and limits are overridden with the LS estimate
  /// and the identification limits respectively.
  HybridConfig controller;

  /// Enables the RLS-with-forgetting extension: every measurement keeps
  /// refining the model online; when the analytic optimum drifts far from
  /// the continuation controller's neighborhood, the controller is
  /// re-seeded. This implements the "self-tuning extremum control"
  /// direction the paper leaves as future work.
  bool enable_rls = false;
  /// Forgetting factor lambda in (0, 1]; smaller tracks faster.
  double rls_forgetting = 0.98;
  /// Adaptivity steps between drift checks.
  int64_t rls_recenter_period = 25;
  /// Relative drift |x*_new - x_cur| / x_cur that triggers re-seeding.
  double rls_recenter_tolerance = 0.25;

  Status Validate() const;
};

/// Self-tuning controller: LS system identification bootstraps the
/// operating point, then a switching/hybrid extremum controller takes
/// over from that estimate (paper Section IV-B, Fig. 9), eliminating the
/// need for a manually chosen initial block size. Optionally keeps the
/// model alive via recursive least squares with forgetting.
class SelfTuningController final : public Controller {
 public:
  explicit SelfTuningController(const SelfTuningConfig& config);

  int64_t initial_block_size() const override {
    return identifier_.initial_block_size();
  }
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override;
  void Reset() override;
  std::string name() const override;
  StateSnapshot DebugState() const override;

  const SelfTuningConfig& config() const { return config_; }

  /// True once the identification phase finished and the continuation
  /// controller is driving.
  bool in_continuation() const { return continuation_ != nullptr; }

  /// The LS estimate used to seed the continuation; FailedPrecondition
  /// during the identification phase.
  Result<int64_t> seed_estimate() const;

  /// Number of RLS-triggered re-centerings so far.
  int64_t recenter_count() const { return recenter_count_; }

 private:
  /// Builds the continuation controller seeded at `seed`.
  std::unique_ptr<Controller> MakeContinuation(int64_t seed) const;

  /// Regressor vector for the configured model family at block size x.
  std::vector<double> Regressors(double x) const;

  void MaybeRecenter();

  SelfTuningConfig config_;
  ModelBasedController identifier_;
  std::unique_ptr<Controller> continuation_;
  int64_t seed_estimate_ = 0;
  int64_t last_commanded_ = 0;

  RecursiveLeastSquares rls_;
  int64_t steps_since_recenter_check_ = 0;
  int64_t recenter_count_ = 0;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_SELF_TUNING_CONTROLLER_H_
