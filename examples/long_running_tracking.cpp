// Scenario: a long-running extraction job (think: nightly ETL pulling
// hundreds of thousands of rows through a web service) during which the
// server's condition changes several times. Demonstrates the Fig. 8
// machinery: the hybrid controller with periodic reset re-adapts after
// every regime change, while the plain no-switch-back hybrid freezes in
// its first steady state.

#include <cstdio>

#include "wsq/api.h"

int main() {
  using namespace wsq;

  // Regimes: quiet WAN (optimum near the upper limit) -> heavily shared
  // server where only small blocks survive (conf2.1 shape, optimum
  // ~2.2K) -> quiet again. A frozen controller is badly wrong in the
  // middle regime.
  const ConfiguredProfile quiet = Conf1_1();
  const ConfiguredProfile loaded = Conf2_1();
  std::vector<const ResponseProfile*> schedule = {
      quiet.profile.get(), loaded.profile.get(), quiet.profile.get()};
  constexpr int64_t kStepsPerRegime = 120;
  constexpr int64_t kTotalSteps = 360;

  SimOptions options;
  options.noise_amplitude = quiet.noise_amplitude;
  options.seed = 99;

  struct Candidate {
    const char* label;
    int64_t reset_period;
  };
  const Candidate candidates[] = {
      {"hybrid (no reset)", 0},
      {"hybrid, periodic reset 50", 50},
  };

  for (const Candidate& candidate : candidates) {
    HybridConfig config = PaperHybridConfig();
    config.reset_period = candidate.reset_period;
    HybridController controller(config);

    SimEngine engine(options);
    Result<SimRunResult> run = engine.RunSchedule(
        &controller, schedule, kStepsPerRegime, kTotalSteps);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }

    std::printf("%s — total %.0f s, %lld phase transitions\n",
                candidate.label, run.value().total_time_ms / 1000.0,
                static_cast<long long>(controller.phase_transitions()));
    std::printf("  decisions (every 12 steps):");
    for (size_t i = 0; i < run.value().steps.size(); i += 12) {
      std::printf(" %lld",
                  static_cast<long long>(run.value().steps[i].block_size));
    }
    std::printf("\n\n");
  }

  std::printf(
      "Regime boundaries are at steps %lld and %lld. The resetting\n"
      "variant re-probes after each boundary (watch the dips) and keeps\n"
      "the block size matched to the current environment.\n",
      static_cast<long long>(kStepsPerRegime),
      static_cast<long long>(2 * kStepsPerRegime));
  return 0;
}
