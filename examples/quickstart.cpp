// Quickstart: run one adaptive query end to end.
//
// Builds the whole simulated stack — TPC-H Customer data inside an
// in-memory DBMS, wrapped by a SOAP data service in a loaded container,
// reached over a simulated WAN — then pulls the full result with the
// paper's hybrid extremum controller choosing every block size, and
// compares against a naive fixed block size. Both runs go through the
// unified QueryBackend interface (EmpiricalBackend here; swap in
// ProfileBackend or EventSimBackend to drive the same controller on the
// other execution stacks).
//
//   ./build/examples/quickstart [controller] [--live=host:port]
//                               [--codec=soap|binary|binary+lz]
//
// where [controller] is any of: constant, adaptive, hybrid, hybrid_s,
// mimd, model_quadratic, model_parabolic, self_tuning, fixed:<N>
// (default: hybrid).
//
// With --live=host:port the same demo runs over a *real* TCP connection
// against a wsqd server (see README "Running a live server"), timed on
// the wall clock. Add --codec=binary to negotiate the binary block
// codec with the server (falls back to SOAP if the daemon was not
// started with --codec=binary):
//
//   ./build/src/wsqd --port=9090 --codec=binary &
//   ./build/examples/quickstart hybrid --live=127.0.0.1:9090 \
//       --codec=binary

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "wsq/api.h"

namespace {

// Parses "host:port"; returns false on a malformed spec.
bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  char* end = nullptr;
  const long p = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  *port = static_cast<int>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsq;

  std::string controller_name = "hybrid";
  std::string live_spec;
  codec::CodecChoice codec_choice;  // defaults to SOAP
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--live=", 0) == 0) {
      live_spec = arg.substr(7);
    } else if (arg.rfind("--codec=", 0) == 0) {
      Result<codec::CodecChoice> parsed =
          codec::CodecChoice::FromName(arg.substr(8));
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --codec spec '%s' (want soap, binary, "
                     "or binary+lz)\n", arg.substr(8).c_str());
        return 1;
      }
      codec_choice = parsed.value();
    } else {
      controller_name = arg;
    }
  }

  // 1. The query every mode runs: three columns of TPC-H Customer,
  //    filtered server-side (the expression travels inside the
  //    OpenSession envelope).
  ScanProjectQuery query;
  query.table_name = "customer";
  query.projected_columns = {"c_custkey", "c_name", "c_acctbal"};
  query.filter = "c_acctbal >= -500";

  // 2. Backend: simulated end-to-end stack by default; with --live a
  //    socket-backed LiveBackend against a running wsqd server.
  std::unique_ptr<EmpiricalBackend> empirical;
  std::unique_ptr<LiveBackend> live;
  if (live_spec.empty()) {
    // A scaled-down TPC-H Customer relation (15K rows) inside an
    // in-memory DBMS; server in the UK, client in Greece, a couple of
    // concurrent jobs on the container.
    TpchGenOptions gen;
    gen.scale = 0.1;
    Result<std::shared_ptr<Table>> customer = GenerateCustomer(gen);
    if (!customer.ok()) {
      std::fprintf(stderr, "generator: %s\n",
                   customer.status().ToString().c_str());
      return 1;
    }
    EmpiricalSetup setup;
    setup.table = customer.value();
    setup.query = query;
    setup.link = WanUkToGreece();
    setup.load.concurrent_jobs = 2;
    setup.seed = 7;
    setup.codec = codec_choice;
    // Each RunQuery stands up a fresh client/server stack from the
    // setup, so the adaptive run and the baseline see identical
    // environments.
    empirical = std::make_unique<EmpiricalBackend>(setup);
  } else {
    LiveSetup setup;
    if (!ParseHostPort(live_spec, &setup.host, &setup.port)) {
      std::fprintf(stderr, "bad --live spec '%s' (want host:port)\n",
                   live_spec.c_str());
      return 1;
    }
    setup.query = query;
    // The server does not ship schemas — the client states what it
    // asked for: the customer schema projected onto the query columns.
    const Schema customer_schema = CustomerSchema();
    std::vector<size_t> indices;
    for (const std::string& column : query.projected_columns) {
      indices.push_back(customer_schema.ColumnIndex(column).value());
    }
    setup.output_schema =
        std::make_shared<Schema>(customer_schema.Project(indices).value());
    setup.seed = 7;
    setup.client_options.codec = codec_choice;
    live = std::make_unique<LiveBackend>(std::move(setup));
  }

  const auto run_keeping = [&](Controller* controller,
                               std::vector<Tuple>* rows) {
    return live ? live->RunQueryKeepingTuples(controller, RunSpec{}, rows)
                : empirical->RunQueryKeepingTuples(controller, RunSpec{},
                                                   rows);
  };

  // 3. Controller: anything the factory knows.
  Result<std::unique_ptr<Controller>> controller =
      ControllerFactory::FromName(controller_name);
  if (!controller.ok()) {
    std::fprintf(stderr, "controller: %s\n",
                 controller.status().ToString().c_str());
    return 1;
  }

  // 4. Run the query; the fetch loop is the paper's Algorithm 1.
  std::vector<Tuple> rows;
  Result<RunTrace> outcome = run_keeping(controller.value().get(), &rows);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("backend       : %s\n",
              live ? live->name().c_str() : empirical->name().c_str());
  std::printf("controller    : %s\n", controller.value()->name().c_str());
  std::printf("rows received : %lld (first: %s)\n",
              static_cast<long long>(outcome.value().total_tuples),
              rows.front().ToString().c_str());
  std::printf("blocks pulled : %lld\n",
              static_cast<long long>(outcome.value().total_blocks));
  std::printf("response time : %.0f ms\n", outcome.value().total_time_ms);

  // 5. Baseline: the same query with a conservative fixed block size.
  FixedController fixed(1000);
  std::vector<Tuple> baseline_rows;
  Result<RunTrace> baseline = run_keeping(&fixed, &baseline_rows);
  if (!baseline.ok()) return 1;
  std::printf("fixed-1000    : %.0f ms  (adaptive saves %.1f%%)\n",
              baseline.value().total_time_ms,
              100.0 * (1.0 - outcome.value().total_time_ms /
                                 baseline.value().total_time_ms));

  // The decision trail, block by block.
  std::printf("\nblock sizes chosen:");
  for (const RunStep& step : outcome.value().steps) {
    std::printf(" %lld", static_cast<long long>(step.requested_size));
  }
  std::printf("\n");
  return 0;
}
