// Quickstart: run one adaptive query end to end.
//
// Builds the whole simulated stack — TPC-H Customer data inside an
// in-memory DBMS, wrapped by a SOAP data service in a loaded container,
// reached over a simulated WAN — then pulls the full result with the
// paper's hybrid extremum controller choosing every block size, and
// compares against a naive fixed block size. Both runs go through the
// unified QueryBackend interface (EmpiricalBackend here; swap in
// ProfileBackend or EventSimBackend to drive the same controller on the
// other execution stacks).
//
//   ./build/examples/quickstart [controller]
//
// where [controller] is any of: constant, adaptive, hybrid, hybrid_s,
// mimd, model_quadratic, model_parabolic, self_tuning, fixed:<N>
// (default: hybrid).

#include <cstdio>

#include "wsq/api.h"

int main(int argc, char** argv) {
  using namespace wsq;

  const std::string controller_name = argc > 1 ? argv[1] : "hybrid";

  // 1. Data: a scaled-down TPC-H Customer relation (15K rows).
  TpchGenOptions gen;
  gen.scale = 0.1;
  Result<std::shared_ptr<Table>> customer = GenerateCustomer(gen);
  if (!customer.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 customer.status().ToString().c_str());
    return 1;
  }

  // 2. Environment: server in the UK, client in Greece, a couple of
  //    concurrent jobs on the container.
  EmpiricalSetup setup;
  setup.table = customer.value();
  setup.query.table_name = "customer";
  setup.query.projected_columns = {"c_custkey", "c_name", "c_acctbal"};
  // Filters are compiled and applied server-side (the expression travels
  // inside the OpenSession envelope).
  setup.query.filter = "c_acctbal >= -500";
  setup.link = WanUkToGreece();
  setup.load.concurrent_jobs = 2;
  setup.seed = 7;

  // Each RunQuery stands up a fresh client/server stack from the setup,
  // so the adaptive run and the baseline see identical environments.
  EmpiricalBackend backend(setup);

  // 3. Controller: anything the factory knows.
  Result<std::unique_ptr<Controller>> controller =
      ControllerFactory::FromName(controller_name);
  if (!controller.ok()) {
    std::fprintf(stderr, "controller: %s\n",
                 controller.status().ToString().c_str());
    return 1;
  }

  // 4. Run the query; the fetch loop is the paper's Algorithm 1.
  std::vector<Tuple> rows;
  Result<RunTrace> outcome = backend.RunQueryKeepingTuples(
      controller.value().get(), RunSpec{}, &rows);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("controller    : %s\n", controller.value()->name().c_str());
  std::printf("rows received : %lld (first: %s)\n",
              static_cast<long long>(outcome.value().total_tuples),
              rows.front().ToString().c_str());
  std::printf("blocks pulled : %lld\n",
              static_cast<long long>(outcome.value().total_blocks));
  std::printf("response time : %.0f ms\n", outcome.value().total_time_ms);

  // 5. Baseline: the same query with a conservative fixed block size.
  FixedController fixed(1000);
  Result<RunTrace> baseline = backend.RunQuery(&fixed, RunSpec{});
  if (!baseline.ok()) return 1;
  std::printf("fixed-1000    : %.0f ms  (adaptive saves %.1f%%)\n",
              baseline.value().total_time_ms,
              100.0 * (1.0 - outcome.value().total_time_ms /
                                 baseline.value().total_time_ms));

  // The decision trail, block by block.
  std::printf("\nblock sizes chosen:");
  for (const RunStep& step : outcome.value().steps) {
    std::printf(" %lld", static_cast<long long>(step.requested_size));
  }
  std::printf("\n");
  return 0;
}
