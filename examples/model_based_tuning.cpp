// Scenario: system identification in action. Samples six block sizes on
// a live (simulated) environment, least-squares fits both of the paper's
// analytic models (Eq. 8 quadratic, Eq. 9 parabolic), prints the fitted
// curves and their analytic optima, then runs the winning model's
// estimate and the self-tuning combination (model + hybrid controller)
// against the environment.

#include <cstdio>

#include "wsq/api.h"

namespace {

void DescribeFit(const char* label, const wsq::IdentifiedModel& model) {
  const auto& p = model.fit.params;
  if (model.model == wsq::IdentificationModel::kQuadratic) {
    std::printf("%s: y = %.3g x^2 + %.3g x + %.3g\n", label, p[0], p[1],
                p[2]);
  } else {
    std::printf("%s: y = %.3g / x + %.3g x + %.3g\n", label, p[0], p[1],
                p[2]);
  }
  std::printf("  rmse %.4f, R^2 %.3f, analytic optimum %lld tuples%s\n",
              model.fit.rmse, model.fit.r_squared,
              static_cast<long long>(model.optimum),
              model.failed ? "  [FAILED - fell back to a limit]" : "");
}

}  // namespace

int main() {
  using namespace wsq;

  // The environment: the LAN conf2.1-style profile (sharp bowl around
  // ~2.2K tuples), simulation path so the run is instant.
  const ConfiguredProfile conf = Conf2_1();
  SimOptions options;
  options.noise_amplitude = conf.noise_amplitude;
  options.seed = 21;

  std::printf("environment: %s, limits [%lld, %lld]\n\n",
              conf.profile->name().c_str(),
              static_cast<long long>(conf.limits.min_size),
              static_cast<long long>(conf.limits.max_size));

  for (IdentificationModel model : {IdentificationModel::kQuadratic,
                                    IdentificationModel::kParabolic}) {
    ModelBasedConfig config = PaperModelBasedConfig();
    config.model = model;
    config.limits = conf.limits;
    ModelBasedController controller(config);

    SimEngine engine(options);
    Result<SimRunResult> run = engine.RunQuery(&controller, *conf.profile);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    Result<IdentifiedModel> identified = controller.identified_model();
    if (!identified.ok()) return 1;

    DescribeFit(model == IdentificationModel::kQuadratic
                    ? "quadratic (Eq. 8)"
                    : "parabolic (Eq. 9)",
                identified.value());
    std::printf("  full query at that estimate: %.1f s\n\n",
                run.value().total_time_ms / 1000.0);
  }

  // Ground truth for reference.
  Result<GroundTruth> gt =
      ComputeGroundTruth(*conf.profile, conf.limits, 250, 5, options);
  if (!gt.ok()) return 1;
  std::printf("post-mortem optimum: %lld tuples (%.1f s)\n\n",
              static_cast<long long>(gt.value().optimum_block_size),
              gt.value().optimum_mean_ms / 1000.0);

  // The self-tuning combination: LS estimate seeds a hybrid controller,
  // removing the need to guess an initial block size at all.
  SelfTuningConfig st;
  st.identification = PaperModelBasedConfig();
  st.identification.model = IdentificationModel::kParabolic;
  st.identification.limits = conf.limits;
  st.continuation = Continuation::kHybrid;
  st.controller = PaperHybridConfig();
  st.controller.base.b1 = conf.paper_b1;
  st.controller.base.limits = conf.limits;
  SelfTuningController self_tuning(st);

  SimEngine engine(options);
  Result<SimRunResult> run = engine.RunQuery(&self_tuning, *conf.profile);
  if (!run.ok()) return 1;
  std::printf("self-tuning (%s): %.1f s  — %.2fx the optimum\n",
              self_tuning.name().c_str(), run.value().total_time_ms / 1000.0,
              run.value().total_time_ms / gt.value().optimum_mean_ms);
  return 0;
}
