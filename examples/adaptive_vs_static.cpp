// Scenario: a dashboard repeatedly pulls the Orders feed from a
// WS-wrapped DBMS whose load changes during the day. A statically-tuned
// block size that was perfect in the morning melts down in the evening;
// the adaptive controllers ride through.
//
// This is the paper's motivation (Section II) as a runnable program:
// each "time of day" is a different server-load regime, and we race the
// static choices against constant/adaptive/hybrid extremum control on
// the same environment.

#include <cstdio>

#include "wsq/api.h"

int main() {
  using namespace wsq;

  const struct {
    const char* label;
    int queries;
    double memory;
  } regimes[] = {
      {"morning (quiet)", 1, 0.0},
      {"noon (2 concurrent queries)", 2, 0.0},
      {"evening (3 queries + memory-hungry batch)", 3, 0.5},
  };

  TpchGenOptions gen;
  gen.scale = 0.05;  // 22500 orders
  Result<std::shared_ptr<Table>> orders = GenerateOrders(gen);
  if (!orders.ok()) {
    std::fprintf(stderr, "%s\n", orders.status().ToString().c_str());
    return 1;
  }

  const char* controllers[] = {"fixed:500", "fixed:8000", "constant",
                               "adaptive", "hybrid"};

  TextTable table({"regime", "fixed:500", "fixed:8000", "constant",
                   "adaptive", "hybrid"});

  for (const auto& regime : regimes) {
    std::vector<double> row;
    for (const char* name : controllers) {
      EmpiricalSetup setup;
      setup.table = orders.value();
      setup.query.table_name = "orders";
      setup.link = Lan1Gbps();
      setup.load.concurrent_queries = regime.queries;
      setup.load.memory_pressure = regime.memory;
      setup.seed = 31;

      auto session = QuerySession::Create(setup);
      if (!session.ok()) return 1;
      auto controller = ControllerFactory::FromName(name);
      if (!controller.ok()) return 1;
      auto outcome = session.value()->Execute(controller.value().get());
      if (!outcome.ok()) return 1;
      row.push_back(outcome.value().total_time_ms / 1000.0);
    }
    table.AddNumericRow(regime.label, row, 2);
  }

  std::printf(
      "Orders feed (%lld rows) under changing load — total seconds per "
      "pull:\n\n%s\n",
      static_cast<long long>(orders.value()->num_rows()),
      table.ToString().c_str());
  std::printf(
      "Each fixed size is right for at most one regime — fixed:8000 melts\n"
      "down in the evening. The adaptive controllers avoid the meltdown;\n"
      "adaptive gain happens to start near the evening optimum here and\n"
      "wins by stagnating, exactly the \"no clear winner in all cases\"\n"
      "observation that motivates the hybrid scheme.\n");
  return 0;
}
