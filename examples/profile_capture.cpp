// Scenario: the paper's own methodology as a pipeline. Its authors ran
// fixed-size sweeps on the physical testbed, then fed the measured
// profiles to a MATLAB simulation engine to study controllers cheaply.
// This example does the same: sweep the *empirical* stack (real SOAP
// dispatch, simulated wire/load), capture the curve as a
// TabulatedProfile, persist it as CSV, reload it, and race controllers
// against the captured profile in the fast simulation engine.

#include <cstdio>

#include "wsq/api.h"

int main() {
  using namespace wsq;

  // --- 1. The "physical" environment: loaded LAN server. ---
  TpchGenOptions gen;
  gen.scale = 0.1;  // 15000 rows
  Result<std::shared_ptr<Table>> customer = GenerateCustomer(gen);
  if (!customer.ok()) return 1;

  auto run_fixed = [&](int64_t block_size) -> double {
    EmpiricalSetup setup;
    setup.table = customer.value();
    setup.query.table_name = "customer";
    setup.link = Lan1Gbps();
    setup.load.concurrent_queries = 3;
    setup.load.memory_pressure = 0.3;
    setup.seed = 97 + static_cast<uint64_t>(block_size);
    auto session = QuerySession::Create(setup);
    if (!session.ok()) std::exit(1);
    FixedController controller(block_size);
    auto outcome = session.value()->Execute(&controller);
    if (!outcome.ok()) std::exit(1);
    return outcome.value().total_time_ms;
  };

  // --- 2. Sweep fixed block sizes (the Fig. 3/6(a)/7(a) procedure). ---
  GroundTruth sweep;
  std::printf("empirical sweep:");
  for (int64_t x = 200; x <= 6000; x += 400) {
    SweepPoint point;
    point.block_size = x;
    point.mean_ms = run_fixed(x);
    sweep.sweep.push_back(point);
    std::printf(" %lld:%.0fms", static_cast<long long>(x), point.mean_ms);
  }
  std::printf("\n");

  // --- 3. Capture as a profile, persist, reload. ---
  Result<TabulatedProfile> captured = ProfileFromSweep(
      "captured_lan", static_cast<int64_t>(customer.value()->num_rows()),
      sweep);
  if (!captured.ok()) return 1;

  const std::string path = "/tmp/wsq_captured_profile.csv";
  if (!SaveProfileCsv(captured.value(), 200, 6000, 400, path).ok()) {
    return 1;
  }
  Result<TabulatedProfile> reloaded = LoadProfileCsv(
      "captured_lan", static_cast<int64_t>(customer.value()->num_rows()),
      path);
  if (!reloaded.ok()) return 1;
  std::printf("profile captured -> %s (reloaded, %lld-tuple dataset)\n\n",
              path.c_str(),
              static_cast<long long>(reloaded.value().dataset_tuples()));

  // --- 4. Drive controllers against the captured profile, instantly. ---
  const int64_t optimum =
      NoiseFreeOptimum(reloaded.value(), 200, 6000, 100);
  std::printf("captured optimum: %lld tuples\n",
              static_cast<long long>(optimum));

  SimOptions options;
  options.noise_amplitude = 0.08;
  options.seed = 3;

  for (const char* name : {"fixed:500", "constant", "hybrid"}) {
    auto controller = ControllerFactory::FromName(name);
    if (!controller.ok()) return 1;
    SimEngine engine(options);
    Result<SimRunResult> run =
        engine.RunQuery(controller.value().get(), reloaded.value());
    if (!run.ok()) return 1;
    std::printf("  %-10s -> %.2f s over %lld blocks\n", name,
                run.value().total_time_ms / 1000.0,
                static_cast<long long>(run.value().total_blocks));
  }
  std::printf(
      "\nAny measured sweep — including ones from a real deployment —\n"
      "can be loaded the same way to tune controllers offline.\n");
  return 0;
}
