// Scenario: the *push* direction of the paper's setting — "submitting
// calls to a WS to perform data processing". A local Customer extract is
// shipped over the WAN to a remote credit-scoring web service, block by
// block, with the hybrid controller tuning the shipment size exactly as
// it tunes pull blocks.

#include <cstdio>

#include "wsq/api.h"

namespace {

wsq::Schema InputSchema() {
  using namespace wsq;
  return Schema({{"c_custkey", ColumnType::kInt64},
                 {"c_acctbal", ColumnType::kDouble}});
}

wsq::Schema OutputSchema() {
  using namespace wsq;
  return Schema({{"c_custkey", ColumnType::kInt64},
                 {"c_acctbal", ColumnType::kDouble},
                 {"credit_band", ColumnType::kString}});
}

}  // namespace

int main() {
  using namespace wsq;

  // Local data: the (custkey, balance) projection of Customer.
  TpchGenOptions gen;
  gen.scale = 0.15;  // 22500 rows
  Result<std::shared_ptr<Table>> customer = GenerateCustomer(gen);
  if (!customer.ok()) return 1;

  Table extract("extract", InputSchema());
  for (const Tuple& row : customer.value()->rows()) {
    extract.AppendUnchecked(Tuple({row.value(0), row.value(5)}));
  }

  // The remote scoring function.
  ProcessingService service;
  ProcessingFunction scorer;
  scorer.input_schema = InputSchema();
  scorer.output_schema = OutputSchema();
  scorer.transform = [](const Tuple& input) -> Result<Tuple> {
    const double balance = std::get<double>(input.value(1));
    const char* band = balance < 0.0     ? "DELINQUENT"
                       : balance < 3000  ? "STANDARD"
                       : balance < 7000  ? "PREFERRED"
                                         : "PLATINUM";
    return Tuple({input.value(0), input.value(1),
                  Value(std::string(band))});
  };
  if (!service.RegisterFunction("credit_score", std::move(scorer)).ok()) {
    return 1;
  }

  // Host it in a moderately loaded container behind the WAN.
  LoadModelConfig load;
  load.concurrent_jobs = 3;
  ServiceContainer container(&service, load, 11);
  SimClock clock;
  LinkConfig link = WanUkToSwitzerland();
  link.drop_probability = 0.01;  // the occasional lost request
  WsClient client(&container, link, &clock, 12);

  // Ship with the hybrid controller vs a pessimal fixed size.
  auto run = [&](Controller* controller, const char* label) {
    BlockShipper shipper(&client, controller, /*max_retries_per_call=*/3);
    std::vector<Tuple> scored;
    Result<FetchOutcome> outcome = shipper.Run(
        extract, "credit_score", InputSchema(), OutputSchema(), &scored);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", label,
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("%-12s: %6.1f s, %lld blocks, %lld retries   (e.g. %s)\n",
                label, outcome.value().total_time_ms / 1000.0,
                static_cast<long long>(outcome.value().total_blocks),
                static_cast<long long>(outcome.value().retries),
                scored.front().ToString().c_str());
  };

  FixedController small(200);
  run(&small, "fixed:200");

  auto hybrid = ControllerFactory::FromName("hybrid");
  if (!hybrid.ok()) return 1;
  run(hybrid.value().get(), "hybrid");

  std::printf(
      "\nThe same extremum controllers tune both directions: pull (data\n"
      "retrieval blocks) and push (processing-call blocks).\n");
  return 0;
}
