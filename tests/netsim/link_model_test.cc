#include "wsq/netsim/link_model.h"

#include <gtest/gtest.h>

#include "wsq/netsim/presets.h"
#include "wsq/stats/running_stats.h"

namespace wsq {
namespace {

LinkConfig NoJitter() {
  LinkConfig config;
  config.round_trip_latency_ms = 10.0;
  config.bandwidth_mbps = 8.0;  // 1 MB/s
  config.jitter_sigma = 0.0;
  return config;
}

TEST(LinkConfigTest, Validation) {
  EXPECT_TRUE(NoJitter().Validate().ok());

  LinkConfig bad = NoJitter();
  bad.round_trip_latency_ms = -1.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = NoJitter();
  bad.bandwidth_mbps = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = NoJitter();
  bad.jitter_sigma = -0.1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = NoJitter();
  bad.bandwidth_share = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad.bandwidth_share = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(LinkModelTest, NominalTimeIsLatencyPlusTransfer) {
  LinkModel link(NoJitter());
  // 1,000,000 bytes at 1 MB/s = 1000 ms, plus 10 ms latency.
  EXPECT_NEAR(link.NominalExchangeTimeMs(500000, 500000), 1010.0, 1e-9);
  // Zero payload costs exactly the latency.
  EXPECT_NEAR(link.NominalExchangeTimeMs(0, 0), 10.0, 1e-9);
}

TEST(LinkModelTest, BandwidthShareDividesThroughput) {
  LinkModel link(NoJitter());
  const double full = link.NominalExchangeTimeMs(0, 1000000);
  link.set_bandwidth_share(0.5);
  const double half = link.NominalExchangeTimeMs(0, 1000000);
  EXPECT_NEAR(half - 10.0, (full - 10.0) * 2.0, 1e-6);
}

TEST(LinkModelTest, JitterFreeCallMatchesNominal) {
  LinkModel link(NoJitter());
  Random rng(1);
  EXPECT_DOUBLE_EQ(link.ExchangeTimeMs(100, 100, rng),
                   link.NominalExchangeTimeMs(100, 100));
}

TEST(LinkModelTest, JitterVariesButCentersOnNominal) {
  LinkConfig config = NoJitter();
  config.jitter_sigma = 0.2;
  LinkModel link(config);
  Random rng(5);
  RunningStats stats;
  const double nominal = link.NominalExchangeTimeMs(1000, 1000);
  for (int i = 0; i < 4000; ++i) {
    stats.Add(link.ExchangeTimeMs(1000, 1000, rng));
  }
  EXPECT_GT(stats.stddev(), 0.0);
  // Lognormal: median equals nominal, mean slightly above.
  EXPECT_NEAR(stats.mean(), nominal * std::exp(0.5 * 0.2 * 0.2),
              nominal * 0.05);
}

TEST(LinkModelTest, MonotoneInBytes) {
  LinkModel link(NoJitter());
  double prev = 0.0;
  for (size_t bytes = 0; bytes <= 1 << 20; bytes += 1 << 16) {
    const double t = link.NominalExchangeTimeMs(bytes, bytes);
    EXPECT_GT(t, prev - 1e-12);
    prev = t;
  }
}

TEST(PresetsTest, PresetsAreValidAndOrdered) {
  EXPECT_TRUE(WanUkToSwitzerland().Validate().ok());
  EXPECT_TRUE(WanUkToGreece().Validate().ok());
  EXPECT_TRUE(Lan1Gbps().Validate().ok());

  // LAN is faster in both dimensions than either WAN path.
  EXPECT_LT(Lan1Gbps().round_trip_latency_ms,
            WanUkToSwitzerland().round_trip_latency_ms);
  EXPECT_GT(Lan1Gbps().bandwidth_mbps, WanUkToGreece().bandwidth_mbps);
  // The Greek path is the longer WAN one (as in the paper's setups).
  EXPECT_GT(WanUkToGreece().round_trip_latency_ms,
            WanUkToSwitzerland().round_trip_latency_ms);
}

}  // namespace
}  // namespace wsq
