#include "wsq/stats/running_stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i * 0.1;
    all.Add(v);
    (i < 40 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(10.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatsTest, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

}  // namespace
}  // namespace wsq
