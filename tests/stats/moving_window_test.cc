#include "wsq/stats/moving_window.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(MovingWindowTest, FillsToCapacity) {
  MovingWindow w(3);
  EXPECT_TRUE(w.empty());
  w.Add(1.0);
  w.Add(2.0);
  EXPECT_FALSE(w.full());
  w.Add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.Mean(), 2.0);
}

TEST(MovingWindowTest, EvictsOldest) {
  MovingWindow w(3);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.Add(v);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.Oldest(), 2.0);
  EXPECT_EQ(w.Newest(), 4.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.Sum(), 9.0);
}

TEST(MovingWindowTest, MeanOfPartialWindow) {
  MovingWindow w(5);
  w.Add(10.0);
  w.Add(20.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 15.0);
}

TEST(MovingWindowTest, EmptyMeanIsZero) {
  MovingWindow w(4);
  EXPECT_EQ(w.Mean(), 0.0);
  EXPECT_EQ(w.Sum(), 0.0);
}

TEST(MovingWindowTest, CapacityOnePromotion) {
  MovingWindow w(0);  // promoted to 1
  EXPECT_EQ(w.capacity(), 1u);
  w.Add(1.0);
  w.Add(2.0);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.Mean(), 2.0);
}

TEST(MovingWindowTest, ClearResets) {
  MovingWindow w(3);
  w.Add(1.0);
  w.Add(2.0);
  w.Clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.Sum(), 0.0);
  w.Add(5.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 5.0);
}

TEST(MovingWindowTest, LongStreamSumStaysConsistent) {
  MovingWindow w(7);
  double expected_tail[7] = {0};
  for (int i = 0; i < 1000; ++i) {
    w.Add(i * 0.5);
  }
  for (int i = 0; i < 7; ++i) expected_tail[i] = (993 + i) * 0.5;
  double sum = 0;
  for (double v : expected_tail) sum += v;
  EXPECT_NEAR(w.Sum(), sum, 1e-9);
}

}  // namespace
}  // namespace wsq
