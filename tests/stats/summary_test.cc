#include "wsq/stats/summary.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(SummaryTest, EmptyInput) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s = Summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.median, 42.0);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.p95, 42.0);
}

TEST(SummaryTest, KnownDistribution) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  Summary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 0.01);
  EXPECT_NEAR(s.p25, 25.75, 0.01);
  EXPECT_NEAR(s.p75, 75.25, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(SummaryTest, UnsortedInputHandled) {
  Summary s = Summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(SortedPercentileTest, Interpolates) {
  std::vector<double> v = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(SortedPercentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(v, 0.25), 15.0);
}

TEST(SortedPercentileTest, ClampsOutOfRangeQ) {
  std::vector<double> v = {1.0, 2.0};
  EXPECT_EQ(SortedPercentile(v, -0.5), 1.0);
  EXPECT_EQ(SortedPercentile(v, 1.5), 2.0);
  EXPECT_EQ(SortedPercentile({}, 0.5), 0.0);
}

TEST(SummaryTest, ToStringContainsFields) {
  Summary s = Summarize({1.0, 2.0, 3.0});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("n=3"), std::string::npos);
  EXPECT_NE(str.find("mean=2.00"), std::string::npos);
  EXPECT_NE(str.find("p50="), std::string::npos);
}

}  // namespace
}  // namespace wsq
