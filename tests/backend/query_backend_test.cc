// Conformance tests for the QueryBackend adapters: whichever stack
// executes the query, the same controller must drive the paper's
// Algorithm 1 pull loop and report a consistent canonical RunTrace.

#include "wsq/backend/query_backend.h"

#include <gtest/gtest.h>

#include <memory>

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/eventsim_backend.h"
#include "wsq/backend/experiment.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/control/factories.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"

namespace wsq {
namespace {

ParametricProfile::Params SmallProfile() {
  ParametricProfile::Params p;
  p.name = "small";
  p.dataset_tuples = 20000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  return p;
}

std::shared_ptr<const ResponseProfile> SharedSmallProfile() {
  return std::make_shared<ParametricProfile>(SmallProfile());
}

EventSimConfig SmallEventConfig() {
  EventSimConfig config;
  config.jitter_sigma = 0.05;
  config.seed = 3;
  return config;
}

EmpiricalSetup SmallEmpiricalSetup() {
  TpchGenOptions gen;
  gen.scale = 0.02;  // 3000 customers
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 5;
  return setup;
}

/// The shared conformance contract: a fixed controller drains the
/// backend's query and the trace upholds every RunTrace invariant.
void ExpectConformant(QueryBackend& backend, int64_t expected_tuples) {
  FixedController controller(700);
  Result<RunTrace> trace = backend.RunQuery(&controller, RunSpec{});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace.value().backend_name, backend.name());
  EXPECT_EQ(trace.value().controller_name, "fixed_700");
  EXPECT_EQ(trace.value().total_tuples, expected_tuples);
  // 700 does not divide the datasets: the last block must be short.
  EXPECT_EQ(trace.value().total_blocks, (expected_tuples + 699) / 700);
  EXPECT_GT(trace.value().total_time_ms, 0.0);
  Status consistent = trace.value().CheckConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
  // Every block but the ragged last one is commanded at full size.
  // (Backends differ on the last request: the event sim clamps it to the
  // remaining tuples client-side, the others request full size and
  // receive a short block.)
  for (size_t i = 0; i + 1 < trace.value().steps.size(); ++i) {
    EXPECT_EQ(trace.value().steps[i].requested_size, 700);
    EXPECT_EQ(trace.value().steps[i].received_tuples, 700);
  }
}

TEST(QueryBackendConformanceTest, ProfileBackend) {
  ProfileBackend backend(SharedSmallProfile(), SimOptions{});
  EXPECT_EQ(backend.name(), "profile");
  ExpectConformant(backend, 20000);
}

TEST(QueryBackendConformanceTest, EventSimBackend) {
  EventSimBackend backend(SmallEventConfig(), /*dataset_tuples=*/10000);
  EXPECT_EQ(backend.name(), "eventsim");
  ExpectConformant(backend, 10000);
}

TEST(QueryBackendConformanceTest, EmpiricalBackend) {
  EmpiricalBackend backend(SmallEmpiricalSetup());
  EXPECT_EQ(backend.name(), "empirical");
  ExpectConformant(backend, 3000);
}

TEST(QueryBackendConformanceTest, AdaptiveControllerTracksAdaptivitySteps) {
  // The canonical trace must carry adaptivity steps on every backend;
  // with a one-measurement-per-step controller they grow monotonically.
  std::vector<std::unique_ptr<QueryBackend>> backends;
  backends.push_back(
      std::make_unique<ProfileBackend>(SharedSmallProfile(), SimOptions{}));
  backends.push_back(std::make_unique<EventSimBackend>(SmallEventConfig(),
                                                       /*dataset_tuples=*/20000));
  backends.push_back(
      std::make_unique<EmpiricalBackend>(SmallEmpiricalSetup()));
  for (const auto& backend : backends) {
    std::unique_ptr<Controller> controller =
        ControllerFactory::FromName("constant").value();
    Result<RunTrace> trace = backend->RunQuery(controller.get(), RunSpec{});
    ASSERT_TRUE(trace.ok()) << backend->name() << ": "
                            << trace.status().ToString();
    ASSERT_GT(trace.value().steps.size(), 1u) << backend->name();
    EXPECT_TRUE(trace.value().CheckConsistent().ok()) << backend->name();
    EXPECT_GT(trace.value().steps.back().adaptivity_step, 0)
        << backend->name();
  }
}

TEST(QueryBackendTest, NullControllerRejectedEverywhere) {
  ProfileBackend profile(SharedSmallProfile(), SimOptions{});
  EventSimBackend eventsim(SmallEventConfig(), 1000);
  EmpiricalBackend empirical(SmallEmpiricalSetup());
  for (QueryBackend* backend :
       std::initializer_list<QueryBackend*>{&profile, &eventsim, &empirical}) {
    EXPECT_FALSE(backend->RunQuery(nullptr, RunSpec{}).ok());
  }
}

TEST(QueryBackendTest, SeedOverrideChangesNoiseReproducibly) {
  SimOptions options;
  options.noise_amplitude = 0.2;
  options.seed = 1;
  ProfileBackend backend(SharedSmallProfile(), options);
  FixedController controller(1000);
  RunSpec seed_a;
  seed_a.seed = 17;
  RunSpec seed_b;
  seed_b.seed = 18;
  const double time_a =
      backend.RunQuery(&controller, seed_a).value().total_time_ms;
  const double time_b =
      backend.RunQuery(&controller, seed_b).value().total_time_ms;
  const double time_a_again =
      backend.RunQuery(&controller, seed_a).value().total_time_ms;
  EXPECT_NE(time_a, time_b);
  EXPECT_DOUBLE_EQ(time_a, time_a_again);
}

TEST(QueryBackendTest, OnlyProfileBackendRunsSchedules) {
  ParametricProfile profile(SmallProfile());
  RunSpec spec;
  spec.schedule = {&profile};
  spec.steps_per_profile = 5;
  spec.total_steps = 12;

  ProfileBackend profile_backend(nullptr, SimOptions{});
  EXPECT_TRUE(profile_backend.SupportsSchedules());
  FixedController controller(1000);
  Result<RunTrace> trace = profile_backend.RunQuery(&controller, spec);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().total_blocks, 12);
  EXPECT_TRUE(trace.value().CheckConsistent().ok());

  EventSimBackend eventsim(SmallEventConfig(), 1000);
  EmpiricalBackend empirical(SmallEmpiricalSetup());
  EXPECT_FALSE(eventsim.SupportsSchedules());
  EXPECT_FALSE(empirical.SupportsSchedules());
  EXPECT_EQ(eventsim.RunQuery(&controller, spec).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(empirical.RunQuery(&controller, spec).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryBackendTest, ScheduleWithoutProfileFailsOnProfileBackend) {
  ProfileBackend backend(nullptr, SimOptions{});
  FixedController controller(1000);
  EXPECT_EQ(backend.RunQuery(&controller, RunSpec{}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryBackendTest, BackgroundClientsSlowTheTrackedQuery) {
  EventSimConfig config;
  config.seed = 9;
  EventSimBackend solo(config, 30000);
  std::vector<BackgroundClientSpec> crowd;
  crowd.push_back({FixedFactory(3000), 30000, 0.0});
  crowd.push_back({FixedFactory(3000), 30000, 0.0});
  EventSimBackend contended(config, 30000, 0.0, std::move(crowd));

  FixedController a(3000);
  FixedController b(3000);
  const double solo_ms = solo.RunQuery(&a, RunSpec{}).value().total_time_ms;
  const double contended_ms =
      contended.RunQuery(&b, RunSpec{}).value().total_time_ms;
  EXPECT_GT(contended_ms, solo_ms);
}

TEST(GenericRunRepeatedTest, WorksOnEventSimBackend) {
  EventSimBackend backend(SmallEventConfig(), 20000);
  Result<RepeatedRunSummary> summary =
      RunRepeated(FixedFactory(2000), backend, 3, /*base_seed=*/21);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().controller_name, "fixed_2000");
  EXPECT_EQ(summary.value().total_time_ms.count(), 3u);
  // Jitter across per-run seeds -> nonzero spread.
  EXPECT_GT(summary.value().total_time_ms.stddev(), 0.0);
  EXPECT_EQ(summary.value().mean_decision_per_step.size(), 10u);
}

TEST(GenericRunRepeatedTest, WorksOnEmpiricalBackend) {
  EmpiricalBackend backend(SmallEmpiricalSetup());
  Result<RepeatedRunSummary> summary =
      RunRepeated(NamedFactory("hybrid"), backend, 2, /*base_seed=*/7);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().total_time_ms.count(), 2u);
  EXPECT_GT(summary.value().final_block_size.mean(), 0.0);
}

TEST(GenericRunRepeatedTest, ScheduleRejectedOnNonProfileBackend) {
  ParametricProfile profile(SmallProfile());
  EventSimBackend backend(SmallEventConfig(), 1000);
  Result<RepeatedRunSummary> summary = RunRepeatedSchedule(
      FixedFactory(1000), backend, {&profile}, 10, 30, 2, /*base_seed=*/1);
  EXPECT_EQ(summary.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GenericRunRepeatedTest, NamedFactoryUnknownNameSurfacesError) {
  ProfileBackend backend(SharedSmallProfile(), SimOptions{});
  Result<RepeatedRunSummary> summary =
      RunRepeated(NamedFactory("no_such_controller"), backend, 2, 1);
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wsq
