#include "wsq/backend/run_trace.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

RunStep MakeStep(int64_t index, int64_t requested, int64_t received,
                 double block_ms) {
  RunStep step;
  step.step = index;
  step.requested_size = requested;
  step.received_tuples = received;
  step.block_time_ms = block_ms;
  step.per_tuple_ms = received > 0 ? block_ms / received : 0.0;
  return step;
}

RunTrace SmallTrace() {
  RunTrace trace;
  trace.backend_name = "test";
  trace.controller_name = "fixed_1000";
  trace.steps = {MakeStep(0, 1000, 1000, 50.0), MakeStep(1, 1000, 1000, 40.0),
                 MakeStep(2, 1000, 500, 30.0)};
  trace.total_blocks = 3;
  trace.total_tuples = 2500;
  trace.total_time_ms = 120.0;
  return trace;
}

TEST(RunTraceTest, AccessorsOnEmptyTrace) {
  RunTrace trace;
  EXPECT_TRUE(trace.RequestedSizes().empty());
  EXPECT_EQ(trace.final_block_size(), 0);
  EXPECT_TRUE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, RequestedSizesAndFinal) {
  RunTrace trace = SmallTrace();
  EXPECT_EQ(trace.RequestedSizes(), (std::vector<int64_t>{1000, 1000, 1000}));
  EXPECT_EQ(trace.final_block_size(), 1000);
  EXPECT_TRUE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsBlockCountMismatch) {
  RunTrace trace = SmallTrace();
  trace.total_blocks = 4;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsTupleMismatch) {
  RunTrace trace = SmallTrace();
  trace.total_tuples = 9999;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsOverdelivery) {
  RunTrace trace = SmallTrace();
  trace.steps[1].received_tuples = 2000;  // > requested
  trace.total_tuples = 3500;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsBlockTimeExceedingTotal) {
  RunTrace trace = SmallTrace();
  trace.total_time_ms = 100.0;  // blocks sum to 120
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, AllowsDeadTimeOnTopOfBlocks) {
  // Session open/close and retry timeouts make the total larger than the
  // sum of blocks; that is legal. Retries not attributed to any block
  // must be accounted as session retries (the attribution invariant).
  RunTrace trace = SmallTrace();
  trace.total_time_ms = 500.0;
  trace.total_retries = 2;
  trace.session_retries = 2;
  trace.total_retry_time_ms = 300.0;
  EXPECT_TRUE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsUnattributedRetries) {
  // total_retries must equal block retries + session retries exactly;
  // a surplus means some backend forgot to attribute its retries.
  RunTrace trace = SmallTrace();
  trace.total_retries = 2;
  Status status = trace.CheckConsistent();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("session_retries"), std::string::npos);
}

TEST(RunTraceTest, DetectsRetryTimeExceedingTotal) {
  // Retry dead time is charged to the total but to no block, so blocks
  // plus retry time can never exceed the total.
  RunTrace trace = SmallTrace();
  trace.total_retries = 1;
  trace.session_retries = 1;
  trace.total_retry_time_ms = 50.0;  // blocks sum to 120, total is 120
  EXPECT_FALSE(trace.CheckConsistent().ok());
  trace.total_time_ms = 170.0;
  EXPECT_TRUE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsNegativeChaosCounters) {
  RunTrace trace = SmallTrace();
  trace.session_retries = -1;
  trace.total_retries = -1;
  EXPECT_FALSE(trace.CheckConsistent().ok());
  trace = SmallTrace();
  trace.total_retry_time_ms = -0.5;
  EXPECT_FALSE(trace.CheckConsistent().ok());
  trace = SmallTrace();
  trace.breaker_trips = -2;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsOutOfOrderFaultLog) {
  RunTrace trace = SmallTrace();
  trace.fault_log = {{2, FaultKind::kUnavailability},
                     {1, FaultKind::kLatencySpike}};
  EXPECT_FALSE(trace.CheckConsistent().ok());
  trace.fault_log = {{1, FaultKind::kLatencySpike},
                     {2, FaultKind::kUnavailability}};
  EXPECT_TRUE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsNonMonotoneAdaptivity) {
  RunTrace trace = SmallTrace();
  trace.steps[0].adaptivity_step = 2;
  trace.steps[1].adaptivity_step = 1;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsRetriesExceedingTotal) {
  RunTrace trace = SmallTrace();
  trace.steps[2].retries = 3;  // total_retries stays 0
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsRequestedSizeBelowOne) {
  RunTrace trace = SmallTrace();
  trace.steps[1].requested_size = 0;
  Status status = trace.CheckConsistent();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("requested_size"), std::string::npos);
}

TEST(RunTraceTest, DetectsNegativeReceivedTuples) {
  RunTrace trace = SmallTrace();
  trace.steps[0].received_tuples = -5;
  trace.total_tuples = 2500 - 1000 - 5;
  Status status = trace.CheckConsistent();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("received_tuples"), std::string::npos);
}

TEST(RunTraceTest, DetectsNegativePerTupleCost) {
  RunTrace trace = SmallTrace();
  trace.steps[2].per_tuple_ms = -0.1;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsNegativeBlockTime) {
  RunTrace trace = SmallTrace();
  trace.steps[0].block_time_ms = -1.0;
  EXPECT_FALSE(trace.CheckConsistent().ok());
}

TEST(RunTraceTest, DetectsNegativeRetries) {
  RunTrace trace = SmallTrace();
  trace.steps[1].retries = -1;
  Status status = trace.CheckConsistent();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("negative"), std::string::npos);
}

}  // namespace
}  // namespace wsq
