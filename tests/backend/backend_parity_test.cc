// Backend-parity test — the robustness-of-conclusions check behind the
// paper's dual methodology: capture the empirical stack's response
// curve as a profile (the authors' own testbed -> MATLAB pipeline),
// then verify that the profile-driven backend reproduces the empirical
// run of the same controller through the unified QueryBackend
// interface.

#include <gtest/gtest.h>

#include <memory>

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/sim/profile.h"

namespace wsq {
namespace {

EmpiricalSetup ParitySetup() {
  TpchGenOptions gen;
  gen.scale = 0.02;  // 3000 customers
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 41;
  return setup;
}

TEST(BackendParityTest, ProfileBackendReproducesEmpiricalRuns) {
  EmpiricalBackend empirical(ParitySetup());
  const int64_t dataset = 3000;

  // 1. Capture: sweep fixed block sizes on the empirical stack and
  //    tabulate the measured aggregate times (Fig. 3/6(a) procedure).
  std::vector<std::pair<double, double>> points;
  for (int64_t size : {300, 700, 1500, 3000}) {
    FixedController controller(size);
    Result<RunTrace> trace = empirical.RunQuery(&controller, RunSpec{});
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    ASSERT_EQ(trace.value().total_tuples, dataset);
    points.emplace_back(static_cast<double>(size),
                        trace.value().total_time_ms);
  }
  Result<TabulatedProfile> captured =
      TabulatedProfile::Create("captured", dataset, points);
  ASSERT_TRUE(captured.ok());

  // 2. Replay the same fixed controller on both backends. The capture
  //    and the replay are deterministic in the setup seed, so tuple and
  //    block counts must agree exactly and times within noise tolerance.
  SimOptions options;  // noise-free: the curve already embeds the jitter
  options.noise_amplitude = 0.0;
  ProfileBackend profile(captured.value(), options);

  for (int64_t size : {700, 1500}) {
    FixedController on_profile(size);
    FixedController on_empirical(size);
    Result<RunTrace> sim_trace = profile.RunQuery(&on_profile, RunSpec{});
    Result<RunTrace> emp_trace = empirical.RunQuery(&on_empirical, RunSpec{});
    ASSERT_TRUE(sim_trace.ok());
    ASSERT_TRUE(emp_trace.ok());

    EXPECT_EQ(sim_trace.value().total_tuples, emp_trace.value().total_tuples)
        << "size " << size;
    EXPECT_EQ(sim_trace.value().total_blocks, emp_trace.value().total_blocks)
        << "size " << size;
    EXPECT_NEAR(sim_trace.value().total_time_ms,
                emp_trace.value().total_time_ms,
                0.02 * emp_trace.value().total_time_ms)
        << "size " << size;
    EXPECT_TRUE(sim_trace.value().CheckConsistent().ok());
    EXPECT_TRUE(emp_trace.value().CheckConsistent().ok());
  }
}

}  // namespace
}  // namespace wsq
