#include <memory>

#include <gtest/gtest.h>

#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/control/model_based_controller.h"
#include "wsq/sim/experiment.h"
#include "wsq/sim/ground_truth.h"
#include "wsq/sim/profile_library.h"

namespace wsq {
namespace {

/// Shape-level regression tests for the paper's headline claims, run on
/// the profile-driven simulation path. These pin down "who wins" facts,
/// not absolute numbers.
class PaperPropertiesTest : public ::testing::Test {
 protected:
  static SimOptions OptionsFor(const ConfiguredProfile& conf,
                               uint64_t seed = 11) {
    SimOptions options;
    options.noise_amplitude = conf.noise_amplitude;
    options.seed = seed;
    return options;
  }

  static SwitchingConfig BaseFor(const ConfiguredProfile& conf,
                                 GainMode mode) {
    SwitchingConfig config = PaperSwitchingConfig();
    config.gain_mode = mode;
    config.b1 = conf.paper_b1;
    config.limits = conf.limits;
    return config;
  }

  static ControllerFactoryFn SwitchingFactory(const ConfiguredProfile& conf,
                                              GainMode mode) {
    return [conf, mode]() {
      return std::unique_ptr<Controller>(
          new SwitchingExtremumController(BaseFor(conf, mode)));
    };
  }

  static ControllerFactoryFn HybridFactory(const ConfiguredProfile& conf) {
    return [conf]() {
      HybridConfig config = PaperHybridConfig();
      config.base = BaseFor(conf, GainMode::kConstant);
      return std::unique_ptr<Controller>(new HybridController(config));
    };
  }

  static ControllerFactoryFn FixedFactory(int64_t size) {
    return [size]() {
      return std::unique_ptr<Controller>(new FixedController(size));
    };
  }

  static double Normalized(const ControllerFactoryFn& factory,
                           const ConfiguredProfile& conf, int runs,
                           double optimum_ms) {
    Result<RepeatedRunSummary> summary =
        RunRepeated(factory, *conf.profile, runs, OptionsFor(conf));
    EXPECT_TRUE(summary.ok());
    return summary.value().NormalizedMean(optimum_ms);
  }

  static double OptimumMs(const ConfiguredProfile& conf) {
    Result<GroundTruth> gt = ComputeGroundTruth(
        *conf.profile, conf.limits, 500, 5, OptionsFor(conf, 3));
    EXPECT_TRUE(gt.ok());
    return gt.value().optimum_mean_ms;
  }
};

TEST_F(PaperPropertiesTest, StaticSmallBlocksCostSeveralTensOfPercent) {
  // Table I, column "1000 tuples": 1.39x - 2.05x of the optimum.
  for (const ConfiguredProfile& conf : {Conf1_1(), Conf1_2(), Conf1_3()}) {
    const double optimum = OptimumMs(conf);
    const double normalized =
        Normalized(FixedFactory(1000), conf, 5, optimum);
    EXPECT_GT(normalized, 1.25) << conf.profile->name();
    EXPECT_LT(normalized, 2.6) << conf.profile->name();
  }
}

TEST_F(PaperPropertiesTest, AdaptiveControllersNearOptimalOnWan) {
  // Table I: constant/adaptive/hybrid all land close to 1.0 on conf1.x.
  for (const ConfiguredProfile& conf : {Conf1_1(), Conf1_3()}) {
    const double optimum = OptimumMs(conf);
    EXPECT_LT(Normalized(SwitchingFactory(conf, GainMode::kConstant), conf,
                         6, optimum),
              1.25)
        << conf.profile->name();
    EXPECT_LT(Normalized(HybridFactory(conf), conf, 6, optimum), 1.25)
        << conf.profile->name();
  }
}

TEST_F(PaperPropertiesTest, HybridBeatsConstantAndAdaptiveOnLan) {
  // Fig. 6/7 + Table III: on the LAN profiles the hybrid controller
  // clearly wins; adaptive gain is the worst adaptive scheme.
  for (const ConfiguredProfile& conf : {Conf2_1(), Conf2_2()}) {
    const double optimum = OptimumMs(conf);
    const double hybrid =
        Normalized(HybridFactory(conf), conf, 8, optimum);
    const double constant = Normalized(
        SwitchingFactory(conf, GainMode::kConstant), conf, 8, optimum);
    const double adaptive = Normalized(
        SwitchingFactory(conf, GainMode::kAdaptive), conf, 8, optimum);
    EXPECT_LT(hybrid, constant) << conf.profile->name();
    EXPECT_LT(constant, adaptive) << conf.profile->name();
    EXPECT_LT(hybrid, 1.30) << conf.profile->name();
  }
}

TEST_F(PaperPropertiesTest, AdaptiveGainOvershootsOnLan) {
  // Fig. 6(b): adaptive gain overshoots toward the upper limit and
  // stagnates there.
  const ConfiguredProfile conf = Conf2_2();
  Result<RepeatedRunSummary> summary =
      RunRepeated(SwitchingFactory(conf, GainMode::kAdaptive),
                  *conf.profile, 6, OptionsFor(conf));
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary.value().final_block_size.mean(), 12000.0);
}

TEST_F(PaperPropertiesTest, HybridSuppressesSteadyStateOscillation) {
  // Fig. 7(b): constant gain keeps oscillating, the hybrid goes quiet.
  const ConfiguredProfile conf = Conf2_2();
  auto tail_amplitude = [&](const ControllerFactoryFn& factory) {
    Result<RepeatedRunSummary> summary =
        RunRepeated(factory, *conf.profile, 6, OptionsFor(conf));
    EXPECT_TRUE(summary.ok());
    const auto& steps = summary.value().mean_decision_per_step;
    EXPECT_GT(steps.size(), 30u);
    double lo = 1e18;
    double hi = 0.0;
    for (size_t i = steps.size() - 20; i < steps.size(); ++i) {
      lo = std::min(lo, steps[i]);
      hi = std::max(hi, steps[i]);
    }
    return hi - lo;
  };
  EXPECT_LT(tail_amplitude(HybridFactory(conf)),
            tail_amplitude(SwitchingFactory(conf, GainMode::kConstant)));
}

TEST_F(PaperPropertiesTest, LargerB1ConvergesFasterFromFarAway) {
  // Fig. 5: on conf1.1, the time to reach 80% of the optimum shrinks as
  // b1 grows.
  const ConfiguredProfile conf = Conf1_1();
  auto steps_to_reach = [&](double b1) {
    SwitchingConfig config = BaseFor(conf, GainMode::kConstant);
    config.b1 = b1;
    SimEngine engine(OptionsFor(conf, 17));
    SwitchingExtremumController controller(config);
    Result<SimRunResult> result =
        engine.RunQuery(&controller, *conf.profile);
    EXPECT_TRUE(result.ok());
    const auto& steps = result.value().steps;
    for (size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].block_size >= 12000) return static_cast<int>(i);
    }
    return static_cast<int>(steps.size());
  };
  const int steps_800 = steps_to_reach(800.0);
  const int steps_2000 = steps_to_reach(2000.0);
  EXPECT_LT(steps_2000, steps_800);
}

TEST_F(PaperPropertiesTest, ModelBasedPicksNearOptimalSizes) {
  // Table II: on each tested configuration at least one of the two
  // models lands in the near-optimal region (normalized time <= ~1.2).
  for (const ConfiguredProfile& conf :
       {Conf1_1(), Conf1_3(), Conf2_1(), Conf2_2()}) {
    const double optimum = OptimumMs(conf);
    double best = 1e18;
    for (IdentificationModel model : {IdentificationModel::kQuadratic,
                                      IdentificationModel::kParabolic}) {
      ModelBasedConfig config = PaperModelBasedConfig();
      config.model = model;
      config.limits = conf.limits;
      auto factory = [config]() {
        return std::unique_ptr<Controller>(
            new ModelBasedController(config));
      };
      best = std::min(best, Normalized(factory, conf, 6, optimum));
    }
    // Paper Table II reports 1.025-1.14 for the winning model; our
    // substrate is a little harsher on conf2.1 (the paging penalty is
    // quadratic where Eq. 9 assumes linear), so allow up to 1.35 —
    // still far below the static baselines (1.6-2.8x).
    EXPECT_LT(best, 1.35) << conf.profile->name();
  }
}

TEST_F(PaperPropertiesTest, PeriodicResetHybridTracksProfileSwitches) {
  // Fig. 8: conf1.1 -> conf1.2 -> conf1.3 -> conf1.1, 100 steps each.
  const ConfiguredProfile c11 = Conf1_1();
  const ConfiguredProfile c12 = Conf1_2();
  const ConfiguredProfile c13 = Conf1_3();
  std::vector<const ResponseProfile*> schedule = {
      c11.profile.get(), c12.profile.get(), c13.profile.get(),
      c11.profile.get()};

  HybridConfig config = PaperHybridConfig();
  config.base.b1 = 2000.0;
  config.reset_period = 50;
  auto factory = [config]() {
    return std::unique_ptr<Controller>(new HybridController(config));
  };

  SimOptions options = OptionsFor(c11, 5);
  Result<RepeatedRunSummary> summary =
      RunRepeatedSchedule(factory, schedule, 100, 400, 4, options);
  ASSERT_TRUE(summary.ok());
  const auto& steps = summary.value().mean_decision_per_step;
  ASSERT_EQ(steps.size(), 400u);

  // In each regime's second half the controller must sit in a sensible
  // band for that profile (conf1.x optima are all >= ~10K).
  auto mean_over = [&](size_t from, size_t to) {
    double sum = 0.0;
    for (size_t i = from; i < to; ++i) sum += steps[i];
    return sum / static_cast<double>(to - from);
  };
  EXPECT_GT(mean_over(60, 100), 8000.0);   // tracked conf1.1
  EXPECT_GT(mean_over(260, 300), 8000.0);  // tracked conf1.3
  EXPECT_GT(mean_over(360, 400), 8000.0);  // back on conf1.1
}

}  // namespace
}  // namespace wsq
