#include <memory>

#include <gtest/gtest.h>

#include "wsq/client/query_session.h"
#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/control/hybrid_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"

namespace wsq {
namespace {

/// Full-stack integration: TPC-H data -> DBMS -> data service -> SOAP ->
/// simulated network -> client fetch loop -> controller, i.e. the paper's
/// whole testbed in miniature.
class EndToEndTest : public ::testing::Test {
 protected:
  EmpiricalSetup WanSetup(double scale, int concurrent_jobs,
                          double memory_pressure) {
    EmpiricalSetup setup;
    TpchGenOptions gen;
    gen.scale = scale;
    gen.seed = 11;
    auto customer = GenerateCustomer(gen);
    EXPECT_TRUE(customer.ok());
    setup.table = customer.value();
    setup.query.table_name = "customer";
    setup.query.projected_columns = {"c_custkey", "c_name", "c_acctbal"};
    setup.link = WanUkToSwitzerland();
    setup.load.concurrent_jobs = concurrent_jobs;
    setup.load.memory_pressure = memory_pressure;
    setup.seed = 23;
    return setup;
  }
};

TEST_F(EndToEndTest, AllTuplesArriveIntactUnderAdaptiveControl) {
  auto session = QuerySession::Create(WanSetup(0.01, 0, 0.0));  // 1500 rows
  ASSERT_TRUE(session.ok());
  auto controller = ControllerFactory::FromName("hybrid");
  ASSERT_TRUE(controller.ok());
  std::vector<Tuple> tuples;
  Result<FetchOutcome> outcome =
      session.value()->Execute(controller.value().get(), &tuples);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().total_tuples, 1500);
  ASSERT_EQ(tuples.size(), 1500u);
  // Keys arrive in order and intact.
  for (int i = 0; i < 1500; ++i) {
    EXPECT_EQ(std::get<int64_t>(tuples[i].value(0)), i + 1);
  }
}

TEST_F(EndToEndTest, EveryControllerFamilyDrainsTheQuery) {
  for (const char* name :
       {"fixed:300", "constant", "adaptive", "hybrid", "hybrid_s", "mimd",
        "model_quadratic", "model_parabolic", "self_tuning"}) {
    auto session = QuerySession::Create(WanSetup(0.005, 1, 0.0));
    ASSERT_TRUE(session.ok()) << name;
    auto controller = ControllerFactory::FromName(name);
    ASSERT_TRUE(controller.ok()) << name;
    Result<FetchOutcome> outcome =
        session.value()->Execute(controller.value().get());
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_EQ(outcome.value().total_tuples, 750) << name;
    EXPECT_GT(outcome.value().total_time_ms, 0.0) << name;
  }
}

TEST_F(EndToEndTest, FilterExpressionsTravelOverTheWire) {
  EmpiricalSetup setup = WanSetup(0.01, 0, 0.0);  // 1500 rows
  setup.query.filter =
      "c_acctbal >= 0 AND c_mktsegment = 'BUILDING'";
  auto session = QuerySession::Create(std::move(setup));
  ASSERT_TRUE(session.ok());
  FixedController controller(100);
  std::vector<Tuple> tuples;
  Result<FetchOutcome> outcome =
      session.value()->Execute(&controller, &tuples);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The filter executed server-side: some rows, strictly fewer than all.
  ASSERT_GT(tuples.size(), 0u);
  ASSERT_LT(tuples.size(), 1500u);
  for (const Tuple& tuple : tuples) {
    EXPECT_GE(std::get<double>(tuple.value(2)), 0.0);
  }
}

TEST_F(EndToEndTest, BadFilterFaultsAtOpen) {
  EmpiricalSetup setup = WanSetup(0.005, 0, 0.0);
  // Create succeeds only if the probe cursor compiles the filter; use a
  // filter valid only against a column the projection keeps — invalid
  // against the schema.
  setup.query.filter = "no_such_column = 1";
  EXPECT_FALSE(QuerySession::Create(std::move(setup)).ok());
}

TEST_F(EndToEndTest, ServerLoadSlowsTheSameQuery) {
  auto quiet = QuerySession::Create(WanSetup(0.005, 0, 0.0));
  auto busy = QuerySession::Create(WanSetup(0.005, 10, 0.3));
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(busy.ok());
  FixedController c1(250);
  FixedController c2(250);
  const auto t_quiet = quiet.value()->Execute(&c1);
  const auto t_busy = busy.value()->Execute(&c2);
  ASSERT_TRUE(t_quiet.ok());
  ASSERT_TRUE(t_busy.ok());
  EXPECT_GT(t_busy.value().total_time_ms, t_quiet.value().total_time_ms);
}

TEST_F(EndToEndTest, SimulatedClockAdvancesWithQueryTime) {
  auto session = QuerySession::Create(WanSetup(0.005, 0, 0.0));
  ASSERT_TRUE(session.ok());
  FixedController controller(200);
  const auto outcome = session.value()->Execute(&controller);
  ASSERT_TRUE(outcome.ok());
  // The session clock must have advanced by at least the fetch-loop time
  // (plus open/close overhead).
  EXPECT_GE(session.value()->clock().NowMicros(),
            static_cast<int64_t>(outcome.value().total_time_ms * 1000.0));
}

TEST_F(EndToEndTest, TraceIsInternallyConsistent) {
  auto session = QuerySession::Create(WanSetup(0.005, 0, 0.0));
  ASSERT_TRUE(session.ok());
  auto controller = ControllerFactory::FromName("constant");
  ASSERT_TRUE(controller.ok());
  const auto outcome = session.value()->Execute(controller.value().get());
  ASSERT_TRUE(outcome.ok());

  int64_t tuple_sum = 0;
  double time_sum = 0.0;
  for (const BlockTrace& trace : outcome.value().trace) {
    EXPECT_GT(trace.requested_size, 0);
    EXPECT_GE(trace.received_tuples, 0);
    EXPECT_LE(trace.received_tuples, trace.requested_size);
    EXPECT_GT(trace.response_time_ms, 0.0);
    tuple_sum += trace.received_tuples;
    time_sum += trace.response_time_ms;
  }
  EXPECT_EQ(tuple_sum, outcome.value().total_tuples);
  EXPECT_NEAR(time_sum, outcome.value().total_time_ms, 1e-6);
}

TEST_F(EndToEndTest, HybridBeatsPessimalFixedOnLoadedServer) {
  // On a memory-pressured server, a huge fixed block is pathological;
  // the hybrid controller must do better end to end.
  EmpiricalSetup setup = WanSetup(0.05, 2, 0.45);  // 7500 rows
  setup.load.buffer_capacity_tuples = 3000.0;

  auto session_fixed = QuerySession::Create(setup);
  auto session_hybrid = QuerySession::Create(setup);
  ASSERT_TRUE(session_fixed.ok());
  ASSERT_TRUE(session_hybrid.ok());

  FixedController big_fixed(20000);
  HybridConfig hybrid_config = PaperHybridConfig();
  hybrid_config.base.b1 = 500.0;
  hybrid_config.base.initial_block_size = 500;
  HybridController hybrid(hybrid_config);

  const auto t_fixed = session_fixed.value()->Execute(&big_fixed);
  const auto t_hybrid = session_hybrid.value()->Execute(&hybrid);
  ASSERT_TRUE(t_fixed.ok());
  ASSERT_TRUE(t_hybrid.ok());
  EXPECT_LT(t_hybrid.value().total_time_ms,
            t_fixed.value().total_time_ms);
}

}  // namespace
}  // namespace wsq
