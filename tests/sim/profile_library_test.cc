#include "wsq/sim/profile_library.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(ProfileLibraryTest, AllConfigurationsResolve) {
  for (const std::string& name : AllConfigurationNames()) {
    Result<ConfiguredProfile> conf = ConfigurationByName(name);
    ASSERT_TRUE(conf.ok()) << name;
    EXPECT_EQ(conf.value().profile->name(), name);
    EXPECT_TRUE(conf.value().limits.Valid()) << name;
    EXPECT_GT(conf.value().noise_amplitude, 0.0) << name;
    EXPECT_GT(conf.value().paper_b1, 0.0) << name;
  }
  EXPECT_EQ(ConfigurationByName("conf9.9").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AllConfigurationNames().size(), 5u);
}

TEST(ProfileLibraryTest, WanProfilesFavorLargeBlocks) {
  // conf1.1/conf1.2: the optimum is at (or near) the upper limit.
  for (const ConfiguredProfile& conf : {Conf1_1(), Conf1_2()}) {
    const int64_t optimum = NoiseFreeOptimum(
        *conf.profile, conf.limits.min_size, conf.limits.max_size, 100);
    EXPECT_GE(optimum, conf.limits.max_size * 7 / 10)
        << conf.profile->name();
  }
}

TEST(ProfileLibraryTest, Conf13OptimumShiftsLeftOfConf11) {
  const ConfiguredProfile c11 = Conf1_1();
  const ConfiguredProfile c13 = Conf1_3();
  const int64_t opt11 = NoiseFreeOptimum(*c11.profile, 100, 20000, 100);
  const int64_t opt13 = NoiseFreeOptimum(*c13.profile, 100, 20000, 100);
  EXPECT_LT(opt13, opt11);
  EXPECT_GT(opt13, 10000);  // "a small shift ... to the left"
}

TEST(ProfileLibraryTest, LanProfilesHaveInteriorOptima) {
  const ConfiguredProfile c21 = Conf2_1();
  const int64_t opt21 = NoiseFreeOptimum(*c21.profile, c21.limits.min_size,
                                         c21.limits.max_size, 25);
  EXPECT_GT(opt21, 1000);
  EXPECT_LT(opt21, 4000);  // paper: ~2.2K

  const ConfiguredProfile c22 = Conf2_2();
  const int64_t opt22 = NoiseFreeOptimum(*c22.profile, c22.limits.min_size,
                                         c22.limits.max_size, 25);
  EXPECT_GT(opt22, 5500);
  EXPECT_LT(opt22, 9500);  // paper: ~7.5K
}

TEST(ProfileLibraryTest, Fixed1000PenaltiesMatchPaperBand) {
  // Paper Table I: static 1000 tuples costs 1.39x (conf1.1), 2.05x
  // (conf1.2), 1.69x (conf1.3) of the optimum. Require the same band
  // (+-25%) on the noise-free curves.
  struct Expect {
    ConfiguredProfile conf;
    double ratio;
  };
  const Expect cases[] = {
      {Conf1_1(), 1.39}, {Conf1_2(), 2.05}, {Conf1_3(), 1.69}};
  for (const Expect& c : cases) {
    const int64_t opt = NoiseFreeOptimum(
        *c.conf.profile, c.conf.limits.min_size, c.conf.limits.max_size, 100);
    const double ratio =
        c.conf.profile->AggregateMs(1000.0) /
        c.conf.profile->AggregateMs(static_cast<double>(opt));
    EXPECT_NEAR(ratio, c.ratio, c.ratio * 0.25) << c.conf.profile->name();
  }
}

TEST(ProfileLibraryTest, Conf22PunishesUpperLimit) {
  // Fig. 7(a): at the 20K upper limit conf2.2 costs a multiple of the
  // optimum (overshoot there is what destabilizes constant gain).
  const ConfiguredProfile conf = Conf2_2();
  const int64_t opt = NoiseFreeOptimum(*conf.profile, 100, 20000, 50);
  const double ratio =
      conf.profile->AggregateMs(20000.0) /
      conf.profile->AggregateMs(static_cast<double>(opt));
  EXPECT_GT(ratio, 1.8);
}

TEST(ProfileLibraryTest, Conf22HasLocalMinima) {
  // Count sign changes of the discrete derivative: conf2.2 must have
  // multiple local minima ("many local minima" per the paper).
  const ConfiguredProfile conf = Conf2_2();
  int minima = 0;
  double prev = conf.profile->AggregateMs(100);
  double prev_slope = 0.0;
  for (int64_t x = 200; x <= 20000; x += 100) {
    const double y = conf.profile->AggregateMs(static_cast<double>(x));
    const double slope = y - prev;
    if (prev_slope < 0.0 && slope > 0.0) ++minima;
    prev_slope = slope;
    prev = y;
  }
  EXPECT_GE(minima, 2);
}

TEST(ProfileLibraryTest, DatasetSizesMatchWorkloads) {
  EXPECT_EQ(Conf1_1().profile->dataset_tuples(), 150000);
  EXPECT_EQ(Conf2_1().profile->dataset_tuples(), 150000);
  // conf2.2 uses the Orders result: 3x more tuples.
  EXPECT_EQ(Conf2_2().profile->dataset_tuples(), 450000);
}

TEST(ProfileLibraryTest, Conf21UsesReducedUpperLimit) {
  EXPECT_EQ(Conf2_1().limits.max_size, 7000);
  EXPECT_EQ(Conf2_2().limits.max_size, 20000);
}

TEST(ProfileLibraryTest, PaperB1Overrides) {
  EXPECT_EQ(Conf1_1().paper_b1, 2000.0);
  EXPECT_EQ(Conf1_2().paper_b1, 1200.0);  // paper drops b1 for conf1.2
  EXPECT_EQ(Conf2_1().paper_b1, 1200.0);
}

}  // namespace
}  // namespace wsq
