#include "wsq/sim/profile.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wsq {
namespace {

ParametricProfile::Params BaseParams() {
  ParametricProfile::Params p;
  p.name = "test";
  p.dataset_tuples = 100000;
  p.overhead_ms = 100.0;
  p.per_tuple_ms = 0.2;
  return p;
}

TEST(ParametricProfileTest, PureOverheadDecaysWithBlockSize) {
  ParametricProfile profile(BaseParams());
  EXPECT_GT(profile.AggregateMs(100), profile.AggregateMs(1000));
  EXPECT_GT(profile.AggregateMs(1000), profile.AggregateMs(10000));
  // T(x) = overhead * N / x + per_tuple * N exactly.
  EXPECT_NEAR(profile.AggregateMs(1000), 100.0 * 100.0 + 0.2 * 100000.0,
              1e-6);
}

TEST(ParametricProfileTest, PerTupleAndPerBlockConsistent) {
  ParametricProfile profile(BaseParams());
  const double agg = profile.AggregateMs(2000);
  EXPECT_NEAR(profile.PerTupleMs(2000), agg / 100000.0, 1e-12);
  EXPECT_NEAR(profile.PerBlockMs(2000), agg / 100000.0 * 2000.0, 1e-9);
}

TEST(ParametricProfileTest, PagingCreatesInteriorMinimum) {
  ParametricProfile::Params p = BaseParams();
  p.paging_ms = 1e-3;
  p.buffer_tuples = 5000.0;
  ParametricProfile profile(p);
  const int64_t optimum = NoiseFreeOptimum(profile, 100, 20000, 50);
  EXPECT_GT(optimum, 1000);
  EXPECT_LT(optimum, 12000);
  // Past the knee the curve must rise.
  EXPECT_GT(profile.AggregateMs(20000),
            profile.AggregateMs(static_cast<double>(optimum)));
}

TEST(ParametricProfileTest, BumpsCreateLocalStructure) {
  ParametricProfile::Params smooth = BaseParams();
  ParametricProfile::Params bumpy = BaseParams();
  bumpy.bumps = {{5000.0, 500.0, 3000.0}};
  ParametricProfile a(smooth);
  ParametricProfile b(bumpy);
  // At the bump center, the bumpy profile is higher by the bump height.
  EXPECT_NEAR(b.AggregateMs(5000) - a.AggregateMs(5000), 3000.0, 1.0);
  // Far away, identical.
  EXPECT_NEAR(b.AggregateMs(15000), a.AggregateMs(15000), 1.0);
}

TEST(ParametricProfileTest, NegativeBumpCarvesDip) {
  ParametricProfile::Params p = BaseParams();
  p.bumps = {{5000.0, 500.0, -2000.0}};
  ParametricProfile profile(p);
  ParametricProfile base(BaseParams());
  EXPECT_LT(profile.AggregateMs(5000), base.AggregateMs(5000));
}

TEST(ParametricProfileTest, BlockSizeBelowOneClamps) {
  ParametricProfile profile(BaseParams());
  EXPECT_EQ(profile.AggregateMs(0.0), profile.AggregateMs(1.0));
  EXPECT_EQ(profile.AggregateMs(-10.0), profile.AggregateMs(1.0));
}

TEST(TabulatedProfileTest, InterpolatesLinearly) {
  auto profile = TabulatedProfile::Create(
      "tab", 1000, {{100.0, 50.0}, {200.0, 100.0}, {400.0, 80.0}});
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().AggregateMs(100), 50.0);
  EXPECT_EQ(profile.value().AggregateMs(150), 75.0);
  EXPECT_EQ(profile.value().AggregateMs(200), 100.0);
  EXPECT_EQ(profile.value().AggregateMs(300), 90.0);
  // Flat extrapolation outside the table.
  EXPECT_EQ(profile.value().AggregateMs(50), 50.0);
  EXPECT_EQ(profile.value().AggregateMs(1000), 80.0);
}

TEST(TabulatedProfileTest, Validation) {
  EXPECT_FALSE(TabulatedProfile::Create("t", 100, {}).ok());
  EXPECT_FALSE(TabulatedProfile::Create(
                   "t", 100, {{100.0, 1.0}, {100.0, 2.0}})
                   .ok());
  EXPECT_FALSE(TabulatedProfile::Create(
                   "t", 100, {{200.0, 1.0}, {100.0, 2.0}})
                   .ok());
  EXPECT_FALSE(
      TabulatedProfile::Create("t", 0, {{100.0, 1.0}}).ok());
}

TEST(NoiseFreeOptimumTest, FindsGlobalMinimumOnGrid) {
  ParametricProfile::Params p = BaseParams();
  p.paging_ms = 1e-3;
  p.buffer_tuples = 4000.0;
  ParametricProfile profile(p);
  const int64_t optimum = NoiseFreeOptimum(profile, 100, 20000, 10);
  // Brute-force check: no grid point beats it.
  const double best = profile.AggregateMs(static_cast<double>(optimum));
  for (int64_t x = 100; x <= 20000; x += 10) {
    EXPECT_GE(profile.AggregateMs(static_cast<double>(x)) + 1e-9, best);
  }
}

TEST(NoiseFreeOptimumTest, UpperLimitConsideredEvenOffGrid) {
  // Monotone decreasing profile: the optimum is the exact max, even when
  // the step does not land on it.
  ParametricProfile profile(BaseParams());
  EXPECT_EQ(NoiseFreeOptimum(profile, 100, 9999, 1000), 9999);
}

}  // namespace
}  // namespace wsq
