#include "wsq/sim/ground_truth.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

ParametricProfile BowlProfile() {
  ParametricProfile::Params p;
  p.name = "bowl";
  p.dataset_tuples = 50000;
  p.overhead_ms = 100.0;
  p.per_tuple_ms = 0.1;
  p.paging_ms = 1e-3;
  p.buffer_tuples = 4000.0;
  return ParametricProfile(p);
}

SimOptions Options(double noise) {
  SimOptions options;
  options.noise_amplitude = noise;
  options.seed = 3;
  return options;
}

TEST(GroundTruthTest, SweepCoversGridIncludingMax) {
  ParametricProfile profile = BowlProfile();
  Result<GroundTruth> gt = ComputeGroundTruth(
      profile, {100, 10000}, 1000, 2, Options(0.0));
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt.value().sweep.front().block_size, 100);
  EXPECT_EQ(gt.value().sweep.back().block_size, 10000);
  // 100, 1100, ..., 9100, then 10000 appended.
  EXPECT_EQ(gt.value().sweep.size(), 11u);
}

TEST(GroundTruthTest, NoiseFreeOptimumMatchesProfile) {
  ParametricProfile profile = BowlProfile();
  Result<GroundTruth> gt =
      ComputeGroundTruth(profile, {100, 20000}, 200, 1, Options(0.0));
  ASSERT_TRUE(gt.ok());
  const int64_t direct = NoiseFreeOptimum(profile, 100, 20000, 200);
  EXPECT_EQ(gt.value().optimum_block_size, direct);
  EXPECT_GT(gt.value().optimum_mean_ms, 0.0);
}

TEST(GroundTruthTest, NoisyOptimumInNeighborhood) {
  ParametricProfile profile = BowlProfile();
  Result<GroundTruth> gt =
      ComputeGroundTruth(profile, {100, 20000}, 500, 6, Options(0.1));
  ASSERT_TRUE(gt.ok());
  const int64_t direct = NoiseFreeOptimum(profile, 100, 20000, 100);
  EXPECT_NEAR(static_cast<double>(gt.value().optimum_block_size),
              static_cast<double>(direct), 2500.0);
}

TEST(GroundTruthTest, StddevPopulatedWithRepeats) {
  ParametricProfile profile = BowlProfile();
  Result<GroundTruth> gt =
      ComputeGroundTruth(profile, {100, 5000}, 1000, 5, Options(0.15));
  ASSERT_TRUE(gt.ok());
  bool some_spread = false;
  for (const SweepPoint& point : gt.value().sweep) {
    EXPECT_GT(point.mean_ms, 0.0);
    if (point.stddev_ms > 0.0) some_spread = true;
  }
  EXPECT_TRUE(some_spread);
}

TEST(GroundTruthTest, Validation) {
  ParametricProfile profile = BowlProfile();
  EXPECT_FALSE(
      ComputeGroundTruth(profile, {100, 50}, 100, 1, Options(0.0)).ok());
  EXPECT_FALSE(
      ComputeGroundTruth(profile, {100, 500}, 0, 1, Options(0.0)).ok());
  EXPECT_FALSE(
      ComputeGroundTruth(profile, {100, 500}, 100, 0, Options(0.0)).ok());
}

}  // namespace
}  // namespace wsq
