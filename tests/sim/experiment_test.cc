#include "wsq/sim/experiment.h"

#include <gtest/gtest.h>

#include "wsq/control/fixed_controller.h"
#include "wsq/control/switching_controller.h"

namespace wsq {
namespace {

ParametricProfile::Params SmallProfile() {
  ParametricProfile::Params p;
  p.name = "small";
  p.dataset_tuples = 20000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  return p;
}

SimOptions Noisy(uint64_t seed = 1) {
  SimOptions options;
  options.noise_amplitude = 0.1;
  options.seed = seed;
  return options;
}

ControllerFactoryFn FixedFactory(int64_t size) {
  return [size]() {
    return std::unique_ptr<Controller>(new FixedController(size));
  };
}

TEST(RunRepeatedTest, AggregatesAcrossRuns) {
  ParametricProfile profile(SmallProfile());
  Result<RepeatedRunSummary> summary =
      RunRepeated(FixedFactory(2000), profile, 5, Noisy());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().controller_name, "fixed_2000");
  EXPECT_EQ(summary.value().total_time_ms.count(), 5u);
  EXPECT_GT(summary.value().total_time_ms.mean(), 0.0);
  // Noise across seeds -> nonzero spread.
  EXPECT_GT(summary.value().total_time_ms.stddev(), 0.0);
  // 20000 tuples at 2000/block = 10 steps.
  EXPECT_EQ(summary.value().mean_decision_per_step.size(), 10u);
  for (double decision : summary.value().mean_decision_per_step) {
    EXPECT_DOUBLE_EQ(decision, 2000.0);
  }
  EXPECT_DOUBLE_EQ(summary.value().final_block_size.mean(), 2000.0);
}

TEST(RunRepeatedTest, NormalizedMean) {
  ParametricProfile profile(SmallProfile());
  Result<RepeatedRunSummary> summary =
      RunRepeated(FixedFactory(2000), profile, 3, Noisy());
  ASSERT_TRUE(summary.ok());
  const double mean = summary.value().total_time_ms.mean();
  EXPECT_NEAR(summary.value().NormalizedMean(mean), 1.0, 1e-12);
  EXPECT_NEAR(summary.value().NormalizedMean(mean / 2.0), 2.0, 1e-12);
  EXPECT_EQ(summary.value().NormalizedMean(0.0), 0.0);
}

TEST(RunRepeatedTest, TruncatesToShortestRun) {
  // An adaptive controller produces different run lengths across seeds;
  // the mean decision trace must be the common prefix.
  ParametricProfile profile(SmallProfile());
  auto factory = []() {
    SwitchingConfig config;
    config.b1 = 500.0;
    config.averaging_horizon = 1;
    config.dither_factor = 25.0;
    config.limits = {100, 20000};
    config.initial_block_size = 500;
    return std::unique_ptr<Controller>(
        new SwitchingExtremumController(config));
  };
  Result<RepeatedRunSummary> summary =
      RunRepeated(factory, profile, 4, Noisy(9));
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary.value().mean_decision_per_step.size(), 3u);
  EXPECT_EQ(summary.value().final_block_size.count(), 4u);
}

TEST(RunRepeatedTest, Validation) {
  ParametricProfile profile(SmallProfile());
  EXPECT_FALSE(RunRepeated(FixedFactory(100), profile, 0, Noisy()).ok());
  auto null_factory = []() { return std::unique_ptr<Controller>(); };
  EXPECT_FALSE(RunRepeated(null_factory, profile, 2, Noisy()).ok());
}

TEST(RunRepeatedScheduleTest, RunsFixedStepCount) {
  ParametricProfile profile(SmallProfile());
  Result<RepeatedRunSummary> summary = RunRepeatedSchedule(
      FixedFactory(1000), {&profile}, 10, 30, 3, Noisy());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().mean_decision_per_step.size(), 30u);
  EXPECT_EQ(summary.value().total_time_ms.count(), 3u);
}

TEST(RunRepeatedScheduleTest, SingleProfileScheduleActsLikeUnboundedRun) {
  // A one-entry schedule: the profile stays active for all steps, even
  // past steps_per_profile (the last entry extends to the end).
  ParametricProfile profile(SmallProfile());
  Result<RepeatedRunSummary> summary = RunRepeatedSchedule(
      FixedFactory(1500), {&profile}, /*steps_per_profile=*/5,
      /*total_steps=*/23, /*runs=*/2, Noisy());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().mean_decision_per_step.size(), 23u);
  for (double decision : summary.value().mean_decision_per_step) {
    EXPECT_DOUBLE_EQ(decision, 1500.0);
  }
  EXPECT_EQ(summary.value().total_time_ms.count(), 2u);
}

TEST(RunRepeatedScheduleTest, TotalStepsNotMultipleOfStepsPerProfile) {
  // 16 steps over two profiles at 7 steps each: the second profile
  // serves the ragged tail (steps 14 and 15) instead of the schedule
  // running out.
  ParametricProfile cheap(SmallProfile());
  ParametricProfile::Params expensive_params = SmallProfile();
  expensive_params.name = "expensive";
  expensive_params.per_tuple_ms = 5.0;
  ParametricProfile expensive(expensive_params);

  Result<RepeatedRunSummary> summary = RunRepeatedSchedule(
      FixedFactory(1000), {&cheap, &expensive}, /*steps_per_profile=*/7,
      /*total_steps=*/16, /*runs=*/3, Noisy());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().mean_decision_per_step.size(), 16u);

  // The run must cost more than 16 steps of the cheap profile alone
  // would: the expensive tail profile was genuinely active.
  Result<RepeatedRunSummary> cheap_only = RunRepeatedSchedule(
      FixedFactory(1000), {&cheap}, 7, 16, 3, Noisy());
  ASSERT_TRUE(cheap_only.ok());
  EXPECT_GT(summary.value().total_time_ms.mean(),
            cheap_only.value().total_time_ms.mean());
}

TEST(RunRepeatedScheduleTest, Validation) {
  ParametricProfile profile(SmallProfile());
  EXPECT_FALSE(RunRepeatedSchedule(FixedFactory(100), {&profile}, 10, 30, 0,
                                   Noisy())
                   .ok());
  EXPECT_FALSE(
      RunRepeatedSchedule(FixedFactory(100), {}, 10, 30, 2, Noisy()).ok());
}

}  // namespace
}  // namespace wsq
