#include "wsq/sim/sim_engine.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "wsq/control/fixed_controller.h"
#include "wsq/control/switching_controller.h"
#include "wsq/sim/profile.h"

namespace wsq {
namespace {

ParametricProfile::Params FlatParams() {
  ParametricProfile::Params p;
  p.name = "flat";
  p.dataset_tuples = 10000;
  p.overhead_ms = 0.0;
  p.per_tuple_ms = 1.0;  // per-tuple cost exactly 1 ms, any block size
  return p;
}

SimOptions Quiet(uint64_t seed = 1) {
  SimOptions options;
  options.noise_amplitude = 0.0;
  options.seed = seed;
  return options;
}

TEST(SimEngineTest, RunQueryAccountsExactTotalOnFlatProfile) {
  ParametricProfile profile(FlatParams());
  SimEngine engine(Quiet());
  FixedController controller(1000);
  Result<SimRunResult> result = engine.RunQuery(&controller, profile);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_tuples, 10000);
  EXPECT_EQ(result.value().total_blocks, 10);
  EXPECT_NEAR(result.value().total_time_ms, 10000.0, 1e-6);
  ASSERT_EQ(result.value().steps.size(), 10u);
  EXPECT_EQ(result.value().steps[3].block_size, 1000);
  EXPECT_NEAR(result.value().steps[3].per_tuple_ms, 1.0, 1e-9);
}

TEST(SimEngineTest, TailBlockCountsPartialTuples) {
  ParametricProfile profile(FlatParams());
  SimEngine engine(Quiet());
  FixedController controller(3000);
  Result<SimRunResult> result = engine.RunQuery(&controller, profile);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_blocks, 4);  // 3+3+3+1K tail
  EXPECT_EQ(result.value().total_tuples, 10000);
  EXPECT_NEAR(result.value().total_time_ms, 10000.0, 1e-6);
}

TEST(SimEngineTest, NoiseIsBoundedUniform) {
  ParametricProfile profile(FlatParams());
  SimOptions options = Quiet(7);
  options.noise_amplitude = 0.2;
  SimEngine engine(options);
  FixedController controller(100);
  Result<SimRunResult> result = engine.RunQuery(&controller, profile);
  ASSERT_TRUE(result.ok());
  bool varied = false;
  for (const SimStep& step : result.value().steps) {
    EXPECT_GE(step.per_tuple_ms, 0.8 - 1e-9);
    EXPECT_LE(step.per_tuple_ms, 1.2 + 1e-9);
    if (std::fabs(step.per_tuple_ms - 1.0) > 1e-6) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(SimEngineTest, SameSeedReproduces) {
  ParametricProfile profile(FlatParams());
  SimOptions options = Quiet(42);
  options.noise_amplitude = 0.3;

  auto run = [&]() {
    SimEngine engine(options);
    FixedController controller(500);
    return engine.RunQuery(&controller, profile).value().total_time_ms;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimEngineTest, DriftMovesTheOptimum) {
  // With heavy positive drift clamped at 2.0, the same block size is
  // evaluated at x/scale, changing the measured value.
  ParametricProfile::Params p = FlatParams();
  p.overhead_ms = 100.0;  // so the value depends on x
  ParametricProfile profile(p);
  SimOptions options = Quiet(3);
  options.drift_sigma = 0.1;
  SimEngine engine(options);
  FixedController controller(1000);
  Result<SimRunResult> result = engine.RunQuery(&controller, profile);
  ASSERT_TRUE(result.ok());
  std::set<double> values;
  for (const SimStep& step : result.value().steps) {
    values.insert(step.per_tuple_ms);
  }
  EXPECT_GT(values.size(), 1u);
}

TEST(SimEngineTest, TransientPenaltyHitsSizeChanges) {
  ParametricProfile profile(FlatParams());
  SimOptions options = Quiet();
  options.transient_penalty = 0.5;
  SimEngine engine(options);

  // A controller that changes size once: 1000, 1000, 2000, 2000 ...
  class TwoPhase : public Controller {
   public:
    int64_t initial_block_size() const override { return 1000; }
    int64_t NextBlockSize(double) override {
      ++calls_;
      return calls_ >= 2 ? 2000 : 1000;
    }
    int64_t adaptivity_steps() const override { return calls_; }
    void Reset() override { calls_ = 0; }
    std::string name() const override { return "two_phase"; }

   private:
    int calls_ = 0;
  } controller;

  Result<SimRunResult> result = engine.RunQuery(&controller, profile);
  ASSERT_TRUE(result.ok());
  const auto& steps = result.value().steps;
  // First measurement: fresh size -> penalized. Second at same size:
  // clean. First 2000-block: penalized again.
  EXPECT_NEAR(steps[0].per_tuple_ms, 1.5, 1e-9);
  EXPECT_NEAR(steps[1].per_tuple_ms, 1.0, 1e-9);
  EXPECT_NEAR(steps[2].per_tuple_ms, 1.5, 1e-9);
  EXPECT_NEAR(steps[3].per_tuple_ms, 1.0, 1e-9);
}

TEST(SimEngineTest, RunScheduleSwitchesProfiles) {
  ParametricProfile::Params cheap = FlatParams();
  cheap.per_tuple_ms = 1.0;
  ParametricProfile::Params expensive = FlatParams();
  expensive.per_tuple_ms = 10.0;
  ParametricProfile a(cheap);
  ParametricProfile b(expensive);

  SimEngine engine(Quiet());
  FixedController controller(1000);
  Result<SimRunResult> result =
      engine.RunSchedule(&controller, {&a, &b}, 5, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().steps.size(), 10u);
  EXPECT_NEAR(result.value().steps[0].per_tuple_ms, 1.0, 1e-9);
  EXPECT_NEAR(result.value().steps[4].per_tuple_ms, 1.0, 1e-9);
  EXPECT_NEAR(result.value().steps[5].per_tuple_ms, 10.0, 1e-9);
  EXPECT_NEAR(result.value().steps[9].per_tuple_ms, 10.0, 1e-9);
}

TEST(SimEngineTest, RunScheduleLastProfilePersists) {
  ParametricProfile a(FlatParams());
  SimEngine engine(Quiet());
  FixedController controller(100);
  // total_steps beyond schedule length * steps_per_profile.
  Result<SimRunResult> result =
      engine.RunSchedule(&controller, {&a}, 5, 20);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().steps.size(), 20u);
}

TEST(SimEngineTest, InputValidation) {
  ParametricProfile profile(FlatParams());
  SimEngine engine(Quiet());
  FixedController controller(100);
  EXPECT_FALSE(engine.RunQuery(nullptr, profile).ok());
  EXPECT_FALSE(engine.RunSchedule(nullptr, {&profile}, 5, 10).ok());
  EXPECT_FALSE(engine.RunSchedule(&controller, {}, 5, 10).ok());
  EXPECT_FALSE(
      engine.RunSchedule(&controller, {&profile, nullptr}, 5, 10).ok());
  EXPECT_FALSE(engine.RunSchedule(&controller, {&profile}, 0, 10).ok());
  EXPECT_FALSE(engine.RunSchedule(&controller, {&profile}, 5, 0).ok());
}

TEST(SimEngineTest, ControllerDrivesBlockSizes) {
  // End-to-end: a constant-gain controller fed by the engine must
  // actually change the requested sizes.
  ParametricProfile::Params p = FlatParams();
  p.dataset_tuples = 200000;
  p.overhead_ms = 120.0;
  ParametricProfile profile(p);

  SwitchingConfig config;
  config.b1 = 1000.0;
  config.dither_factor = 0.0;
  config.averaging_horizon = 1;
  config.limits = {100, 20000};
  config.initial_block_size = 1000;
  SwitchingExtremumController controller(config);

  SimEngine engine(Quiet());
  Result<SimRunResult> result = engine.RunQuery(&controller, profile);
  ASSERT_TRUE(result.ok());
  std::set<int64_t> sizes;
  for (const SimStep& step : result.value().steps) {
    sizes.insert(step.block_size);
  }
  EXPECT_GT(sizes.size(), 3u);
}

}  // namespace
}  // namespace wsq
