#include "wsq/sim/profile_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "wsq/sim/profile_library.h"

namespace wsq {
namespace {

GroundTruth SampleSweep() {
  GroundTruth gt;
  gt.sweep = {{500, 900.0, 10.0}, {1000, 700.0, 8.0}, {2000, 800.0, 12.0}};
  gt.optimum_block_size = 1000;
  gt.optimum_mean_ms = 700.0;
  return gt;
}

TEST(ProfileFromSweepTest, BuildsInterpolatingProfile) {
  Result<TabulatedProfile> profile =
      ProfileFromSweep("captured", 10000, SampleSweep());
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().name(), "captured");
  EXPECT_EQ(profile.value().dataset_tuples(), 10000);
  EXPECT_DOUBLE_EQ(profile.value().AggregateMs(1000), 700.0);
  EXPECT_DOUBLE_EQ(profile.value().AggregateMs(750), 800.0);  // midpoint
  EXPECT_EQ(NoiseFreeOptimum(profile.value(), 500, 2000, 50), 1000);
}

TEST(ProfileFromSweepTest, EmptySweepRejected) {
  GroundTruth empty;
  EXPECT_FALSE(ProfileFromSweep("x", 1000, empty).ok());
  EXPECT_FALSE(ProfileFromSweep("x", 0, SampleSweep()).ok());
}

TEST(ProfileCsvTest, SaveLoadRoundTrip) {
  Result<TabulatedProfile> original =
      ProfileFromSweep("orig", 10000, SampleSweep());
  ASSERT_TRUE(original.ok());

  const std::string path = ::testing::TempDir() + "/wsq_profile_io.csv";
  ASSERT_TRUE(
      SaveProfileCsv(original.value(), 500, 2000, 250, path).ok());

  Result<TabulatedProfile> loaded = LoadProfileCsv("copy", 10000, path);
  ASSERT_TRUE(loaded.ok());
  // Agreement on a fine grid (both interpolate the same table points).
  for (int64_t x = 500; x <= 2000; x += 50) {
    EXPECT_NEAR(loaded.value().AggregateMs(static_cast<double>(x)),
                original.value().AggregateMs(static_cast<double>(x)), 0.01)
        << x;
  }
  std::remove(path.c_str());
}

TEST(ProfileCsvTest, SaveIncludesExactUpperLimit) {
  Result<TabulatedProfile> original =
      ProfileFromSweep("orig", 10000, SampleSweep());
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/wsq_profile_io2.csv";
  // Step 700 from 500 does not land on 2000; the save must append it.
  ASSERT_TRUE(SaveProfileCsv(original.value(), 500, 2000, 700, path).ok());
  Result<TabulatedProfile> loaded = LoadProfileCsv("copy", 10000, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded.value().AggregateMs(2000),
              original.value().AggregateMs(2000), 0.01);
  std::remove(path.c_str());
}

TEST(ProfileCsvTest, SaveValidatesGrid) {
  Result<TabulatedProfile> original =
      ProfileFromSweep("orig", 10000, SampleSweep());
  ASSERT_TRUE(original.ok());
  EXPECT_FALSE(SaveProfileCsv(original.value(), 0, 2000, 100, "/tmp/x").ok());
  EXPECT_FALSE(
      SaveProfileCsv(original.value(), 2000, 500, 100, "/tmp/x").ok());
  EXPECT_FALSE(SaveProfileCsv(original.value(), 500, 2000, 0, "/tmp/x").ok());
}

TEST(ProfileCsvTest, LoadRejectsMissingAndMalformed) {
  EXPECT_EQ(LoadProfileCsv("x", 1000, "/nonexistent/file.csv")
                .status()
                .code(),
            StatusCode::kUnavailable);

  const std::string path = ::testing::TempDir() + "/wsq_profile_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("block_size,aggregate_ms\nnot_a_number,5\n", f);
  std::fclose(f);
  EXPECT_EQ(LoadProfileCsv("x", 1000, path).status().code(),
            StatusCode::kInvalidArgument);

  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("block_size,aggregate_ms\n100;5\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadProfileCsv("x", 1000, path).ok());
  std::remove(path.c_str());
}

TEST(ProfileCsvTest, LoadRejectsNonIncreasingSizes) {
  const std::string path = ::testing::TempDir() + "/wsq_profile_order.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("block_size,aggregate_ms\n200,5\n100,6\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadProfileCsv("x", 1000, path).ok());
  std::remove(path.c_str());
}

TEST(ProfileIoTest, CapturedLibraryProfileDrivesSimEngine) {
  // End-to-end within sim: ground truth of conf2.1 -> captured profile
  // -> controller run on the capture lands near the same optimum.
  const ConfiguredProfile conf = Conf2_1();
  SimOptions options;
  options.noise_amplitude = 0.0;
  options.seed = 1;
  Result<GroundTruth> gt =
      ComputeGroundTruth(*conf.profile, conf.limits, 250, 1, options);
  ASSERT_TRUE(gt.ok());
  Result<TabulatedProfile> captured =
      ProfileFromSweep("conf2.1-capture", conf.profile->dataset_tuples(),
                       gt.value());
  ASSERT_TRUE(captured.ok());
  const int64_t original =
      NoiseFreeOptimum(*conf.profile, conf.limits.min_size,
                       conf.limits.max_size, 50);
  const int64_t recaptured =
      NoiseFreeOptimum(captured.value(), conf.limits.min_size,
                       conf.limits.max_size, 50);
  EXPECT_NEAR(static_cast<double>(recaptured),
              static_cast<double>(original), 300.0);
}

}  // namespace
}  // namespace wsq
