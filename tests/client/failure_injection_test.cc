// Failure-injection tests: the simulated link drops requests, the
// fetch loop retries, and the accounting stays consistent.

#include <memory>

#include <gtest/gtest.h>

#include "wsq/client/query_session.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/netsim/presets.h"

namespace wsq {
namespace {

std::shared_ptr<Table> MakeNums(int rows) {
  auto table = std::make_shared<Table>(
      "nums", Schema({{"id", ColumnType::kInt64}}));
  for (int i = 0; i < rows; ++i) {
    table->AppendUnchecked(Tuple({Value(static_cast<int64_t>(i))}));
  }
  return table;
}

EmpiricalSetup LossySetup(int rows, double drop_probability,
                          uint64_t seed = 77) {
  EmpiricalSetup setup;
  setup.table = MakeNums(rows);
  setup.query.table_name = "nums";
  setup.link = Lan1Gbps();
  setup.link.jitter_sigma = 0.0;
  setup.link.drop_probability = drop_probability;
  setup.link.timeout_ms = 500.0;
  setup.load.noise_sigma = 0.0;
  setup.seed = seed;
  return setup;
}

TEST(LinkConfigFailureTest, DropValidation) {
  LinkConfig config = Lan1Gbps();
  config.drop_probability = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.drop_probability = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.drop_probability = 0.3;
  config.timeout_ms = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.timeout_ms = 100.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FailureInjectionTest, LossyLinkStillDeliversEverything) {
  auto session = QuerySession::Create(LossySetup(500, 0.15));
  ASSERT_TRUE(session.ok());
  FixedController controller(25);  // many exchanges -> many drop chances
  std::vector<Tuple> tuples;
  Result<FetchOutcome> outcome =
      session.value()->Execute(&controller, &tuples);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().total_tuples, 500);
  ASSERT_EQ(tuples.size(), 500u);
  // No duplicates or losses: ids arrive exactly once, in order.
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(std::get<int64_t>(tuples[i].value(0)), i);
  }
  EXPECT_GT(outcome.value().retries, 0);
}

TEST(FailureInjectionTest, RetriesChargeTheTimeout) {
  auto lossless = QuerySession::Create(LossySetup(500, 0.0));
  auto lossy = QuerySession::Create(LossySetup(500, 0.15));
  ASSERT_TRUE(lossless.ok());
  ASSERT_TRUE(lossy.ok());
  FixedController c1(25);
  FixedController c2(25);
  auto clean = lossless.value()->Execute(&c1);
  auto dirty = lossy.value()->Execute(&c2);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dirty.ok());
  // The lossy run costs at least its retries' timeouts more.
  EXPECT_GE(dirty.value().total_time_ms,
            clean.value().total_time_ms +
                static_cast<double>(dirty.value().retries) * 500.0 * 0.99);
}

TEST(FailureInjectionTest, PersistentOutageEventuallyFails) {
  // With a drop probability this high, three attempts per call are not
  // enough: the fetch must surface kUnavailable instead of spinning.
  auto session = QuerySession::Create(LossySetup(100, 0.95, /*seed=*/5));
  ASSERT_TRUE(session.ok());
  FixedController controller(10);
  Result<FetchOutcome> outcome = session.value()->Execute(&controller);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjectionTest, DropsAreCountedOnTheClient) {
  EmpiricalSetup setup = LossySetup(300, 0.2);
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(setup.table).ok());
  DataService service(&dbms);
  ServiceContainer container(&service, setup.load, 1);
  SimClock clock;
  WsClient client(&container, setup.link, &clock, 3);

  int drops = 0;
  OpenSessionRequest request;
  request.table = "nums";
  const std::string doc = EncodeOpenSession(request);
  for (int i = 0; i < 200; ++i) {
    Result<CallResult> call = client.Call(doc);
    if (!call.ok()) {
      EXPECT_EQ(call.status().code(), StatusCode::kUnavailable);
      ++drops;
    }
  }
  EXPECT_EQ(client.calls_dropped(), drops);
  // ~20% of 200: loose band.
  EXPECT_GT(drops, 15);
  EXPECT_LT(drops, 85);
}

TEST(FailureInjectionTest, FaultsAreNotRetried) {
  // A SOAP fault (unknown table) is deterministic; the retry budget
  // must not be spent on it.
  EmpiricalSetup setup = LossySetup(10, 0.0);
  setup.query.table_name = "ghost";
  // Creation already fails (projection resolution): use a direct stack.
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(setup.table).ok());
  DataService service(&dbms);
  ServiceContainer container(&service, setup.load, 1);
  SimClock clock;
  WsClient client(&container, setup.link, &clock, 3);
  FixedController controller(10);
  BlockFetcher fetcher(&client, &controller, /*max_retries_per_call=*/5);

  ScanProjectQuery query;
  query.table_name = "ghost";
  Result<FetchOutcome> outcome = fetcher.Run(query);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kRemoteFault);
  // One call, no retries.
  EXPECT_EQ(client.calls_made(), 1);
}

}  // namespace
}  // namespace wsq
