#include "wsq/client/block_shipper.h"

#include <set>

#include <gtest/gtest.h>

#include "wsq/client/ws_client.h"
#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/server/container.h"
#include "wsq/server/processing_service.h"

namespace wsq {
namespace {

Schema InSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"v", ColumnType::kDouble}});
}

Schema OutSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"doubled", ColumnType::kDouble}});
}

ProcessingFunction DoubleFunction() {
  ProcessingFunction function;
  function.input_schema = InSchema();
  function.output_schema = OutSchema();
  function.transform = [](const Tuple& input) -> Result<Tuple> {
    return Tuple(
        {input.value(0), Value(std::get<double>(input.value(1)) * 2.0)});
  };
  return function;
}

Table MakeInput(int rows) {
  Table table("input", InSchema());
  for (int i = 0; i < rows; ++i) {
    table.AppendUnchecked(
        Tuple({Value(static_cast<int64_t>(i)), Value(i * 0.5)}));
  }
  return table;
}

/// The full push-direction stack on a chosen link.
class ShipperStack {
 public:
  explicit ShipperStack(const LinkConfig& link, uint64_t seed = 3)
      : container_(&service_, QuietLoad(), seed),
        client_(&container_, link, &clock_, seed + 1) {
    EXPECT_TRUE(service_.RegisterFunction("double", DoubleFunction()).ok());
  }

  static LoadModelConfig QuietLoad() {
    LoadModelConfig load;
    load.noise_sigma = 0.0;
    return load;
  }

  WsClient& client() { return client_; }

 private:
  ProcessingService service_;
  SimClock clock_;
  ServiceContainer container_;
  WsClient client_;
};

LinkConfig CleanLan() {
  LinkConfig link = Lan1Gbps();
  link.jitter_sigma = 0.0;
  return link;
}

TEST(BlockShipperTest, ShipsEverythingInOrder) {
  ShipperStack stack(CleanLan());
  FixedController controller(16);
  BlockShipper shipper(&stack.client(), &controller);

  Table input = MakeInput(103);
  std::vector<Tuple> results;
  Result<FetchOutcome> outcome =
      shipper.Run(input, "double", InSchema(), OutSchema(), &results);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().total_tuples, 103);
  EXPECT_EQ(outcome.value().total_blocks, 7);  // 6x16 + 7
  ASSERT_EQ(results.size(), 103u);
  for (int i = 0; i < 103; ++i) {
    EXPECT_EQ(std::get<int64_t>(results[i].value(0)), i);
    EXPECT_DOUBLE_EQ(std::get<double>(results[i].value(1)), i * 1.0);
  }
}

TEST(BlockShipperTest, SchemaMismatchRejectedLocally) {
  ShipperStack stack(CleanLan());
  FixedController controller(16);
  BlockShipper shipper(&stack.client(), &controller);
  Table wrong("wrong", OutSchema());
  EXPECT_EQ(shipper.Run(wrong, "double", InSchema(), OutSchema())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stack.client().calls_made(), 0);  // never went remote
}

TEST(BlockShipperTest, UnknownFunctionSurfacesFault) {
  ShipperStack stack(CleanLan());
  FixedController controller(16);
  BlockShipper shipper(&stack.client(), &controller);
  Table input = MakeInput(5);
  EXPECT_EQ(shipper.Run(input, "ghost", InSchema(), OutSchema())
                .status()
                .code(),
            StatusCode::kRemoteFault);
}

TEST(BlockShipperTest, AdaptiveControllerDrivesBlockSizes) {
  ShipperStack stack(WanUkToSwitzerland());
  auto controller = ControllerFactory::FromName("constant");
  ASSERT_TRUE(controller.ok());
  BlockShipper shipper(&stack.client(), controller.value().get());

  Table input = MakeInput(30000);
  Result<FetchOutcome> outcome =
      shipper.Run(input, "double", InSchema(), OutSchema());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().total_tuples, 30000);
  std::set<int64_t> sizes;
  for (const BlockTrace& trace : outcome.value().trace) {
    sizes.insert(trace.requested_size);
  }
  EXPECT_GT(sizes.size(), 2u);  // the controller actually adapted
}

TEST(BlockShipperTest, RetriesThroughLossyLink) {
  LinkConfig lossy = CleanLan();
  lossy.drop_probability = 0.2;
  lossy.timeout_ms = 200.0;
  ShipperStack stack(lossy, /*seed=*/17);
  FixedController controller(8);
  BlockShipper shipper(&stack.client(), &controller,
                       /*max_retries_per_call=*/4);
  Table input = MakeInput(200);
  std::vector<Tuple> results;
  Result<FetchOutcome> outcome =
      shipper.Run(input, "double", InSchema(), OutSchema(), &results);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(results.size(), 200u);
  EXPECT_GT(outcome.value().retries, 0);
}

TEST(BlockShipperTest, EmptyTableIsANoop) {
  ShipperStack stack(CleanLan());
  FixedController controller(8);
  BlockShipper shipper(&stack.client(), &controller);
  Table input = MakeInput(0);
  Result<FetchOutcome> outcome =
      shipper.Run(input, "double", InSchema(), OutSchema());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().total_blocks, 0);
  EXPECT_EQ(stack.client().calls_made(), 0);
}

}  // namespace
}  // namespace wsq
