#include <memory>

#include <gtest/gtest.h>

#include "wsq/client/block_fetcher.h"
#include "wsq/client/query_session.h"
#include "wsq/client/ws_client.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

std::shared_ptr<Table> MakeNums(int rows) {
  auto table = std::make_shared<Table>(
      "nums", Schema({{"id", ColumnType::kInt64},
                      {"label", ColumnType::kString}}));
  for (int i = 0; i < rows; ++i) {
    table->AppendUnchecked(Tuple(
        {Value(static_cast<int64_t>(i)), Value("r" + std::to_string(i))}));
  }
  return table;
}

EmpiricalSetup MakeSetup(int rows) {
  EmpiricalSetup setup;
  setup.table = MakeNums(rows);
  setup.query.table_name = "nums";
  setup.link = Lan1Gbps();
  setup.link.jitter_sigma = 0.0;
  setup.load.noise_sigma = 0.0;
  setup.seed = 5;
  return setup;
}

TEST(WsClientTest, CallAdvancesClockAndReturnsResponse) {
  EmpiricalSetup setup = MakeSetup(10);
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(setup.table).ok());
  DataService service(&dbms);
  ServiceContainer container(&service, setup.load, 1);
  SimClock clock;
  WsClient client(&container, setup.link, &clock, 2);

  OpenSessionRequest request;
  request.table = "nums";
  Result<CallResult> result = client.Call(EncodeOpenSession(request));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().elapsed_ms, 0.0);
  EXPECT_GT(clock.NowMicros(), 0);
  EXPECT_EQ(client.calls_made(), 1);
}

TEST(WsClientTest, FaultSurfacesAsRemoteFaultButCostsTime) {
  EmpiricalSetup setup = MakeSetup(1);
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(setup.table).ok());
  DataService service(&dbms);
  ServiceContainer container(&service, setup.load, 1);
  SimClock clock;
  WsClient client(&container, setup.link, &clock, 2);

  OpenSessionRequest request;
  request.table = "ghost";
  Result<CallResult> result = client.Call(EncodeOpenSession(request));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRemoteFault);
  EXPECT_GT(clock.NowMicros(), 0);
}

TEST(QuerySessionTest, CreateValidatesSetup) {
  EmpiricalSetup bad = MakeSetup(1);
  bad.table = nullptr;
  EXPECT_FALSE(QuerySession::Create(std::move(bad)).ok());

  EmpiricalSetup bad_link = MakeSetup(1);
  bad_link.link.bandwidth_mbps = 0.0;
  EXPECT_FALSE(QuerySession::Create(std::move(bad_link)).ok());

  EmpiricalSetup bad_query = MakeSetup(1);
  bad_query.query.projected_columns = {"ghost_column"};
  EXPECT_FALSE(QuerySession::Create(std::move(bad_query)).ok());
}

TEST(QuerySessionTest, FixedControllerDrainsAllTuples) {
  auto session = QuerySession::Create(MakeSetup(103));
  ASSERT_TRUE(session.ok());
  FixedController controller(10);
  Result<FetchOutcome> outcome = session.value()->Execute(&controller);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().total_tuples, 103);
  EXPECT_EQ(outcome.value().total_blocks, 11);  // 10 full + 1 tail of 3
  EXPECT_GT(outcome.value().total_time_ms, 0.0);
  ASSERT_EQ(outcome.value().trace.size(), 11u);
  EXPECT_EQ(outcome.value().trace.back().received_tuples, 3);
}

TEST(QuerySessionTest, KeepTuplesReturnsData) {
  auto session = QuerySession::Create(MakeSetup(25));
  ASSERT_TRUE(session.ok());
  FixedController controller(7);
  std::vector<Tuple> tuples;
  Result<FetchOutcome> outcome =
      session.value()->Execute(&controller, &tuples);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(tuples.size(), 25u);
  EXPECT_EQ(std::get<int64_t>(tuples[0].value(0)), 0);
  EXPECT_EQ(std::get<std::string>(tuples[24].value(1)), "r24");
}

TEST(QuerySessionTest, ProjectionFlowsEndToEnd) {
  EmpiricalSetup setup = MakeSetup(5);
  setup.query.projected_columns = {"label"};
  auto session = QuerySession::Create(std::move(setup));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value()->output_schema().num_columns(), 1u);

  FixedController controller(2);
  std::vector<Tuple> tuples;
  Result<FetchOutcome> outcome =
      session.value()->Execute(&controller, &tuples);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(tuples.size(), 5u);
  EXPECT_EQ(tuples[3].num_values(), 1u);
  EXPECT_EQ(std::get<std::string>(tuples[3].value(0)), "r3");
}

TEST(QuerySessionTest, NullControllerRejected) {
  auto session = QuerySession::Create(MakeSetup(3));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value()->Execute(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuerySessionTest, LargerBlocksMeanFewerBlocks) {
  auto session_small = QuerySession::Create(MakeSetup(1000));
  auto session_large = QuerySession::Create(MakeSetup(1000));
  ASSERT_TRUE(session_small.ok());
  ASSERT_TRUE(session_large.ok());
  FixedController small(10);
  FixedController large(250);
  const auto outcome_small = session_small.value()->Execute(&small);
  const auto outcome_large = session_large.value()->Execute(&large);
  ASSERT_TRUE(outcome_small.ok());
  ASSERT_TRUE(outcome_large.ok());
  EXPECT_GT(outcome_small.value().total_blocks,
            outcome_large.value().total_blocks);
  // On a latency-bearing link, fewer round trips should be faster for
  // this small dataset.
  EXPECT_GT(outcome_small.value().total_time_ms,
            outcome_large.value().total_time_ms);
}

TEST(QuerySessionTest, AdaptivityStepsRecordedInTrace) {
  auto session = QuerySession::Create(MakeSetup(100));
  ASSERT_TRUE(session.ok());
  FixedController controller(10);
  Result<FetchOutcome> outcome = session.value()->Execute(&controller);
  ASSERT_TRUE(outcome.ok());
  for (const BlockTrace& trace : outcome.value().trace) {
    EXPECT_EQ(trace.adaptivity_steps, 0);  // fixed controller never adapts
    EXPECT_GT(trace.response_time_ms, 0.0);
    EXPECT_EQ(trace.requested_size, 10);
  }
}

TEST(QuerySessionTest, TpchCustomerEndToEnd) {
  EmpiricalSetup setup;
  TpchGenOptions gen;
  gen.scale = 0.002;  // 300 rows
  auto customer = GenerateCustomer(gen);
  ASSERT_TRUE(customer.ok());
  setup.table = customer.value();
  setup.query.table_name = "customer";
  setup.query.projected_columns = {"c_custkey", "c_name", "c_acctbal"};
  setup.link = WanUkToGreece();
  setup.load.noise_sigma = 0.05;
  setup.seed = 9;

  auto session = QuerySession::Create(std::move(setup));
  ASSERT_TRUE(session.ok());
  FixedController controller(64);
  std::vector<Tuple> tuples;
  Result<FetchOutcome> outcome =
      session.value()->Execute(&controller, &tuples);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().total_tuples, 300);
  ASSERT_EQ(tuples.size(), 300u);
  EXPECT_EQ(tuples[0].num_values(), 3u);
}

}  // namespace
}  // namespace wsq
