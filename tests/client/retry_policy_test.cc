// Retry/backoff behavior of the chaos-enabled BlockFetcher on the real
// SOAP stack: determinism of the retry schedule, exhaustion semantics,
// and the retry-time accounting invariant.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/client/query_session.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/fault_injector.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/netsim/presets.h"

namespace wsq {
namespace {

std::shared_ptr<Table> MakeNums(int rows) {
  auto table =
      std::make_shared<Table>("nums", Schema({{"id", ColumnType::kInt64}}));
  for (int i = 0; i < rows; ++i) {
    table->AppendUnchecked(Tuple({Value(static_cast<int64_t>(i))}));
  }
  return table;
}

/// A clean LAN stack plus the chaos pair (policy, injector), wired the
/// way EmpiricalBackend does it.
struct ChaosStack {
  explicit ChaosStack(uint64_t seed = 7) {
    table = MakeNums(500);
    link = Lan1Gbps();
    link.jitter_sigma = 0.0;
    link.drop_probability = 0.0;
    load.noise_sigma = 0.0;
    dbms = std::make_unique<Dbms>();
    EXPECT_TRUE(dbms->RegisterTable(table).ok());
    service = std::make_unique<DataService>(dbms.get());
    container = std::make_unique<ServiceContainer>(service.get(), load, seed);
    clock = std::make_unique<SimClock>();
    client = std::make_unique<WsClient>(container.get(), link, clock.get(),
                                        seed + 1);
  }

  Result<FetchOutcome> Run(Controller* controller, ResiliencePolicy* policy,
                           FaultInjector* injector) {
    BlockFetcher fetcher(client.get(), controller, policy, injector);
    ScanProjectQuery query;
    query.table_name = "nums";
    return fetcher.Run(query);
  }

  std::shared_ptr<Table> table;
  LinkConfig link;
  LoadModelConfig load;
  std::unique_ptr<Dbms> dbms;
  std::unique_ptr<DataService> service;
  std::unique_ptr<ServiceContainer> container;
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<WsClient> client;
};

FaultPlan TwoBurstPlan() {
  FaultPlan plan;
  FaultSpec burst;
  burst.kind = FaultKind::kUnavailability;
  burst.first_block = 1;
  burst.last_block = 2;
  burst.faults_per_block = 2;
  plan.specs = {burst};
  return plan;
}

ResilienceConfig JitteredConfig() {
  ResilienceConfig config;
  config.max_retries_per_call = 4;
  config.backoff_initial_ms = 50.0;
  config.backoff_jitter = 0.3;
  return config;
}

TEST(RetryPolicyTest, SameSeedReplaysByteIdenticalTrace) {
  // Two fresh stacks, same seeds everywhere: the retry/backoff schedule
  // (jittered!) and the whole trace must replay exactly.
  auto run_once = []() {
    ChaosStack stack(7);
    FixedController controller(60);
    FaultInjector injector(TwoBurstPlan(), /*run_seed=*/11);
    ResiliencePolicy policy(JitteredConfig(), /*run_seed=*/11);
    Result<FetchOutcome> outcome =
        stack.Run(&controller, &policy, &injector);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::move(outcome).value();
  };

  const FetchOutcome a = run_once();
  const FetchOutcome b = run_once();
  EXPECT_EQ(a.total_tuples, b.total_tuples);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.session_retries, b.session_retries);
  EXPECT_DOUBLE_EQ(a.total_time_ms, b.total_time_ms);
  EXPECT_DOUBLE_EQ(a.retry_time_ms, b.retry_time_ms);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].requested_size, b.trace[i].requested_size) << i;
    EXPECT_EQ(a.trace[i].received_tuples, b.trace[i].received_tuples) << i;
    EXPECT_EQ(a.trace[i].retries, b.trace[i].retries) << i;
    EXPECT_DOUBLE_EQ(a.trace[i].response_time_ms, b.trace[i].response_time_ms)
        << i;
  }
  EXPECT_EQ(a.retries, 4);  // 2 faulted attempts on each of blocks 1, 2
  EXPECT_GT(a.retry_time_ms, 0.0);
}

TEST(RetryPolicyTest, DifferentSeedChangesTheJitteredSchedule) {
  auto run_with_seed = [](uint64_t run_seed) {
    ChaosStack stack(7);
    FixedController controller(60);
    FaultInjector injector(TwoBurstPlan(), run_seed);
    ResiliencePolicy policy(JitteredConfig(), run_seed);
    Result<FetchOutcome> outcome =
        stack.Run(&controller, &policy, &injector);
    EXPECT_TRUE(outcome.ok());
    return std::move(outcome).value();
  };
  // The plan is deterministic, so the fault schedule is identical; only
  // the jittered backoff dead time differs with the seed.
  const FetchOutcome a = run_with_seed(11);
  const FetchOutcome b = run_with_seed(12);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_NE(a.retry_time_ms, b.retry_time_ms);
}

TEST(RetryPolicyTest, ExhaustionSurfacesUnavailable) {
  // A burst deeper than the retry budget: the fetch must give up with
  // kUnavailable instead of spinning, after exactly budget+1 faulted
  // attempts of the poisoned block.
  FaultPlan plan;
  FaultSpec storm;
  storm.kind = FaultKind::kUnavailability;
  storm.first_block = 1;
  storm.last_block = 1;
  storm.faults_per_block = 100;
  plan.specs = {storm};

  ResilienceConfig config;
  config.max_retries_per_call = 3;

  ChaosStack stack(7);
  FixedController controller(60);
  FaultInjector injector(plan, 11);
  ResiliencePolicy policy(config, 11);
  Result<FetchOutcome> outcome = stack.Run(&controller, &policy, &injector);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  // The injector's log keeps the evidence: budget+1 attempts were failed.
  EXPECT_EQ(injector.faults_injected(), 4);
}

TEST(RetryPolicyTest, BackoffIsChargedToTheRunClock) {
  // Identical stacks, one with backoff and one without: the backoff run
  // must cost exactly the (deterministic, jitter-free) backoff more.
  FaultPlan plan = TwoBurstPlan();
  ResilienceConfig no_backoff;
  no_backoff.max_retries_per_call = 4;
  ResilienceConfig with_backoff = no_backoff;
  with_backoff.backoff_initial_ms = 100.0;
  with_backoff.backoff_multiplier = 2.0;

  auto run_with = [&plan](const ResilienceConfig& config) {
    ChaosStack stack(7);
    FixedController controller(60);
    FaultInjector injector(plan, 11);
    ResiliencePolicy policy(config, 11);
    Result<FetchOutcome> outcome =
        stack.Run(&controller, &policy, &injector);
    EXPECT_TRUE(outcome.ok());
    return std::move(outcome).value();
  };

  const FetchOutcome plain = run_with(no_backoff);
  const FetchOutcome padded = run_with(with_backoff);
  // Per burst block: retries 1 and 2 sleep 100 + 200 ms. Two blocks.
  const double expected_backoff = 2.0 * (100.0 + 200.0);
  EXPECT_DOUBLE_EQ(padded.retry_time_ms,
                   plain.retry_time_ms + expected_backoff);
  EXPECT_DOUBLE_EQ(padded.total_time_ms,
                   plain.total_time_ms + expected_backoff);
}

TEST(RetryPolicyTest, DeadlineCapsInjectedFaultCost) {
  // The plan's timeout dwarfs the deadline; the charged dead time per
  // faulted attempt must be the deadline, not the plan's timeout.
  FaultPlan plan;
  plan.timeout_ms = 10000.0;
  FaultSpec drop;
  drop.kind = FaultKind::kUnavailability;
  drop.first_block = 1;
  drop.last_block = 1;
  drop.faults_per_block = 1;
  plan.specs = {drop};

  ResilienceConfig config;
  config.max_retries_per_call = 2;
  config.deadline_base_ms = 50.0;
  config.deadline_per_tuple_ms = 1.0;  // block of 60 -> 110 ms deadline

  ChaosStack stack(7);
  FixedController controller(60);
  FaultInjector injector(plan, 11);
  ResiliencePolicy policy(config, 11);
  Result<FetchOutcome> outcome = stack.Run(&controller, &policy, &injector);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_DOUBLE_EQ(outcome.value().retry_time_ms, 110.0);
}

TEST(RetryPolicyTest, RetryAttributionInvariantHoldsOnLossyLink) {
  // Organic link drops (the legacy path, no chaos wiring): every retry
  // is attributed to a block or to the session, and the dead time is
  // exactly the drops' timeouts.
  EmpiricalSetup setup;
  setup.table = MakeNums(500);
  setup.query.table_name = "nums";
  setup.link = Lan1Gbps();
  setup.link.jitter_sigma = 0.0;
  setup.link.drop_probability = 0.15;
  setup.link.timeout_ms = 500.0;
  setup.load.noise_sigma = 0.0;
  setup.seed = 77;
  auto session = QuerySession::Create(setup);
  ASSERT_TRUE(session.ok());
  FixedController controller(25);
  Result<FetchOutcome> outcome = session.value()->Execute(&controller);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  const FetchOutcome& fetched = outcome.value();
  ASSERT_GT(fetched.retries, 0);
  int64_t block_retries = 0;
  for (const BlockTrace& block : fetched.trace) block_retries += block.retries;
  EXPECT_EQ(block_retries + fetched.session_retries, fetched.retries);
  EXPECT_DOUBLE_EQ(fetched.retry_time_ms,
                   static_cast<double>(fetched.retries) * 500.0);
}

}  // namespace
}  // namespace wsq
