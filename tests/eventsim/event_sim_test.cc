#include "wsq/eventsim/event_sim.h"

#include <memory>

#include <gtest/gtest.h>

#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"

namespace wsq {
namespace {

EventSimConfig CleanConfig() {
  EventSimConfig config;
  config.jitter_sigma = 0.0;
  return config;
}

TEST(EventSimTest, SingleClientMatchesAnalyticTime) {
  EventSimConfig config = CleanConfig();
  FixedController controller(1000);
  ClientSpec client{/*dataset_tuples=*/5000, &controller, 0.0};

  auto outcomes = RunEventSimulation(config, {client});
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes.value().size(), 1u);
  const ClientOutcome& outcome = outcomes.value()[0];
  EXPECT_EQ(outcome.total_tuples, 5000);
  EXPECT_EQ(outcome.total_blocks, 5);

  // Analytic: per block = request leg + service + response leg.
  const double request_leg =
      config.one_way_latency_ms + 600.0 * 8.0 / (9.0 * 1e6) * 1e3;
  const double response_leg =
      config.one_way_latency_ms + 1000.0 * 120.0 * 8.0 / (9.0 * 1e6) * 1e3;
  const double service = 3.0 + 0.010 * 1000.0;  // below the buffer
  EXPECT_NEAR(outcome.response_time_ms,
              5.0 * (request_leg + service + response_leg), 1e-6);
}

TEST(EventSimTest, TwoClientsSlowEachOtherDown) {
  EventSimConfig config = CleanConfig();
  FixedController c_solo(1000);
  auto solo = RunEventSimulation(config, {{50000, &c_solo, 0.0}});
  ASSERT_TRUE(solo.ok());

  FixedController c1(1000);
  FixedController c2(1000);
  auto pair = RunEventSimulation(
      config, {{50000, &c1, 0.0}, {50000, &c2, 0.0}});
  ASSERT_TRUE(pair.ok());

  // Shared CPU + shared buffer: each of the pair must be slower than
  // the solo run, but (pipelining across network legs) not 2x-CPU slow.
  for (const ClientOutcome& outcome : pair.value()) {
    EXPECT_GT(outcome.response_time_ms,
              solo.value()[0].response_time_ms * 1.05);
  }
}

TEST(EventSimTest, StaggeredArrivalSlowsTheIncumbent) {
  EventSimConfig config = CleanConfig();
  FixedController c_solo(2000);
  auto solo = RunEventSimulation(config, {{100000, &c_solo, 0.0}});
  ASSERT_TRUE(solo.ok());

  FixedController c1(2000);
  FixedController c2(2000);
  // The second query arrives mid-run of the first (Fig. 2(b)'s story).
  auto staggered = RunEventSimulation(
      config,
      {{100000, &c1, 0.0},
       {100000, &c2, solo.value()[0].response_time_ms / 2.0}});
  ASSERT_TRUE(staggered.ok());
  EXPECT_GT(staggered.value()[0].response_time_ms,
            solo.value()[0].response_time_ms);
  // The first client still finishes before the latecomer.
  EXPECT_LT(staggered.value()[0].completion_time_ms,
            staggered.value()[1].completion_time_ms);
}

TEST(EventSimTest, ConcurrencyShiftsTheOptimumLeft) {
  // The headline claim of the paper's Fig. 2, reproduced with *true*
  // concurrency: sweep fixed block sizes and find the best, solo vs 3
  // concurrent queries.
  auto best_size = [](int num_clients) {
    int64_t best = 0;
    double best_time = 1e300;
    for (int64_t size = 1000; size <= 14000; size += 1000) {
      EventSimConfig config = CleanConfig();
      std::vector<std::unique_ptr<FixedController>> controllers;
      std::vector<ClientSpec> clients;
      for (int i = 0; i < num_clients; ++i) {
        controllers.push_back(std::make_unique<FixedController>(size));
        clients.push_back({60000, controllers.back().get(), 0.0});
      }
      auto outcomes = RunEventSimulation(config, clients);
      EXPECT_TRUE(outcomes.ok());
      const double t = outcomes.value()[0].response_time_ms;
      if (t < best_time) {
        best_time = t;
        best = size;
      }
    }
    return best;
  };
  const int64_t solo_best = best_size(1);
  const int64_t crowded_best = best_size(3);
  EXPECT_LT(crowded_best, solo_best);
}

TEST(EventSimTest, AdaptiveControllerTracksInsideTheEventSim) {
  EventSimConfig config = CleanConfig();
  config.jitter_sigma = 0.05;
  auto hybrid = ControllerFactory::FromName("hybrid");
  ASSERT_TRUE(hybrid.ok());
  FixedController fixed(1000);

  auto adaptive_run = RunEventSimulation(
      config, {{150000, hybrid.value().get(), 0.0}});
  ASSERT_TRUE(adaptive_run.ok());
  auto fixed_run = RunEventSimulation(config, {{150000, &fixed, 0.0}});
  ASSERT_TRUE(fixed_run.ok());

  // The hybrid grows blocks toward the buffer knee and beats fixed-1000.
  EXPECT_LT(adaptive_run.value()[0].response_time_ms,
            fixed_run.value()[0].response_time_ms);
  EXPECT_GT(adaptive_run.value()[0].block_sizes.back(), 4000);
}

TEST(EventSimTest, DeterministicUnderFixedSeed) {
  auto run = []() {
    EventSimConfig config;
    config.jitter_sigma = 0.15;
    config.seed = 77;
    FixedController c1(1500);
    FixedController c2(2500);
    auto outcomes = RunEventSimulation(
        config, {{30000, &c1, 0.0}, {30000, &c2, 100.0}});
    EXPECT_TRUE(outcomes.ok());
    return outcomes.value()[0].response_time_ms +
           outcomes.value()[1].response_time_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(EventSimTest, Validation) {
  FixedController controller(100);
  EXPECT_FALSE(RunEventSimulation(CleanConfig(), {}).ok());
  EXPECT_FALSE(
      RunEventSimulation(CleanConfig(), {{100, nullptr, 0.0}}).ok());
  EXPECT_FALSE(
      RunEventSimulation(CleanConfig(), {{0, &controller, 0.0}}).ok());
  EXPECT_FALSE(
      RunEventSimulation(CleanConfig(), {{100, &controller, -1.0}}).ok());
  EventSimConfig bad = CleanConfig();
  bad.bandwidth_mbps = 0.0;
  EXPECT_FALSE(RunEventSimulation(bad, {{100, &controller, 0.0}}).ok());
}

TEST(EventSimTest, ManyClientsAllComplete) {
  EventSimConfig config = CleanConfig();
  config.jitter_sigma = 0.1;
  std::vector<std::unique_ptr<FixedController>> controllers;
  std::vector<ClientSpec> clients;
  for (int i = 0; i < 12; ++i) {
    controllers.push_back(std::make_unique<FixedController>(500 + i * 200));
    clients.push_back({5000 + i * 1000, controllers.back().get(),
                       static_cast<double>(i) * 50.0});
  }
  auto outcomes = RunEventSimulation(config, clients);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(outcomes.value()[i].total_tuples, clients[i].dataset_tuples);
    EXPECT_GE(outcomes.value()[i].completion_time_ms,
              clients[i].start_time_ms);
  }
}

}  // namespace
}  // namespace wsq
