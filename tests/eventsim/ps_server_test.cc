#include "wsq/eventsim/ps_server.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(PsServerTest, SingleJobRunsAtFullRate) {
  PsServer server;
  auto job = server.Submit(0.0, 100.0);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(server.NextCompletionTime().has_value());
  EXPECT_DOUBLE_EQ(*server.NextCompletionTime(), 100.0);

  auto completed = server.AdvanceTo(100.0);
  ASSERT_TRUE(completed.ok());
  ASSERT_TRUE(completed.value().has_value());
  EXPECT_EQ(*completed.value(), job.value());
  EXPECT_EQ(server.active_jobs(), 0);
}

TEST(PsServerTest, TwoEqualJobsShareTheProcessor) {
  PsServer server;
  ASSERT_TRUE(server.Submit(0.0, 100.0).ok());
  ASSERT_TRUE(server.Submit(0.0, 100.0).ok());
  // Each runs at rate 1/2: both finish around t=200.
  EXPECT_DOUBLE_EQ(*server.NextCompletionTime(), 200.0);
}

TEST(PsServerTest, ShortJobFinishesFirstAndSurvivorSpeedsUp) {
  PsServer server;
  auto long_job = server.Submit(0.0, 100.0);
  auto short_job = server.Submit(0.0, 10.0);
  ASSERT_TRUE(long_job.ok());
  ASSERT_TRUE(short_job.ok());

  // Sharing: the 10ms job needs 20ms of wall time.
  ASSERT_TRUE(server.NextCompletionTime().has_value());
  EXPECT_DOUBLE_EQ(*server.NextCompletionTime(), 20.0);
  auto first = server.AdvanceTo(20.0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first.value(), short_job.value());

  // The long job has 90ms left and now runs alone: completes at 110.
  EXPECT_DOUBLE_EQ(*server.NextCompletionTime(), 110.0);
  auto second = server.AdvanceTo(110.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second.value(), long_job.value());
}

TEST(PsServerTest, LateArrivalSlowsTheFirstJob) {
  PsServer server;
  auto first = server.Submit(0.0, 100.0);
  ASSERT_TRUE(first.ok());
  // At t=50 the first job is half done; a second arrives.
  auto second = server.Submit(50.0, 100.0);
  ASSERT_TRUE(second.ok());
  // First needs 50 more solo-ms at rate 1/2 -> completes at 150.
  EXPECT_DOUBLE_EQ(*server.NextCompletionTime(), 150.0);
  auto completed = server.AdvanceTo(150.0);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(*completed.value(), first.value());
  // Second had 50 solo-ms of progress by then; 50 left alone -> 200.
  EXPECT_DOUBLE_EQ(*server.NextCompletionTime(), 200.0);
}

TEST(PsServerTest, WorkConservation) {
  // Total wall time to drain any job set equals total demand,
  // regardless of interleaving.
  PsServer server;
  ASSERT_TRUE(server.Submit(0.0, 30.0).ok());
  ASSERT_TRUE(server.Submit(0.0, 50.0).ok());
  ASSERT_TRUE(server.Submit(0.0, 20.0).ok());
  double last = 0.0;
  while (server.active_jobs() > 0) {
    const double next = *server.NextCompletionTime();
    auto completed = server.AdvanceTo(next);
    ASSERT_TRUE(completed.ok());
    ASSERT_TRUE(completed.value().has_value());
    last = next;
  }
  EXPECT_NEAR(last, 100.0, 1e-9);
}

TEST(PsServerTest, IdleAdvanceMovesClockOnly) {
  PsServer server;
  auto completed = server.AdvanceTo(500.0);
  ASSERT_TRUE(completed.ok());
  EXPECT_FALSE(completed.value().has_value());
  EXPECT_DOUBLE_EQ(server.now_ms(), 500.0);
  EXPECT_FALSE(server.NextCompletionTime().has_value());
}

TEST(PsServerTest, Validation) {
  PsServer server;
  EXPECT_FALSE(server.Submit(0.0, 0.0).ok());
  EXPECT_FALSE(server.Submit(0.0, -1.0).ok());
  ASSERT_TRUE(server.Submit(10.0, 100.0).ok());
  EXPECT_FALSE(server.Submit(5.0, 10.0).ok());     // time regression
  EXPECT_FALSE(server.AdvanceTo(5.0).ok());        // time regression
  EXPECT_FALSE(server.AdvanceTo(1000.0).ok());     // skips a completion
}

TEST(PsServerTest, SimultaneousCompletionsHarvestOneAtATime) {
  PsServer server;
  ASSERT_TRUE(server.Submit(0.0, 50.0).ok());
  ASSERT_TRUE(server.Submit(0.0, 50.0).ok());
  const double t = *server.NextCompletionTime();
  auto first = server.AdvanceTo(t);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().has_value());
  // The tied job completes at (numerically) the same instant.
  const double t2 = *server.NextCompletionTime();
  EXPECT_NEAR(t2, t, 1e-6);
  auto second = server.AdvanceTo(t2);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(server.active_jobs(), 0);
}

}  // namespace
}  // namespace wsq
