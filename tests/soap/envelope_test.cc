#include "wsq/soap/envelope.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(EnvelopeTest, BuildAndParseRoundTrip) {
  XmlNode payload("MyOperation");
  payload.set_text("data");
  const std::string doc = BuildEnvelope(payload);

  EXPECT_NE(doc.find("<?xml"), std::string::npos);
  EXPECT_NE(doc.find("soapenv:Envelope"), std::string::npos);
  EXPECT_NE(doc.find("soapenv:Body"), std::string::npos);

  Result<XmlNode> parsed = ParseEnvelope(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name(), "MyOperation");
  EXPECT_EQ(parsed.value().text(), "data");
}

TEST(EnvelopeTest, FaultBecomesRemoteFaultStatus) {
  const std::string doc =
      BuildFaultEnvelope({"Client", "no such table"});
  Result<XmlNode> parsed = ParseEnvelope(doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kRemoteFault);
  EXPECT_NE(parsed.status().message().find("no such table"),
            std::string::npos);
}

TEST(EnvelopeTest, RejectsNonEnvelopeRoot) {
  EXPECT_EQ(ParseEnvelope("<NotAnEnvelope/>").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EnvelopeTest, RejectsMissingBody) {
  EXPECT_EQ(
      ParseEnvelope("<soapenv:Envelope></soapenv:Envelope>").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(EnvelopeTest, RejectsEmptyBody) {
  EXPECT_EQ(ParseEnvelope("<soapenv:Envelope><soapenv:Body/>"
                          "</soapenv:Envelope>")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EnvelopeTest, RejectsMalformedXml) {
  EXPECT_EQ(ParseEnvelope("<soapenv:Envelope><soapenv:Body>").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EnvelopeTest, AcceptsForeignPrefix) {
  // A different prefix with the same local names must still parse.
  const std::string doc =
      "<s:Envelope xmlns:s=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<s:Body><Op>x</Op></s:Body></s:Envelope>";
  Result<XmlNode> parsed = ParseEnvelope(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name(), "Op");
}

}  // namespace
}  // namespace wsq
