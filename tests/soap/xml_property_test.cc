// Property tests for the XML codec: randomly generated documents must
// survive serialize -> parse -> serialize unchanged, for any seed.

#include <gtest/gtest.h>

#include "wsq/common/random.h"
#include "wsq/soap/xml.h"

namespace wsq {
namespace {

std::string RandomName(Random& rng) {
  static constexpr std::string_view kAlpha =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string name;
  const int64_t len = rng.UniformInt(1, 10);
  for (int64_t i = 0; i < len; ++i) {
    name += kAlpha[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kAlpha.size()) - 1))];
  }
  // Occasionally add a namespace prefix.
  if (rng.Bernoulli(0.2)) return "ns:" + name;
  return name;
}

std::string RandomText(Random& rng) {
  // Includes every XML special character and some whitespace — but not
  // raw control characters, which our documents never carry.
  static constexpr std::string_view kChars =
      "abc XYZ 0123456789 <>&\"' .,;:!?()[]{}|/\\=+-*#@~";
  std::string text;
  const int64_t len = rng.UniformInt(0, 40);
  for (int64_t i = 0; i < len; ++i) {
    text += kChars[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kChars.size()) - 1))];
  }
  return text;
}

XmlNode RandomTree(Random& rng, int depth) {
  XmlNode node(RandomName(rng));
  const int64_t attrs = rng.UniformInt(0, 3);
  for (int64_t i = 0; i < attrs; ++i) {
    node.AddAttribute(RandomName(rng) + std::to_string(i), RandomText(rng));
  }
  if (depth > 0 && rng.Bernoulli(0.7)) {
    const int64_t children = rng.UniformInt(1, 4);
    for (int64_t i = 0; i < children; ++i) {
      node.AddChild(RandomTree(rng, depth - 1));
    }
  } else if (rng.Bernoulli(0.7)) {
    node.set_text(RandomText(rng));
  }
  return node;
}

bool TreesEqual(const XmlNode& a, const XmlNode& b) {
  if (a.name() != b.name() || a.text() != b.text()) return false;
  if (a.attributes() != b.attributes()) return false;
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!TreesEqual(a.children()[i], b.children()[i])) return false;
  }
  return true;
}

class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripTest, SerializeParseRoundTrips) {
  Random rng(GetParam());
  for (int doc = 0; doc < 20; ++doc) {
    const XmlNode original = RandomTree(rng, 4);
    const std::string serialized = original.ToString();

    Result<XmlNode> parsed = ParseXml(serialized);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << "\ndoc: " << serialized;

    // Exact tree equality (modulo our generator never emitting mixed
    // text+children, which serialization would reorder).
    EXPECT_TRUE(TreesEqual(original, parsed.value()))
        << "mismatch for: " << serialized;
    // And the idempotence of serialization.
    EXPECT_EQ(parsed.value().ToString(), serialized);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

class XmlGarbageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlGarbageTest, RandomBytesNeverCrashTheParser) {
  Random rng(GetParam());
  for (int doc = 0; doc < 50; ++doc) {
    std::string garbage;
    const int64_t len = rng.UniformInt(0, 120);
    for (int64_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.UniformInt(32, 126));
    }
    // Must return (ok or error), not crash or hang.
    Result<XmlNode> parsed = ParseXml(garbage);
    if (parsed.ok()) {
      // If it parsed, it must re-serialize without issues.
      (void)parsed.value().ToString();
    }
  }
}

TEST_P(XmlGarbageTest, TruncatedValidDocumentsFailCleanly) {
  Random rng(GetParam());
  const XmlNode tree = RandomTree(rng, 3);
  const std::string serialized = tree.ToString();
  for (size_t cut = 1; cut < serialized.size();
       cut += std::max<size_t>(serialized.size() / 23, 1)) {
    Result<XmlNode> parsed = ParseXml(serialized.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlGarbageTest,
                         ::testing::Values(7, 11, 17, 23, 31));

}  // namespace
}  // namespace wsq
