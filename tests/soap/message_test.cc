#include "wsq/soap/message.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(MessageTest, OpenSessionRoundTrip) {
  OpenSessionRequest request;
  request.table = "customer";
  request.columns = {"c_custkey", "c_name"};
  const std::string doc = EncodeOpenSession(request);

  Result<XmlNode> payload = ParseEnvelope(doc);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(ClassifyRequest(payload.value()).value(),
            RequestKind::kOpenSession);

  Result<OpenSessionRequest> back = DecodeOpenSession(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().table, "customer");
  ASSERT_EQ(back.value().columns.size(), 2u);
  EXPECT_EQ(back.value().columns[1], "c_name");
}

TEST(MessageTest, OpenSessionFilterRoundTrip) {
  OpenSessionRequest request;
  request.table = "customer";
  request.filter = "c_acctbal >= 100 AND c_mktsegment = 'BUILDING'";
  Result<XmlNode> payload = ParseEnvelope(EncodeOpenSession(request));
  ASSERT_TRUE(payload.ok());
  Result<OpenSessionRequest> back = DecodeOpenSession(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().filter, request.filter);

  // No filter -> empty string after the round trip.
  OpenSessionRequest plain;
  plain.table = "t";
  Result<XmlNode> plain_payload = ParseEnvelope(EncodeOpenSession(plain));
  ASSERT_TRUE(plain_payload.ok());
  EXPECT_TRUE(DecodeOpenSession(plain_payload.value()).value().filter
                  .empty());
}

TEST(MessageTest, OpenSessionEmptyColumnsMeansAll) {
  OpenSessionRequest request;
  request.table = "t";
  Result<XmlNode> payload = ParseEnvelope(EncodeOpenSession(request));
  ASSERT_TRUE(payload.ok());
  Result<OpenSessionRequest> back = DecodeOpenSession(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().columns.empty());
}

TEST(MessageTest, OpenSessionResponseRoundTrip) {
  OpenSessionResponse response;
  response.session_id = 7;
  response.total_rows = 150000;
  Result<XmlNode> payload =
      ParseEnvelope(EncodeOpenSessionResponse(response));
  ASSERT_TRUE(payload.ok());
  Result<OpenSessionResponse> back =
      DecodeOpenSessionResponse(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().session_id, 7);
  EXPECT_EQ(back.value().total_rows, 150000);
}

TEST(MessageTest, RequestBlockRoundTrip) {
  RequestBlockRequest request;
  request.session_id = 3;
  request.block_size = 2500;
  Result<XmlNode> payload = ParseEnvelope(EncodeRequestBlock(request));
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(ClassifyRequest(payload.value()).value(),
            RequestKind::kRequestBlock);
  Result<RequestBlockRequest> back = DecodeRequestBlock(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().session_id, 3);
  EXPECT_EQ(back.value().block_size, 2500);
}

TEST(MessageTest, BlockResponseRoundTripWithPayload) {
  BlockResponse response;
  response.session_id = 3;
  response.end_of_results = true;
  response.num_tuples = 2;
  response.payload = "1|alice|2.50\n2|bob<&>|3.75\n";
  Result<XmlNode> payload = ParseEnvelope(EncodeBlockResponse(response));
  ASSERT_TRUE(payload.ok());
  Result<BlockResponse> back = DecodeBlockResponse(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().session_id, 3);
  EXPECT_TRUE(back.value().end_of_results);
  EXPECT_EQ(back.value().num_tuples, 2);
  EXPECT_EQ(back.value().payload, response.payload);
}

TEST(MessageTest, CloseSessionRoundTrip) {
  CloseSessionRequest request;
  request.session_id = 9;
  Result<XmlNode> payload = ParseEnvelope(EncodeCloseSession(request));
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(ClassifyRequest(payload.value()).value(),
            RequestKind::kCloseSession);
  Result<CloseSessionRequest> back = DecodeCloseSession(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().session_id, 9);

  CloseSessionResponse response;
  response.session_id = 9;
  Result<XmlNode> resp_payload =
      ParseEnvelope(EncodeCloseSessionResponse(response));
  ASSERT_TRUE(resp_payload.ok());
  EXPECT_EQ(DecodeCloseSessionResponse(resp_payload.value()).value()
                .session_id,
            9);
}

TEST(MessageTest, ClassifyRejectsUnknownOperation) {
  XmlNode unknown("Frobnicate");
  EXPECT_EQ(ClassifyRequest(unknown).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MessageTest, DecodersValidateElementName) {
  XmlNode wrong("RequestBlock");
  EXPECT_EQ(DecodeOpenSession(wrong).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MessageTest, DecodersValidateFieldTypes) {
  XmlNode bad("RequestBlock");
  XmlNode id("sessionId");
  id.set_text("not_a_number");
  bad.AddChild(std::move(id));
  XmlNode size("blockSize");
  size.set_text("100");
  bad.AddChild(std::move(size));
  EXPECT_EQ(DecodeRequestBlock(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MessageTest, DecodersRequireFields) {
  XmlNode missing("RequestBlock");
  EXPECT_EQ(DecodeRequestBlock(missing).status().code(),
            StatusCode::kNotFound);
}

TEST(MessageTest, BoolFieldValidation) {
  BlockResponse response;
  response.payload = "";
  std::string doc = EncodeBlockResponse(response);
  // Corrupt the boolean.
  const size_t pos = doc.find("false");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 5, "maybe");
  Result<XmlNode> payload = ParseEnvelope(doc);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(DecodeBlockResponse(payload.value()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wsq
