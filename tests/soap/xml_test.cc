#include "wsq/soap/xml.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(XmlEscapeTest, EscapesAllSpecials) {
  EXPECT_EQ(XmlEscape("a<b>c&d\"e'f"),
            "a&lt;b&gt;c&amp;d&quot;e&apos;f");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(LocalNameTest, StripsPrefix) {
  EXPECT_EQ(LocalName("soapenv:Body"), "Body");
  EXPECT_EQ(LocalName("Body"), "Body");
  EXPECT_EQ(LocalName("a:b:c"), "c");
}

TEST(XmlNodeTest, BuildAndSerialize) {
  XmlNode root("root");
  root.AddAttribute("version", "1");
  XmlNode child("child");
  child.set_text("hello & <world>");
  root.AddChild(std::move(child));
  EXPECT_EQ(root.ToString(),
            "<root version=\"1\"><child>hello &amp; &lt;world&gt;"
            "</child></root>");
}

TEST(XmlNodeTest, SelfClosingWhenEmpty) {
  XmlNode node("empty");
  EXPECT_EQ(node.ToString(), "<empty/>");
}

TEST(ParseXmlTest, RoundTripsGeneratedDocument) {
  XmlNode root("doc");
  root.AddAttribute("a", "x\"y");
  XmlNode inner("inner");
  inner.set_text("text with <specials> & 'quotes'");
  root.AddChild(std::move(inner));
  const std::string serialized = root.ToString();

  Result<XmlNode> parsed = ParseXml(serialized);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name(), "doc");
  EXPECT_EQ(parsed.value().Attribute("a").value(), "x\"y");
  ASSERT_EQ(parsed.value().children().size(), 1u);
  EXPECT_EQ(parsed.value().children()[0].text(),
            "text with <specials> & 'quotes'");
}

TEST(ParseXmlTest, SkipsXmlDeclaration) {
  Result<XmlNode> parsed =
      ParseXml("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a><b/></a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name(), "a");
  ASSERT_EQ(parsed.value().children().size(), 1u);
  EXPECT_EQ(parsed.value().children()[0].name(), "b");
}

TEST(ParseXmlTest, Attributes) {
  Result<XmlNode> parsed =
      ParseXml("<a x=\"1\" y='two' ns:z=\"&amp;\"/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Attribute("x").value(), "1");
  EXPECT_EQ(parsed.value().Attribute("y").value(), "two");
  EXPECT_EQ(parsed.value().Attribute("ns:z").value(), "&");
  EXPECT_EQ(parsed.value().Attribute("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ParseXmlTest, NestedChildren) {
  Result<XmlNode> parsed = ParseXml(
      "<env><body><op><f1>1</f1><f2>2</f2></op></body></env>");
  ASSERT_TRUE(parsed.ok());
  const XmlNode* body = parsed.value().Child("body").value();
  const XmlNode* op = body->Child("op").value();
  EXPECT_EQ(op->ChildText("f1").value(), "1");
  EXPECT_EQ(op->ChildText("f2").value(), "2");
  EXPECT_EQ(op->ChildText("f3").status().code(), StatusCode::kNotFound);
}

TEST(ParseXmlTest, ChildByLocalNameIgnoresPrefix) {
  Result<XmlNode> parsed =
      ParseXml("<root><ns:item>v</ns:item></root>");
  ASSERT_TRUE(parsed.ok());
  Result<const XmlNode*> item = parsed.value().ChildByLocalName("item");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item.value()->text(), "v");
}

TEST(ParseXmlTest, MalformedInputs) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&brokenentity</a>").ok());
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());
  EXPECT_FALSE(ParseXml("<a x=\"1></a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("just text").ok());
  EXPECT_FALSE(ParseXml("< a></a>").ok());
}

TEST(ParseXmlTest, WhitespaceTolerantEndTags) {
  Result<XmlNode> parsed = ParseXml("<a><b>x</b ></a >");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().children()[0].text(), "x");
}

TEST(ParseXmlTest, MixedTextAndElements) {
  Result<XmlNode> parsed = ParseXml("<a>pre<b/>post</a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().text(), "prepost");
  EXPECT_EQ(parsed.value().children().size(), 1u);
}

TEST(ParseXmlTest, LargePayloadSurvives) {
  std::string payload(200000, 'x');
  const std::string doc = "<a>" + payload + "</a>";
  Result<XmlNode> parsed = ParseXml(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().text().size(), payload.size());
}

}  // namespace
}  // namespace wsq
