#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/fault/resilience_policy.h"

namespace wsq {
namespace {

/// A harness whose wsqd-style server replays `plan` per session.
net::WsqServerOptions FaultyOptions(const char* plan_name) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.fault_plan = FaultPlan::FromName(plan_name).value();
  return options;
}

TEST(LiveRetryTest, LegacyRetryBudgetExhaustsOnServerSideBurst) {
  // "burst" fails three consecutive attempts on each block of two
  // windows by closing the TCP connection before dispatch. The legacy
  // policy (2 retries = 3 attempts) burns its whole budget on the first
  // burst block and the run fails as transient.
  LiveServerHarness harness(FaultyOptions("burst"));
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  FixedController controller(100);
  ResilienceConfig legacy = ResilienceConfig::Legacy();
  RunSpec spec;
  spec.resilience = &legacy;

  Result<RunTrace> trace = live.RunQuery(&controller, spec);
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(harness.server().faults_injected(), 0);
}

TEST(LiveRetryTest, ChaosPolicyDrainsTheBurstAndDeliversEveryTuple) {
  // Same server-side burst; the chaos config's deeper budget (6 retries
  // per call) outlasts every 3-fault window. The client reconnects
  // after each injected close and — because fault state is keyed by
  // *session*, not connection — resumes the schedule at the same block,
  // so the full table still arrives exactly once, in order.
  LiveServerHarness harness(FaultyOptions("burst"));
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  FixedController controller(100);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, spec, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();

  const std::vector<Tuple> expected = harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(rows[i] == expected[i]) << "row " << i;
  }
  // Two 3-fault windows over blocks 2-5 and 12-15: at least a dozen
  // injected failures were retried through, every one of them real
  // reconnect work with its dead time on the clock.
  EXPECT_GE(trace.value().total_retries, 12);
  EXPECT_GT(trace.value().total_retry_time_ms, 0.0);
  EXPECT_GE(harness.server().faults_injected(), 12);
}

TEST(LiveRetryTest, ChaosPolicySurvivesAServerRestartMidQuery) {
  // Kill the server in the middle of a pull loop, bring it back, and the
  // chaos policy's backoff schedule rides out the outage: Stop tears
  // down the frontend but leaves DataService sessions intact, so the
  // reconnected client resumes its own half-finished query.
  net::WsqServerOptions options;  // service-time sim ON: paces the run
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  FixedController controller(50);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  Result<RunTrace> trace = Status::Internal("not run");
  std::thread runner([&] { trace = live.RunQuery(&controller, spec); });

  // Wait until the query is demonstrably mid-flight, then restart.
  const auto gate_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().exchanges_served() < 5 &&
         std::chrono::steady_clock::now() < gate_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(harness.server().exchanges_served(), 5);
  harness.server().Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(harness.server().Start().ok());
  runner.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();
  EXPECT_GE(trace.value().total_retries, 1);
  // If the kill landed between a dispatch and its response write, that
  // one in-flight block's tuples are lost to the retry (the session
  // cursor had already advanced — the documented at-most-once residual;
  // idempotent block replay is a roadmap item). At most one block can be
  // in flight, so the loss is bounded by one block.
  EXPECT_GE(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()) - 50);
  EXPECT_LE(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
}

TEST(LiveRetryTest, DeadlineCapsAServerStallOnTheWire) {
  // "stall" makes the server sit on each of blocks 4-7 for 200 ms before
  // dispatching. A 120 ms per-call deadline becomes a real socket
  // timeout: the client abandons each stalled exchange at ~120 ms and
  // retries on a fresh connection. The stalled handler notices the
  // abandoned socket *before* dispatching, so the cursor never advances
  // and the retry delivers the block intact — each stall costs the
  // deadline, not the stall.
  LiveServerHarness harness(FaultyOptions("stall"));
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  FixedController controller(200);  // blocks 0-7; stalls hit 4,5,6,7
  ResilienceConfig config;
  config.max_retries_per_call = 3;
  config.deadline_base_ms = 120.0;
  RunSpec spec;
  spec.resilience = &config;

  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, spec, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok());

  // Nothing lost: the stall is a perturbation that fires once per block,
  // and the abandoned attempts never advanced the cursor.
  ASSERT_EQ(rows.size(), harness.customer().num_rows());
  EXPECT_EQ(trace.value().total_retries, 4);

  // The dead time shows the deadline at work: four abandoned waits of
  // ~120 ms each — well under what four full 200 ms stalls would cost,
  // and at least the deadline apiece (the client really waited).
  EXPECT_GE(trace.value().total_retry_time_ms, 4 * 100.0);
  EXPECT_LT(trace.value().total_retry_time_ms, 4 * 200.0);
}

}  // namespace
}  // namespace wsq
