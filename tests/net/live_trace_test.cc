// The distributed-tracing extension over the real TCP transport:
// handshake gating, server-span round trip and clock-aligned
// correlation, the kStats telemetry plane, and byte-identity for peers
// that never asked for any of it.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/client/tcp_ws_client.h"
#include "wsq/codec/codec.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/net/frame.h"
#include "wsq/net/socket.h"
#include "wsq/obs/json_lite.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/run_observer.h"
#include "wsq/obs/trace.h"

namespace wsq {
namespace {

net::WsqServerOptions BinaryServerOptions() {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  return options;
}

LiveSetup TracedSetup(const LiveServerHarness& harness,
                      codec::CodecKind kind = codec::CodecKind::kBinary) {
  LiveSetup setup = harness.MakeSetup();
  setup.client_options.codec = codec::CodecChoice{kind, false};
  setup.client_options.enable_tracing = true;
  return setup;
}

/// Pulls the value of a hex-string arg ("key":"0123...") out of an
/// event's pre-rendered args JSON; empty when absent.
std::string HexArg(const std::string& args_json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = args_json.find(needle);
  if (at == std::string::npos) return {};
  const size_t start = at + needle.size();
  const size_t end = args_json.find('"', start);
  if (end == std::string::npos) return {};
  return args_json.substr(start, end - start);
}

TEST(LiveTraceTest, ServerSpansCorrelateWithClientBlocksAfterAlignment) {
  // The acceptance shape: every client block span must have a
  // same-trace server.request child landing within it (clock-aligned).
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  MetricsRegistry metrics;
  Tracer tracer;
  RunObserver observer(&metrics, &tracer);
  LiveBackend live(TracedSetup(harness));
  FixedController controller(200);
  RunSpec spec;
  spec.observer = &observer;
  Result<RunTrace> trace = live.RunQuery(&controller, spec);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  EXPECT_GE(harness.server().trace_connections(), 1);
  EXPECT_GT(metrics.GetCounter("wsq.server.remote_spans_total")->value(), 0);

  const std::vector<TraceEvent> events = tracer.events();
  std::vector<const TraceEvent*> blocks;
  std::vector<const TraceEvent*> server_roots;
  for (const TraceEvent& event : events) {
    if (event.name == "block_request" &&
        !HexArg(event.args_json, "trace_id").empty()) {
      blocks.push_back(&event);
    }
    if (event.name == "server.request") {
      EXPECT_EQ(event.tid, TraceLane::kRemoteServer);
      server_roots.push_back(&event);
    }
  }
  ASSERT_GT(blocks.size(), 0u);
  ASSERT_GE(server_roots.size(), blocks.size());  // + session open/close

  // Loopback clocks share a domain, but the estimator still ran; allow
  // a small slack for scheduling noise on a loaded CI box.
  const int64_t slack = 5000;  // 5 ms
  for (const TraceEvent* block : blocks) {
    const std::string trace_id = HexArg(block->args_json, "trace_id");
    const std::string span_id = HexArg(block->args_json, "span_id");
    ASSERT_EQ(trace_id.size(), 16u);
    const TraceEvent* child = nullptr;
    for (const TraceEvent* server : server_roots) {
      if (HexArg(server->args_json, "trace_id") == trace_id &&
          HexArg(server->args_json, "parent_span_id") == span_id) {
        child = server;
        break;
      }
    }
    ASSERT_NE(child, nullptr)
        << "block span " << span_id << " of trace " << trace_id
        << " has no correlated server.request";
    EXPECT_GE(child->ts_micros, block->ts_micros - slack);
    EXPECT_LE(child->ts_micros + child->dur_micros,
              block->ts_micros + block->dur_micros + slack);
  }
}

TEST(LiveTraceTest, SoapClientNegotiatesTracingViaForcedHandshake) {
  // Tracing on a SOAP client forces the Hello it would otherwise skip;
  // the codec stays SOAP, the spans still flow.
  LiveServerHarness harness;  // codec defaults to soap
  ASSERT_TRUE(harness.start_status().ok());

  MetricsRegistry metrics;
  Tracer tracer;
  RunObserver observer(&metrics, &tracer);
  LiveBackend live(TracedSetup(harness, codec::CodecKind::kSoap));
  FixedController controller(200);
  RunSpec spec;
  spec.observer = &observer;
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, spec, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows, harness.WireRows());  // the data path is untouched
  EXPECT_GE(harness.server().trace_connections(), 1);
  EXPECT_GT(metrics.GetCounter("wsq.server.remote_spans_total")->value(), 0);
}

TEST(LiveTraceTest, NonTracingSoapClientSendsLegacyBytesOnTheWire) {
  // Byte-identity, asserted at the socket: a SOAP client without
  // tracing sends no Hello and a bare 20-byte header + payload — flags
  // zero, no extension bytes.
  Result<net::Socket> listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  Result<int> port = net::LocalPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::thread peer([&] {
    Result<net::Socket> conn = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(conn.ok());
    // The very first bytes must be a kRequest frame — no Hello, no
    // extension flags, the pre-tracing wire exactly.
    char header[net::kFrameHeaderBytes];
    ASSERT_TRUE(net::ReadExact(conn.value(), header, sizeof(header)).ok());
    Result<net::FrameHeader> decoded = net::DecodeFrameHeader(header);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().type, net::FrameType::kRequest);
    EXPECT_EQ(decoded.value().flags, 0);
    std::string payload(decoded.value().payload_len, '\0');
    ASSERT_TRUE(
        net::ReadExact(conn.value(), payload.data(), payload.size()).ok());
    EXPECT_EQ(payload, "<doc/>");
    net::Frame response;
    response.type = net::FrameType::kResponse;
    response.payload = "ok";
    EXPECT_TRUE(WriteFrame(conn.value(), response).ok());
  });

  TcpWsClientOptions options;
  options.connect_timeout_ms = 2000.0;
  TcpWsClient client("127.0.0.1", port.value(), options);
  Result<CallResult> result = client.Call("<doc/>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().response, "ok");
  EXPECT_FALSE(client.TracingNegotiated());
  peer.join();
}

TEST(LiveTraceTest, ServerWithoutTraceAckDisablesClientTracing) {
  // A server that answers the Hello with a bare codec name (no "+trace")
  // is pre-tracing: the client must keep its request frames clean.
  Result<net::Socket> listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  Result<int> port = net::LocalPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::thread peer([&] {
    Result<net::Socket> conn = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(conn.ok());
    Result<net::Frame> hello = net::ReadFrame(conn.value());
    ASSERT_TRUE(hello.ok());
    EXPECT_EQ(hello.value().type, net::FrameType::kHello);
    // The client advertised the feature token after its codecs...
    EXPECT_NE(hello.value().payload.find(",trace"), std::string::npos);
    net::Frame ack;
    ack.type = net::FrameType::kHelloAck;
    ack.payload = "binary";  // ...but this server ignores it
    ASSERT_TRUE(WriteFrame(conn.value(), ack).ok());
    Result<net::Frame> request = net::ReadFrame(conn.value());
    ASSERT_TRUE(request.ok());
    EXPECT_FALSE(request.value().has_trace);
    net::Frame response;
    response.type = net::FrameType::kResponse;
    response.payload = "ok";
    EXPECT_TRUE(WriteFrame(conn.value(), response).ok());
  });

  TcpWsClientOptions options;
  options.connect_timeout_ms = 2000.0;
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  options.enable_tracing = true;
  TcpWsClient client("127.0.0.1", port.value(), options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.wire_codec(), codec::CodecKind::kBinary);
  EXPECT_FALSE(client.TracingNegotiated());
  client.SetNextCallTrace(1, 2);  // must be ignored without negotiation
  Result<CallResult> result = client.Call("<doc/>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  peer.join();
}

TEST(LiveTraceTest, ProbeAndDowngradeCountersTrackTheHandshake) {
  // wsq.net.codec_probes counts Hello frames sent; codec_downgrades
  // counts definitive legacy signals. Global counters — assert deltas.
  Counter* probes = MetricsRegistry::Global().GetCounter(
      "wsq.net.codec_probes");
  Counter* downgrades = MetricsRegistry::Global().GetCounter(
      "wsq.net.codec_downgrades");
  const int64_t probes_before = probes->value();
  const int64_t downgrades_before = downgrades->value();

  Result<net::Socket> listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  Result<int> port = net::LocalPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::thread peer([&] {
    // Read the Hello, slam the door — the legacy signal.
    Result<net::Socket> c1 = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(c1.ok());
    EXPECT_TRUE(net::ReadFrame(c1.value()).ok());
    c1.value().Close();
    // The silent SOAP reconnect: no frame may arrive.
    Result<net::Socket> c2 = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(c2.ok());
    EXPECT_FALSE(net::ReadFrame(c2.value()).ok());
  });

  TcpWsClientOptions options;
  options.connect_timeout_ms = 2000.0;
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  TcpWsClient client("127.0.0.1", port.value(), options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.wire_codec(), codec::CodecKind::kSoap);

  EXPECT_EQ(probes->value(), probes_before + 1);
  EXPECT_EQ(downgrades->value(), downgrades_before + 1);
  client.Disconnect();
  peer.join();
}

TEST(LiveTraceTest, FetchServerStatsReturnsSchemaValidJson) {
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  // Drain one query so the per-session rollups have something to say.
  LiveSetup setup = harness.MakeSetup();
  setup.client_options.codec =
      codec::CodecChoice{codec::CodecKind::kBinary, false};
  LiveBackend live(setup);
  FixedController controller(300);
  ASSERT_TRUE(live.RunQuery(&controller, RunSpec{}).ok());

  Result<std::string> stats =
      net::FetchServerStats("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(harness.server().stats_requests(), 1);

  const std::string& json = stats.value();
  Status valid = CheckJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"blocks\""), std::string::npos);
  EXPECT_NE(json.find("\"codec_mix\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_queue_depth\""), std::string::npos);
  // The labeled per-session mirrors made it into the metrics section.
  EXPECT_NE(json.find("wsq.server.session.blocks{session="),
            std::string::npos);
}

TEST(LiveTraceTest, StatsFrameDoesNotDisturbTheDataPath) {
  // A stats fetch against a server mid-run must not corrupt concurrent
  // exchanges (it rides its own connection).
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  LiveSetup setup = harness.MakeSetup();
  setup.client_options.codec =
      codec::CodecChoice{codec::CodecKind::kBinary, false};
  LiveBackend live(setup);
  FixedController controller(100);
  std::vector<Tuple> rows;
  Result<RunTrace> trace = Status::Internal("not run");
  std::thread runner([&] {
    trace = live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  });
  for (int i = 0; i < 5; ++i) {
    Result<std::string> stats =
        net::FetchServerStats("127.0.0.1", harness.port(), 2000.0);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  }
  runner.join();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows, harness.customer().rows());
  EXPECT_EQ(harness.server().stats_requests(), 5);
}

}  // namespace
}  // namespace wsq
