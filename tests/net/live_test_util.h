#ifndef WSQ_TESTS_NET_LIVE_TEST_UTIL_H_
#define WSQ_TESTS_NET_LIVE_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "wsq/backend/live_backend.h"
#include "wsq/net/server.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/server/container.h"
#include "wsq/server/data_service.h"
#include "wsq/server/dbms.h"

namespace wsq {

/// Stands up the full server stack (tables + DBMS + DataService +
/// ServiceContainer + WsqServer) on an ephemeral loopback port — what
/// every live test talks to. The service-time sleep is off by default;
/// tests that need realistic timing dynamics turn it on via `options`.
class LiveServerHarness {
 public:
  explicit LiveServerHarness(net::WsqServerOptions options = QuickOptions(),
                             double scale = 0.01, uint64_t seed = 7) {
    TpchGenOptions gen;
    gen.scale = scale;
    gen.seed = seed;
    customer_ = GenerateCustomer(gen).value();
    register_status_ = dbms_.RegisterTable(customer_);
    service_ = std::make_unique<DataService>(&dbms_);
    LoadModelConfig load;
    load.noise_sigma = 0.0;  // deterministic service times
    container_ = std::make_unique<ServiceContainer>(service_.get(), load,
                                                    seed);
    options.port = 0;  // always ephemeral in tests
    server_ = std::make_unique<net::WsqServer>(container_.get(),
                                               std::move(options));
    start_status_ = server_->Start();
  }

  static net::WsqServerOptions QuickOptions() {
    net::WsqServerOptions options;
    options.simulate_service_time = false;
    return options;
  }

  const Status& start_status() const { return start_status_; }
  const Status& register_status() const { return register_status_; }
  net::WsqServer& server() { return *server_; }
  int port() const { return server_->port(); }
  const Table& customer() const { return *customer_; }

  /// The customer rows exactly as the wire format delivers them: the
  /// delimited text format rounds doubles to 2 decimals on purpose, so
  /// fetched tuples compare equal to a serializer round-trip of the
  /// table, not to the raw in-memory rows.
  std::vector<Tuple> WireRows() const {
    TupleSerializer serializer(CustomerSchema());
    std::vector<Tuple> out;
    out.reserve(customer_->num_rows());
    for (const Tuple& row : customer_->rows()) {
      out.push_back(
          serializer.Deserialize(serializer.Serialize(row).value()).value());
    }
    return out;
  }

  /// A LiveSetup pointed at this server, querying the full customer
  /// table, with the output schema wired so tests can keep tuples.
  LiveSetup MakeSetup() const {
    LiveSetup setup;
    setup.host = "127.0.0.1";
    setup.port = server_->port();
    setup.query.table_name = "customer";
    setup.output_schema = std::make_shared<Schema>(CustomerSchema());
    // Tests run against a loopback server they control; a short connect
    // timeout keeps negative tests fast.
    setup.client_options.connect_timeout_ms = 2000.0;
    return setup;
  }

 private:
  std::shared_ptr<Table> customer_;
  Dbms dbms_;
  std::unique_ptr<DataService> service_;
  std::unique_ptr<ServiceContainer> container_;
  std::unique_ptr<net::WsqServer> server_;
  Status register_status_;
  Status start_status_;
};

}  // namespace wsq

#endif  // WSQ_TESTS_NET_LIVE_TEST_UTIL_H_
