#include "wsq/net/crc32c.h"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/net/frame.h"

namespace wsq::net {
namespace {

// ---------------------------------------------------------------------------
// CRC-32C primitive: known-answer vectors (RFC 3720 appendix B.4) and
// the chaining contract WriteFrame depends on.
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendOverSplitsEqualsWholeBuffer) {
  // WriteFrame accumulates the checksum piecewise (header, extensions,
  // payload); every split of a buffer must agree with the one-shot sum.
  std::string data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<char>((i * 131 + 17) & 0xff));
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    ASSERT_EQ(crc, whole) << "split at " << cut;
  }
}

TEST(Crc32cTest, EveryBitFlipChangesTheSum) {
  const std::string data = "the frame integrity contract";
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Frame-level integrity: the kFrameFlagCrc trailer through WriteFrame,
// AppendFrameBytes, ReadFrame and FrameParser.
// ---------------------------------------------------------------------------

/// Same in-memory ByteStream as frame_test.cc — configurable chunk size
/// to exercise the partial-IO loops.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(size_t max_chunk = std::numeric_limits<size_t>::max())
      : max_chunk_(max_chunk) {}

  Result<size_t> ReadSome(void* buf, size_t len) override {
    if (read_pos_ >= data_.size()) return static_cast<size_t>(0);  // EOF
    const size_t n = std::min({len, max_chunk_, data_.size() - read_pos_});
    std::memcpy(buf, data_.data() + read_pos_, n);
    read_pos_ += n;
    return n;
  }

  Result<size_t> WriteSome(const void* buf, size_t len) override {
    const size_t n = std::min(len, max_chunk_);
    data_.append(static_cast<const char*>(buf), n);
    return n;
  }

  std::string& data() { return data_; }

 private:
  std::string data_;
  size_t read_pos_ = 0;
  size_t max_chunk_;
};

Frame CheckedFrame() {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.service_micros = 987654321ull;
  frame.payload = std::string("payload\0with\xff" "binary", 19);
  frame.has_crc = true;
  return frame;
}

TEST(FrameCrcTest, CheckedFrameRoundTripsAndReportsTheFlag) {
  MemoryStream stream;
  const Frame sent = CheckedFrame();
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  ASSERT_EQ(stream.data().size(),
            kFrameHeaderBytes + sent.payload.size() + kFrameCrcBytes);

  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.value().has_crc);
  EXPECT_EQ(got.value().payload, sent.payload);
  EXPECT_EQ(got.value().service_micros, sent.service_micros);
}

TEST(FrameCrcTest, CheckedFrameSurvivesOneByteTransfers) {
  MemoryStream stream(/*max_chunk=*/1);
  const Frame sent = CheckedFrame();
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().payload, sent.payload);
}

TEST(FrameCrcTest, AppendFrameBytesMatchesWriteFrame) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, CheckedFrame()).ok());
  std::string appended;
  ASSERT_TRUE(AppendFrameBytes(CheckedFrame(), &appended).ok());
  EXPECT_EQ(appended, stream.data());
}

TEST(FrameCrcTest, CrcOffWireIsGoldenByteIdentical) {
  // The integrity feature must cost zero wire bytes when off: a frame
  // with has_crc=false serializes to exactly the pre-CRC image — no
  // trailer, no flag bit.
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.service_micros = 0x0102030405060708ull;
  frame.payload = "legacy";
  std::string wire;
  ASSERT_TRUE(AppendFrameBytes(frame, &wire).ok());
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 6);
  EXPECT_EQ(static_cast<unsigned char>(wire[5]), 0);  // flags byte clean

  // And the flag cannot be smuggled through `flags` without has_crc —
  // the encoder derives extension bits from data, not caller flags.
  Frame claimed;
  claimed.type = FrameType::kResponse;
  claimed.flags = kFrameFlagCrc;
  char raw[kFrameHeaderBytes];
  EncodeFrameHeader(claimed, raw);
  Result<FrameHeader> header = DecodeFrameHeader(raw);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().flags & kFrameFlagCrc, 0);
}

TEST(FrameCrcTest, EveryBitFlipIsDetectedAsChecksumMismatch) {
  // Flip each bit of the checked wire image (excluding flips that break
  // the header's own validation first). Every read must fail — a CRC
  // mismatch where the frame still parses structurally, some
  // kInvalidArgument where the flip hit magic/type/lengths — and a
  // mismatch must carry the retryable checksum status.
  MemoryStream full;
  ASSERT_TRUE(WriteFrame(full, CheckedFrame()).ok());
  const std::string wire = full.data();
  int mismatches = 0;
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      MemoryStream stream;
      stream.data() = wire;
      stream.data()[byte] =
          static_cast<char>(stream.data()[byte] ^ (1 << bit));
      Result<Frame> got = ReadFrame(stream);
      if (byte == 5 && (1 << bit) == kFrameFlagCrc) {
        // The one undetectable single-bit flip: clearing the CRC flag
        // itself makes the receiver skip verification (the stray
        // trailer then poisons the *next* frame's magic). A downgrade
        // needs this exact bit — anything touching it plus any other
        // bit is caught.
        continue;
      }
      ASSERT_FALSE(got.ok())
          << "flip at byte " << byte << " bit " << bit << " went undetected";
      if (IsChecksumMismatch(got.status())) {
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
        ++mismatches;
      }
    }
  }
  // Most flips land in the payload/service-micros/trailer and can only
  // be caught by the checksum.
  EXPECT_GT(mismatches, static_cast<int>(wire.size()) * 4);
}

TEST(FrameCrcTest, ParserAgreesWithReadFrameOnCorruption) {
  // The incremental parser (the server's decoder) must reject a
  // corrupted checked frame with the same retryable status, and frames
  // completed before the corruption still deliver.
  std::string wire;
  ASSERT_TRUE(AppendFrameBytes(CheckedFrame(), &wire).ok());
  std::string corrupted;
  ASSERT_TRUE(AppendFrameBytes(CheckedFrame(), &corrupted).ok());
  corrupted[kFrameHeaderBytes + 2] ^= 0x10;  // payload corruption
  wire += corrupted;

  FrameParser parser;
  std::vector<Frame> frames;
  Status status = parser.Consume(wire.data(), wire.size(), &frames);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsChecksumMismatch(status)) << status.ToString();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].has_crc);
  EXPECT_EQ(frames[0].payload, CheckedFrame().payload);
  EXPECT_TRUE(parser.failed());
}

TEST(FrameCrcTest, ParserHandlesCheckedFramesAtEveryChunking) {
  Frame empty;
  empty.type = FrameType::kPing;
  empty.has_crc = true;
  Frame plain;  // unchecked frame interleaved with checked ones
  plain.type = FrameType::kRequest;
  plain.payload = "no crc here";
  const std::vector<Frame> sent = {CheckedFrame(), plain, empty};
  std::string wire;
  for (const Frame& frame : sent) {
    ASSERT_TRUE(AppendFrameBytes(frame, &wire).ok());
  }
  for (size_t a = 0; a <= wire.size(); a += 3) {
    for (size_t b = a; b <= wire.size(); b += 5) {
      FrameParser parser;
      std::vector<Frame> frames;
      ASSERT_TRUE(parser.Consume(wire.data(), a, &frames).ok());
      ASSERT_TRUE(parser.Consume(wire.data() + a, b - a, &frames).ok());
      ASSERT_TRUE(
          parser.Consume(wire.data() + b, wire.size() - b, &frames).ok());
      ASSERT_EQ(frames.size(), sent.size()) << "cuts at " << a << "," << b;
      EXPECT_TRUE(frames[0].has_crc);
      EXPECT_EQ(frames[0].payload, sent[0].payload);
      EXPECT_FALSE(frames[1].has_crc);
      EXPECT_EQ(frames[1].payload, sent[1].payload);
      EXPECT_TRUE(frames[2].has_crc);
      EXPECT_EQ(frames[2].type, FrameType::kPing);
    }
  }
}

TEST(FrameCrcTest, ControlFramesRoundTrip) {
  // The liveness vocabulary: kPing / kPong / kGoaway, checked and
  // unchecked.
  for (const FrameType type :
       {FrameType::kPing, FrameType::kPong, FrameType::kGoaway}) {
    for (const bool checked : {false, true}) {
      MemoryStream stream;
      Frame frame;
      frame.type = type;
      frame.has_crc = checked;
      ASSERT_TRUE(WriteFrame(stream, frame).ok());
      Result<Frame> got = ReadFrame(stream);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value().type, type);
      EXPECT_EQ(got.value().has_crc, checked);
      EXPECT_TRUE(got.value().payload.empty());
    }
  }
}

TEST(FrameCrcTest, CheckedTracedFrameCoversTheExtensionChain) {
  // CRC over the full extension chain: header | trace ctx | span block
  // | payload | trailer — and a flip inside the trace context is caught.
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.payload = "traced";
  frame.has_trace = true;
  frame.trace = {0xAAAA, 0xBBBB, 0xCCCC};
  frame.has_crc = true;

  MemoryStream stream(/*max_chunk=*/1);
  ASSERT_TRUE(WriteFrame(stream, frame).ok());
  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.value().has_crc);
  EXPECT_TRUE(got.value().has_trace);
  EXPECT_EQ(got.value().trace, frame.trace);

  MemoryStream corrupt;
  ASSERT_TRUE(WriteFrame(corrupt, frame).ok());
  corrupt.data()[kFrameHeaderBytes + 3] ^= 0x01;  // inside the trace ctx
  Result<Frame> bad = ReadFrame(corrupt);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(IsChecksumMismatch(bad.status())) << bad.status().ToString();
}

}  // namespace
}  // namespace wsq::net
