// The transport-chaos conformance matrix: every NetFaultPlan preset,
// through the in-process ChaosProxy, against both negotiated codecs,
// with the client running the Chaos() resilience policy plus the crc
// and live features. The contract under every scenario is the same:
// the query terminates within a hard wall-clock bound (no hangs) and
// delivers every tuple exactly once, in order — transport chaos may
// cost time, never data.

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/fault/net_fault_plan.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/net/chaosproxy.h"
#include "wsq/net/socket.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

/// Hard per-scenario bound. The worst presets (blackhole: two ~2 s
/// handshake deadlines; halfopen: two ~2 s read deadlines) cost a few
/// seconds plus backoff; anything near the bound is a hang.
constexpr double kScenarioWallBoundMs = 30000.0;

struct Scenario {
  std::string plan;
  codec::CodecKind codec;
};

std::vector<Scenario> Matrix() {
  std::vector<Scenario> out;
  for (const std::string& plan : NetFaultPlan::KnownNames()) {
    for (const codec::CodecKind kind :
         {codec::CodecKind::kSoap, codec::CodecKind::kBinary}) {
      out.push_back({plan, kind});
    }
  }
  return out;
}

void RunScenario(const Scenario& scenario) {
  SCOPED_TRACE("plan=" + scenario.plan + " codec=" +
               std::string(codec::CodecKindName(scenario.codec)));

  net::WsqServerOptions server_options = LiveServerHarness::QuickOptions();
  server_options.codec.kind = codec::CodecKind::kBinary;  // richest offer
  LiveServerHarness harness(server_options);
  ASSERT_TRUE(harness.start_status().ok());

  net::ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = harness.port();
  proxy_options.plan = NetFaultPlan::FromName(scenario.plan).value();
  net::ChaosProxy proxy(std::move(proxy_options));
  ASSERT_TRUE(proxy.Start().ok());

  LiveSetup setup = harness.MakeSetup();
  setup.port = proxy.port();  // every byte through the chaos
  setup.client_options.codec.kind = scenario.codec;
  setup.client_options.enable_crc = true;
  setup.client_options.enable_liveness = true;

  LiveBackend live(setup);
  FixedController controller(40);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  const auto t0 = std::chrono::steady_clock::now();
  Result<RunTrace> trace = live.RunQueryKeepingTuples(&controller, spec, &rows);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // No hangs: the scenario terminates well inside the bound.
  EXPECT_LT(elapsed_ms, kScenarioWallBoundMs);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();

  // Exactly-once, in order: binary delivers bit-exact rows; SOAP
  // delivers the wire round-trip (2-decimal doubles) — in both cases
  // every row, no dupes, no holes.
  const std::vector<Tuple> expected =
      scenario.codec == codec::CodecKind::kBinary
          ? harness.customer().rows()
          : harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(rows[i] == expected[i]) << "row " << i;
  }
  proxy.Stop();
}

TEST(NetChaosMatrixTest, NonePreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "none") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, LatencyPreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "latency") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, BandwidthPreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "bandwidth") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, TricklePreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "trickle") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, ResetPreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "reset") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, BlackholePreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "blackhole") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, HalfopenPreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "halfopen") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, CorruptPreset) {
  for (const Scenario& s : Matrix()) {
    if (s.plan == "corrupt") RunScenario(s);
  }
}

TEST(NetChaosMatrixTest, MatrixCoversEveryKnownPreset) {
  // The per-preset tests above are spelled out so a failure names its
  // scenario; this guard fails the suite if a new preset is added
  // without joining the matrix.
  const std::vector<std::string> known = NetFaultPlan::KnownNames();
  const std::vector<std::string> covered = {
      "none",  "latency",   "bandwidth", "trickle",
      "reset", "blackhole", "halfopen",  "corrupt"};
  EXPECT_EQ(known, covered);
}

TEST(NetChaosMatrixTest, CorruptedFramesAreCountedAndRetriedWithCrc) {
  // Focused CRC-path check: aggressive corruption (p=1, budget 6,
  // handshake window skipped) with crc negotiated. The query still
  // delivers exactly-once, and at least one corruption was actually
  // caught by a checksum somewhere (client or server side) or by
  // framing — the proxy's budget being spent proves bytes were flipped.
  net::WsqServerOptions server_options = LiveServerHarness::QuickOptions();
  server_options.codec.kind = codec::CodecKind::kBinary;
  LiveServerHarness harness(server_options);
  ASSERT_TRUE(harness.start_status().ok());

  NetFaultPlan plan;
  plan.name = "corrupt-hard";
  plan.seed = 7;
  plan.corrupt_probability = 1.0;
  plan.corrupt_max = 6;
  plan.corrupt_skip_bytes = 512;
  net::ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = harness.port();
  proxy_options.plan = plan;
  net::ChaosProxy proxy(std::move(proxy_options));
  ASSERT_TRUE(proxy.Start().ok());

  LiveSetup setup = harness.MakeSetup();
  setup.port = proxy.port();
  setup.client_options.codec.kind = codec::CodecKind::kBinary;
  setup.client_options.enable_crc = true;
  setup.client_options.enable_liveness = true;

  LiveBackend live(setup);
  FixedController controller(40);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace = live.RunQueryKeepingTuples(&controller, spec, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(proxy.bytes_corrupted(), 6);
  ASSERT_EQ(rows.size(), harness.customer().num_rows());
  EXPECT_EQ(rows, harness.customer().rows());
  proxy.Stop();
}

// ---------------------------------------------------------------------------
// Admission control through the chaos proxy: the server's protective
// rejections must stay *retryable backpressure* when the network is
// also misbehaving — never silent drops, never data loss.
// ---------------------------------------------------------------------------

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(AdmissionThroughChaosTest, RateLimitedConnectIsRiddenOutOverLatency) {
  // Two direct connections burn the whole admission bucket just before
  // the real client (routed through a latency proxy) arrives. Its first
  // connection is rate-limited — answered with the retryable transient
  // fault — and the chaos policy's backoff outlasts the token refill,
  // so the query still delivers everything exactly once.
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.admission.rate_limit_per_sec = 2.0;  // one token per 500ms
  options.admission.rate_limit_burst = 2.0;
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  net::ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = harness.port();
  proxy_options.plan = NetFaultPlan::FromName("latency").value();
  net::ChaosProxy proxy(std::move(proxy_options));
  ASSERT_TRUE(proxy.Start().ok());

  Result<net::Socket> burner1 =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  Result<net::Socket> burner2 =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(burner1.ok() && burner2.ok());
  ASSERT_TRUE(
      WaitFor([&] { return harness.server().live_connections() == 2; }));

  LiveSetup setup = harness.MakeSetup();
  setup.port = proxy.port();
  setup.client_options.enable_crc = true;
  setup.client_options.enable_liveness = true;
  LiveBackend live(setup);
  FixedController controller(200);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace = live.RunQueryKeepingTuples(&controller, spec, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_GE(harness.server().rate_limited(), 1);

  const std::vector<Tuple> expected = harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(rows[i] == expected[i]) << "row " << i;
  }
  proxy.Stop();
}

TEST(AdmissionThroughChaosTest, ShedsUnderTrickleAreRetryableNotSilent) {
  // A scripted 400ms stall pins the only tolerated dispatch slot
  // (shed watermark 1) while the chaos client fetches through a
  // trickling proxy. Requests landing during the stall are shed with
  // the retryable backpressure fault; the trickle stretches every
  // exchange; the client still assembles the full table exactly once.
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.admission.shed_queue_watermark = 1;
  FaultSpec stall;
  stall.kind = FaultKind::kServerStall;
  stall.first_block = 0;
  stall.last_block = 0;
  stall.stall_ms = 400.0;
  options.fault_plan.specs.push_back(stall);
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  net::ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = harness.port();
  proxy_options.plan = NetFaultPlan::FromName("trickle").value();
  net::ChaosProxy proxy(std::move(proxy_options));
  ASSERT_TRUE(proxy.Start().ok());

  std::atomic<bool> stall_requested{false};
  std::thread staller([&] {
    Result<net::Socket> conn =
        net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
    ASSERT_TRUE(conn.ok());
    conn.value().set_io_timeout_ms(5000.0);
    net::Frame open;
    open.type = net::FrameType::kRequest;
    OpenSessionRequest open_request;
    open_request.table = "customer";
    open.payload = EncodeOpenSession(open_request);
    ASSERT_TRUE(net::WriteFrame(conn.value(), open).ok());
    Result<net::Frame> opened = net::ReadFrame(conn.value());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Result<XmlNode> envelope = ParseEnvelope(opened.value().payload);
    ASSERT_TRUE(envelope.ok());
    Result<OpenSessionResponse> session =
        DecodeOpenSessionResponse(envelope.value());
    ASSERT_TRUE(session.ok());

    RequestBlockRequest block;
    block.session_id = session.value().session_id;
    block.block_size = 100;
    net::Frame fetch;
    fetch.type = net::FrameType::kRequest;
    fetch.payload = EncodeRequestBlock(block);
    stall_requested.store(true);
    ASSERT_TRUE(net::WriteFrame(conn.value(), fetch).ok());
    Result<net::Frame> response = net::ReadFrame(conn.value());
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  });

  ASSERT_TRUE(WaitFor([&] { return stall_requested.load(); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  LiveSetup setup = harness.MakeSetup();
  setup.port = proxy.port();
  setup.client_options.enable_crc = true;
  setup.client_options.enable_liveness = true;
  LiveBackend live(setup);
  FixedController controller(500);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;
  std::vector<Tuple> rows;
  Result<RunTrace> trace = live.RunQueryKeepingTuples(&controller, spec, &rows);
  staller.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_GT(harness.server().sheds(), 0);
  const std::vector<Tuple> expected = harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(rows[i] == expected[i]) << "row " << i;
  }
  proxy.Stop();
}

}  // namespace
}  // namespace wsq
