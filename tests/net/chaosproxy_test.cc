#include "wsq/net/chaosproxy.h"

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "wsq/fault/net_fault_plan.h"
#include "wsq/net/socket.h"

namespace wsq::net {
namespace {

/// Minimal blocking echo upstream: accepts connections one at a time
/// and writes every byte back until the peer half-closes. Lets the
/// proxy be tested below the WSQ framing layer, on raw byte streams.
class EchoUpstream {
 public:
  EchoUpstream() {
    listener_ = TcpListen(0).value();
    port_ = LocalPort(listener_).value();
    thread_ = std::thread([this] { Serve(); });
  }

  ~EchoUpstream() {
    running_.store(false);
    listener_.Shutdown();
    thread_.join();
  }

  int port() const { return port_; }

 private:
  void Serve() {
    while (running_.load()) {
      Result<Socket> accepted = Accept(listener_, 50.0);
      if (!accepted.ok()) continue;
      Socket conn = std::move(accepted).value();
      conn.set_io_timeout_ms(2000.0);
      char buf[16 * 1024];
      bool alive = true;
      while (alive && running_.load()) {
        Result<size_t> n = conn.ReadSome(buf, sizeof(buf));
        if (!n.ok() || n.value() == 0) break;
        size_t off = 0;
        while (off < n.value()) {
          Result<size_t> wrote = conn.WriteSome(buf + off, n.value() - off);
          if (!wrote.ok()) {
            alive = false;
            break;
          }
          off += wrote.value();
        }
      }
    }
  }

  Socket listener_;
  int port_ = 0;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

/// A deterministic but non-repeating test pattern.
std::string Pattern(size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>((i * 131 + (i >> 8) * 17 + 5) & 0xff));
  }
  return out;
}

Status SendAll(Socket& socket, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    Result<size_t> n = socket.WriteSome(data.data() + off, data.size() - off);
    if (!n.ok()) return n.status();
    off += n.value();
  }
  return Status::Ok();
}

/// Reads exactly `want` bytes or fails on timeout/EOF.
Result<std::string> ReadExactly(Socket& socket, size_t want) {
  std::string out;
  char buf[16 * 1024];
  while (out.size() < want) {
    Result<size_t> n =
        socket.ReadSome(buf, std::min(sizeof(buf), want - out.size()));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return Status::Unavailable("EOF after " + std::to_string(out.size()) +
                                 " of " + std::to_string(want) + " bytes");
    }
    out.append(buf, n.value());
  }
  return out;
}

ChaosProxyOptions ProxyOptions(int upstream_port, NetFaultPlan plan) {
  ChaosProxyOptions options;
  options.upstream_port = upstream_port;
  options.plan = std::move(plan);
  return options;
}

Result<Socket> ConnectThrough(const ChaosProxy& proxy,
                              double io_timeout_ms = 3000.0) {
  Result<Socket> conn = TcpConnect("127.0.0.1", proxy.port(), 2000.0);
  if (conn.ok()) conn.value().set_io_timeout_ms(io_timeout_ms);
  return conn;
}

TEST(ChaosProxyTest, EmptyPlanRelaysByteIdenticalAndPropagatesFin) {
  EchoUpstream upstream;
  ChaosProxy proxy(ProxyOptions(upstream.port(), NetFaultPlan{}));
  ASSERT_TRUE(proxy.Start().ok());

  Result<Socket> conn = ConnectThrough(proxy);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const std::string sent = Pattern(200 * 1024);
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);

  // Half-close propagates as FIN: the echo server stops, and our read
  // then sees clean EOF coming back through the proxy.
  ::shutdown(conn.value().fd(), SHUT_WR);
  char buf[16];
  Result<size_t> eof = conn.value().ReadSome(buf, sizeof(buf));
  ASSERT_TRUE(eof.ok()) << eof.status().ToString();
  EXPECT_EQ(eof.value(), 0u);

  EXPECT_EQ(proxy.connections_accepted(), 1);
  EXPECT_GE(proxy.bytes_forwarded(), static_cast<int64_t>(2 * sent.size()));
  EXPECT_EQ(proxy.bytes_corrupted(), 0);
  EXPECT_EQ(proxy.resets_injected(), 0);
  proxy.Stop();
}

TEST(ChaosProxyTest, LatencyPlanDelaysDeliveryWithoutAlteringBytes) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.latency_ms = 40.0;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  Result<Socket> conn = ConnectThrough(proxy);
  ASSERT_TRUE(conn.ok());
  const std::string sent = Pattern(256);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);
  // Two proxied directions, 40 ms each; leave slack for scheduling.
  EXPECT_GE(elapsed_ms, 60.0);
  proxy.Stop();
}

TEST(ChaosProxyTest, TricklePlanDeliversEverythingInTinyPieces) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.trickle_bytes = 64;
  plan.trickle_interval_ms = 1.0;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  Result<Socket> conn = ConnectThrough(proxy, /*io_timeout_ms=*/10000.0);
  ASSERT_TRUE(conn.ok());
  const std::string sent = Pattern(8 * 1024);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);
  // 8 KiB at 64 B per 1 ms is ~128 ms of spacing per direction.
  EXPECT_GE(elapsed_ms, 100.0);
  proxy.Stop();
}

TEST(ChaosProxyTest, BandwidthCapMetersThroughput) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.bandwidth_bytes_per_sec = 256.0 * 1024.0;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  Result<Socket> conn = ConnectThrough(proxy, /*io_timeout_ms=*/10000.0);
  ASSERT_TRUE(conn.ok());
  const std::string sent = Pattern(64 * 1024);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);
  // 64 KiB through a 256 KiB/s cap takes ≥ 250 ms per direction; the
  // echo makes it two passes. Assert half of one pass to stay robust.
  EXPECT_GE(elapsed_ms, 250.0);
  proxy.Stop();
}

TEST(ChaosProxyTest, ResetPlanInjectsBudgetedRsts) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.reset_after_bytes = 1024;
  plan.max_resets = 1;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  {
    Result<Socket> conn = ConnectThrough(proxy);
    ASSERT_TRUE(conn.ok());
    const std::string sent = Pattern(8 * 1024);
    // The send may or may not fail depending on timing; the read must.
    (void)SendAll(conn.value(), sent);
    Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
    EXPECT_FALSE(echoed.ok());
  }
  EXPECT_EQ(proxy.resets_injected(), 1);

  // Budget spent: the next connection relays cleanly end to end.
  Result<Socket> conn = ConnectThrough(proxy);
  ASSERT_TRUE(conn.ok());
  const std::string sent = Pattern(8 * 1024);
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);
  EXPECT_EQ(proxy.resets_injected(), 1);
  proxy.Stop();
}

TEST(ChaosProxyTest, BlackholePlanSwallowsTheFirstConnections) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.blackhole_connections = 1;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  // First connection: accepted, bytes vanish, nothing ever comes back —
  // only the client's own deadline ends the wait.
  Result<Socket> hole = ConnectThrough(proxy, /*io_timeout_ms=*/150.0);
  ASSERT_TRUE(hole.ok());
  ASSERT_TRUE(SendAll(hole.value(), Pattern(512)).ok());
  char buf[64];
  Result<size_t> got = hole.value().ReadSome(buf, sizeof(buf));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);  // timeout
  EXPECT_EQ(proxy.blackholed_connections(), 1);

  // Second connection: past the budget, relays normally.
  Result<Socket> conn = ConnectThrough(proxy);
  ASSERT_TRUE(conn.ok());
  const std::string sent = Pattern(1024);
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);
  proxy.Stop();
}

TEST(ChaosProxyTest, HalfOpenPlanSilencesOneDirection) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.drop_direction = NetDropDirection::kToClient;
  plan.drop_connections = 1;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  // First connection: requests reach the echo server, but its answers
  // are dropped on the way back — the classic half-open.
  Result<Socket> conn = ConnectThrough(proxy, /*io_timeout_ms=*/200.0);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SendAll(conn.value(), Pattern(2048)).ok());
  char buf[64];
  Result<size_t> got = conn.value().ReadSome(buf, sizeof(buf));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);  // timeout

  // Give the proxy a beat to read (and drop) the echoed bytes.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(proxy.bytes_dropped(), 0);

  // Second connection relays both ways.
  Result<Socket> clean = ConnectThrough(proxy);
  ASSERT_TRUE(clean.ok());
  const std::string sent = Pattern(1024);
  ASSERT_TRUE(SendAll(clean.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(clean.value(), sent.size());
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent);
  proxy.Stop();
}

TEST(ChaosProxyTest, CorruptionFlipsBitsWithinBudgetAndWindow) {
  EchoUpstream upstream;
  NetFaultPlan plan;
  plan.corrupt_probability = 1.0;
  plan.corrupt_max = 3;
  plan.corrupt_skip_bytes = 128;
  plan.seed = 42;
  ChaosProxy proxy(ProxyOptions(upstream.port(), plan));
  ASSERT_TRUE(proxy.Start().ok());

  Result<Socket> conn = ConnectThrough(proxy);
  ASSERT_TRUE(conn.ok());
  const std::string sent = Pattern(4 * 1024);
  ASSERT_TRUE(SendAll(conn.value(), sent).ok());
  Result<std::string> echoed = ReadExactly(conn.value(), sent.size());
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();

  // Same length, corrupted content: with p=1 the budget is spent on the
  // first chunks, and every flip is a single bit.
  ASSERT_EQ(echoed.value().size(), sent.size());
  EXPECT_NE(echoed.value(), sent);
  int flipped_bits = 0;
  for (size_t i = 0; i < sent.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(sent[i]) ^
                         static_cast<unsigned char>(echoed.value()[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
    // The handshake window survives untouched in the client→upstream
    // direction (the echo's first 128 bytes back are protected too).
    if (i < plan.corrupt_skip_bytes) {
      ASSERT_EQ(sent[i], echoed.value()[i]) << "window byte " << i;
    }
  }
  EXPECT_GE(flipped_bits, 1);
  EXPECT_LE(flipped_bits, plan.corrupt_max);
  EXPECT_EQ(proxy.bytes_corrupted(),
            static_cast<int64_t>(flipped_bits));
  proxy.Stop();
}

TEST(ChaosProxyTest, StartRejectsAnInvalidPlan) {
  NetFaultPlan plan;
  plan.corrupt_probability = 1.5;
  ChaosProxyOptions options;
  options.upstream_port = 1;  // never dialed — validation fails first
  options.plan = plan;
  ChaosProxy proxy(std::move(options));
  Status status = proxy.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wsq::net
