#include "wsq/net/frame.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/codec/binary_codec.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"

namespace wsq::net {
namespace {

/// In-memory ByteStream with a configurable maximum transfer per call,
/// so tests exercise the partial-read / short-write loops the real
/// socket path depends on.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(size_t max_chunk = std::numeric_limits<size_t>::max())
      : max_chunk_(max_chunk) {}

  Result<size_t> ReadSome(void* buf, size_t len) override {
    if (read_pos_ >= data_.size()) return static_cast<size_t>(0);  // EOF
    const size_t n =
        std::min({len, max_chunk_, data_.size() - read_pos_});
    std::memcpy(buf, data_.data() + read_pos_, n);
    read_pos_ += n;
    return n;
  }

  Result<size_t> WriteSome(const void* buf, size_t len) override {
    const size_t n = std::min(len, max_chunk_);
    data_.append(static_cast<const char*>(buf), n);
    return n;
  }

  std::string& data() { return data_; }

 private:
  std::string data_;
  size_t read_pos_ = 0;
  size_t max_chunk_;
};

Frame SampleFrame() {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.flags = kFrameFlagSoapFault;
  frame.service_micros = 123456789ull;
  frame.payload = std::string("soap\0envelope\xffwith binary", 25);
  return frame;
}

TEST(FrameTest, RoundTripPreservesEveryField) {
  MemoryStream stream;
  const Frame sent = SampleFrame();
  ASSERT_TRUE(WriteFrame(stream, sent).ok());

  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().type, sent.type);
  EXPECT_EQ(got.value().flags, sent.flags);
  EXPECT_EQ(got.value().service_micros, sent.service_micros);
  EXPECT_EQ(got.value().payload, sent.payload);
}

TEST(FrameTest, IsCleanCloseRecognizesOnlyTheBeforeFirstByteClose) {
  // A peer closing between frames produces the one status callers may
  // dispatch on (the codec handshake uses it to tell a legacy peer from
  // a timeout); closing mid-frame or any other failure must not match.
  MemoryStream empty;
  char buf[4];
  const Status clean = ReadExact(empty, buf, sizeof(buf));
  ASSERT_FALSE(clean.ok());
  EXPECT_TRUE(IsCleanClose(clean));

  MemoryStream partial;
  partial.data() = "ab";
  const Status mid = ReadExact(partial, buf, sizeof(buf));
  ASSERT_FALSE(mid.ok());
  EXPECT_FALSE(IsCleanClose(mid));

  EXPECT_FALSE(IsCleanClose(Status::Ok()));
  EXPECT_FALSE(IsCleanClose(Status::Unavailable("read timed out")));
  EXPECT_FALSE(IsCleanClose(Status::InvalidArgument("bad frame magic")));
}

TEST(FrameTest, RoundTripSurvivesOneByteTransfers) {
  // Every ReadSome/WriteSome moves a single byte: the framing loops must
  // reassemble the exact same frame.
  MemoryStream stream(/*max_chunk=*/1);
  const Frame sent = SampleFrame();
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  ASSERT_EQ(stream.data().size(), kFrameHeaderBytes + sent.payload.size());

  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().payload, sent.payload);
  EXPECT_EQ(got.value().service_micros, sent.service_micros);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  MemoryStream stream;
  Frame frame;
  frame.type = FrameType::kRequest;
  ASSERT_TRUE(WriteFrame(stream, frame).ok());
  ASSERT_EQ(stream.data().size(), kFrameHeaderBytes);

  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().payload.empty());
  EXPECT_EQ(got.value().type, FrameType::kRequest);
}

TEST(FrameTest, CleanEofBetweenFramesIsUnavailable) {
  MemoryStream stream;  // nothing to read
  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(got.status().message().find("closed"), std::string::npos);
}

TEST(FrameTest, EofMidHeaderIsUnavailable) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, SampleFrame()).ok());
  stream.data().resize(kFrameHeaderBytes / 2);  // cut inside the header

  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(got.status().message().find("mid-message"), std::string::npos);
}

TEST(FrameTest, EofMidPayloadIsUnavailable) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, SampleFrame()).ok());
  stream.data().resize(kFrameHeaderBytes + 3);  // cut inside the payload

  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, GarbageHeaderIsInvalidArgument) {
  MemoryStream stream;
  stream.data().assign(kFrameHeaderBytes, 'x');
  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("magic"), std::string::npos);
}

TEST(FrameTest, UnknownFrameTypeIsInvalidArgument) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, SampleFrame()).ok());
  stream.data()[4] = 99;  // corrupt the type byte (9 is kGoaway now)

  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizedHeaderRejectedBeforeAllocation) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, SampleFrame()).ok());
  // Patch payload_len (bytes 8..11, big-endian) to 64 MiB + 1.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  stream.data()[8] = static_cast<char>((huge >> 24) & 0xff);
  stream.data()[9] = static_cast<char>((huge >> 16) & 0xff);
  stream.data()[10] = static_cast<char>((huge >> 8) & 0xff);
  stream.data()[11] = static_cast<char>(huge & 0xff);

  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("exceeds"), std::string::npos);
}

TEST(FrameTest, WriteRefusesOversizedPayloadSymmetrically) {
  MemoryStream stream;
  Frame frame;
  frame.payload.resize(kMaxFramePayloadBytes + 1);
  Status status = WriteFrame(stream, frame);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(stream.data().empty());  // nothing hit the wire
}

TEST(FrameTest, BackToBackFramesReadInOrder) {
  MemoryStream stream(/*max_chunk=*/3);
  Frame first = SampleFrame();
  Frame second;
  second.type = FrameType::kRequest;
  second.payload = "short";
  ASSERT_TRUE(WriteFrame(stream, first).ok());
  ASSERT_TRUE(WriteFrame(stream, second).ok());

  Result<Frame> got1 = ReadFrame(stream);
  Result<Frame> got2 = ReadFrame(stream);
  ASSERT_TRUE(got1.ok());
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got1.value().payload, first.payload);
  EXPECT_EQ(got2.value().payload, "short");
  // And the stream is drained: a third read reports the clean EOF.
  EXPECT_EQ(ReadFrame(stream).status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, BinaryCodecPayloadSurvivesOneByteTransfers) {
  // A real binary block response — every byte value on the wire, no
  // text anywhere — through the same single-byte framing torture the
  // SOAP payloads get. The decoded block must be bit-exact.
  Schema schema({{"id", ColumnType::kInt64},
                 {"v", ColumnType::kDouble},
                 {"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  std::string all_bytes;
  for (int i = 0; i < 256; ++i) {
    all_bytes.push_back(static_cast<char>(i));
  }
  for (int i = 0; i < 20; ++i) {
    rows.emplace_back(Tuple({Value(static_cast<int64_t>(i - 10) * 1000003),
                             Value(i * 0.0625 - 0.5), Value(all_bytes)}));
  }
  codec::BinaryCodec codec;
  Frame sent;
  sent.type = FrameType::kResponse;
  sent.payload =
      codec.EncodeBlockResponse(3, true, schema, rows).value();

  MemoryStream stream(/*max_chunk=*/1);
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().payload, sent.payload);

  Result<codec::DecodedBlock> block =
      codec.DecodeBlockResponse(got.value().payload);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  Result<std::vector<Tuple>> tuples = block.value().rows.Materialize(nullptr);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples.value(), rows);
}

TEST(FrameTest, CompressedBinaryPayloadSurvivesOneByteTransfers) {
  Schema schema({{"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.emplace_back(Tuple({Value(std::string("block after block "))}));
  }
  codec::BinaryCodecOptions options;
  options.compress_blocks = true;
  codec::BinaryCodec codec(options);
  Frame sent;
  sent.type = FrameType::kResponse;
  sent.payload = codec.EncodeBlockResponse(1, false, schema, rows).value();
  ASSERT_EQ(static_cast<uint8_t>(sent.payload[6]),
            codec::kBinaryFlagCompressedBody);

  MemoryStream stream(/*max_chunk=*/1);
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok());
  Result<codec::DecodedBlock> block =
      codec.DecodeBlockResponse(got.value().payload);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  Result<std::vector<Tuple>> tuples = block.value().rows.Materialize(nullptr);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples.value(), rows);
}

TEST(FrameTest, HelloFramesRoundTrip) {
  MemoryStream stream(/*max_chunk=*/1);
  Frame hello;
  hello.type = FrameType::kHello;
  hello.payload = "binary,soap";
  Frame ack;
  ack.type = FrameType::kHelloAck;
  ack.payload = "binary";
  ASSERT_TRUE(WriteFrame(stream, hello).ok());
  ASSERT_TRUE(WriteFrame(stream, ack).ok());

  Result<Frame> got_hello = ReadFrame(stream);
  Result<Frame> got_ack = ReadFrame(stream);
  ASSERT_TRUE(got_hello.ok());
  ASSERT_TRUE(got_ack.ok());
  EXPECT_EQ(got_hello.value().type, FrameType::kHello);
  EXPECT_EQ(got_hello.value().payload, "binary,soap");
  EXPECT_EQ(got_ack.value().type, FrameType::kHelloAck);
  EXPECT_EQ(got_ack.value().payload, "binary");
}

TEST(FrameTest, StatsFramesRoundTrip) {
  MemoryStream stream(/*max_chunk=*/1);
  Frame stats;
  stats.type = FrameType::kStats;
  Frame ack;
  ack.type = FrameType::kStatsAck;
  ack.payload = "{\"schema_version\":1}";
  ASSERT_TRUE(WriteFrame(stream, stats).ok());
  ASSERT_TRUE(WriteFrame(stream, ack).ok());

  Result<Frame> got_stats = ReadFrame(stream);
  Result<Frame> got_ack = ReadFrame(stream);
  ASSERT_TRUE(got_stats.ok());
  ASSERT_TRUE(got_ack.ok());
  EXPECT_EQ(got_stats.value().type, FrameType::kStats);
  EXPECT_TRUE(got_stats.value().payload.empty());
  EXPECT_EQ(got_ack.value().type, FrameType::kStatsAck);
  EXPECT_EQ(got_ack.value().payload, "{\"schema_version\":1}");
}

Frame TracedFrame() {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.service_micros = 777;
  frame.payload = "block bytes";
  frame.has_trace = true;
  frame.trace.trace_id = 0x0123456789abcdefull;
  frame.trace.span_id = 42;
  frame.trace.clock_micros = 1722500000000000ull;
  std::vector<RemoteSpan> spans;
  RemoteSpan root;
  root.span_id = 100;
  root.parent_span_id = 42;
  root.ts_micros = 1722500000000123;
  root.dur_micros = 900;
  root.name = "server.request";
  spans.push_back(root);
  RemoteSpan hit;
  hit.span_id = 101;
  hit.parent_span_id = 100;
  hit.ts_micros = 1722500000000200;
  hit.dur_micros = 0;
  hit.name = "server.replay_hit";
  spans.push_back(hit);
  frame.span_block = EncodeRemoteSpans(spans);
  return frame;
}

TEST(FrameTest, TracedFrameRoundTripsOverOneByteTransfers) {
  // The full extension chain — header | trace ctx | span block | payload
  // — reassembled from single-byte reads.
  MemoryStream stream(/*max_chunk=*/1);
  const Frame sent = TracedFrame();
  ASSERT_TRUE(WriteFrame(stream, sent).ok());

  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.value().has_trace);
  EXPECT_EQ(got.value().trace, sent.trace);
  EXPECT_EQ(got.value().span_block, sent.span_block);
  EXPECT_EQ(got.value().payload, sent.payload);

  Result<std::vector<RemoteSpan>> spans =
      DecodeRemoteSpans(got.value().span_block);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  ASSERT_EQ(spans.value().size(), 2u);
  EXPECT_EQ(spans.value()[0].name, "server.request");
  EXPECT_EQ(spans.value()[1].dur_micros, 0);
}

TEST(FrameTest, TracedRequestWithoutSpansRoundTrips) {
  // The request direction: trace context only, no span block.
  MemoryStream stream;
  Frame sent;
  sent.type = FrameType::kRequest;
  sent.payload = "req";
  sent.has_trace = true;
  sent.trace = {7, 8, 9};
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  ASSERT_EQ(stream.data().size(),
            kFrameHeaderBytes + kTraceContextBytes + sent.payload.size());

  Result<Frame> got = ReadFrame(stream);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().has_trace);
  EXPECT_EQ(got.value().trace, sent.trace);
  EXPECT_TRUE(got.value().span_block.empty());
}

TEST(FrameTest, LegacyFrameBytesAreUntouchedByTheExtension) {
  // Byte-identity contract: a frame without tracing must serialize to
  // exactly the pre-extension wire image — header then payload, no
  // extension bytes, no flag bits. Golden-checked field by field.
  MemoryStream stream;
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.service_micros = 0x0102030405060708ull;
  frame.payload = "legacy";
  ASSERT_TRUE(WriteFrame(stream, frame).ok());

  const std::string& wire = stream.data();
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 6);
  const unsigned char* raw =
      reinterpret_cast<const unsigned char*>(wire.data());
  EXPECT_EQ(raw[0], 0x57);  // 'W'
  EXPECT_EQ(raw[1], 0x53);  // 'S'
  EXPECT_EQ(raw[2], 0x51);  // 'Q'
  EXPECT_EQ(raw[3], 0x31);  // '1'
  EXPECT_EQ(raw[4], 2);     // kResponse
  EXPECT_EQ(raw[5], 0);     // flags: no extension bits
  EXPECT_EQ(raw[6], 0);     // reserved
  EXPECT_EQ(raw[7], 0);
  EXPECT_EQ(raw[8], 0);  // payload_len == 6, big-endian
  EXPECT_EQ(raw[9], 0);
  EXPECT_EQ(raw[10], 0);
  EXPECT_EQ(raw[11], 6);
  for (int i = 0; i < 8; ++i) {  // service_micros big-endian
    EXPECT_EQ(raw[12 + i], i + 1);
  }
  EXPECT_EQ(wire.substr(kFrameHeaderBytes), "legacy");
}

TEST(FrameTest, ExtensionFlagsDeriveFromDataNotCallerFlags) {
  // A frame whose `flags` claim an extension but whose fields carry none
  // must not announce it — EncodeFrameHeader masks the bits out.
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.flags = kFrameFlagTraceContext | kFrameFlagServerSpans;
  char raw[kFrameHeaderBytes];
  EncodeFrameHeader(frame, raw);
  Result<FrameHeader> header = DecodeFrameHeader(raw);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().flags & kFrameFlagTraceContext, 0);
  EXPECT_EQ(header.value().flags & kFrameFlagServerSpans, 0);
}

TEST(FrameTest, SpanFlagWithoutTraceFlagIsInvalidArgument) {
  // Build a valid traced frame, then clear the trace bit on the wire so
  // only the span bit survives — structurally invalid.
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, TracedFrame()).ok());
  stream.data()[5] = static_cast<char>(kFrameFlagServerSpans);

  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizedSpanBlockRejectedOnBothSides) {
  // Write side refuses to emit it...
  MemoryStream refuse;
  Frame big = TracedFrame();
  big.span_block.assign(kMaxRemoteSpanBytes + 1, 's');
  Status status = WriteFrame(refuse, big);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(refuse.data().empty());

  // ...and the read side rejects a hostile length before allocating.
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, TracedFrame()).ok());
  const size_t len_at = kFrameHeaderBytes + kTraceContextBytes;
  const uint32_t huge = static_cast<uint32_t>(kMaxRemoteSpanBytes) + 1;
  stream.data()[len_at] = static_cast<char>((huge >> 24) & 0xff);
  stream.data()[len_at + 1] = static_cast<char>((huge >> 16) & 0xff);
  stream.data()[len_at + 2] = static_cast<char>((huge >> 8) & 0xff);
  stream.data()[len_at + 3] = static_cast<char>(huge & 0xff);
  Result<Frame> got = ReadFrame(stream);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, TracedFrameTruncatedAtEveryCutNeverSucceedsWrong) {
  // Cut the traced wire image after every prefix length. Each cut must
  // produce a clean failure (kUnavailable mid-message) — never a bogus
  // decoded frame, never a crash.
  MemoryStream full;
  const Frame sent = TracedFrame();
  ASSERT_TRUE(WriteFrame(full, sent).ok());
  const std::string wire = full.data();
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    MemoryStream stream;
    stream.data() = wire.substr(0, cut);
    Result<Frame> got = ReadFrame(stream);
    ASSERT_FALSE(got.ok()) << "cut at " << cut << " decoded a frame";
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
        << "cut at " << cut;
  }
}

TEST(FrameTest, TracedFrameSurvivesEverySingleBitFlip) {
  // Flip each bit of the traced wire image in turn. The reader may
  // reject the frame or may decode one with different field values —
  // but it must never crash, hang, or over-read.
  MemoryStream full;
  ASSERT_TRUE(WriteFrame(full, TracedFrame()).ok());
  const std::string wire = full.data();
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      MemoryStream stream;
      stream.data() = wire;
      stream.data()[byte] =
          static_cast<char>(stream.data()[byte] ^ (1 << bit));
      Result<Frame> got = ReadFrame(stream);
      if (got.ok() && !got.value().span_block.empty()) {
        // A span block that still parses is fine; one that does not must
        // fail cleanly too.
        DecodeRemoteSpans(got.value().span_block).status();
      }
    }
  }
  SUCCEED();
}

TEST(FrameTest, HeaderEncodeDecodeAgree) {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.flags = kFrameFlagTransientFault;
  frame.service_micros = 0xDEADBEEFCAFEull;
  frame.payload.assign(4096, 'p');

  char raw[kFrameHeaderBytes];
  EncodeFrameHeader(frame, raw);
  Result<FrameHeader> header = DecodeFrameHeader(raw);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().type, frame.type);
  EXPECT_EQ(header.value().flags, frame.flags);
  EXPECT_EQ(header.value().payload_len, frame.payload.size());
  EXPECT_EQ(header.value().service_micros, frame.service_micros);
}

// ---------------------------------------------------------------------------
// FrameParser: the incremental decoder under the event-loop server. Its
// contract is byte-for-byte agreement with ReadFrame regardless of how
// recv() slices the stream.
// ---------------------------------------------------------------------------

/// The wire image of `frame`, as WriteFrame would emit it.
std::string WireImage(const Frame& frame) {
  MemoryStream stream;
  EXPECT_TRUE(WriteFrame(stream, frame).ok());
  return stream.data();
}

void ExpectSameFrame(const Frame& got, const Frame& sent) {
  // The reference is what ReadFrame reports for the same wire image: it
  // surfaces the raw wire flags, extension bits included, and the parser
  // must agree with it bit for bit.
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, sent).ok());
  Result<Frame> read = ReadFrame(stream);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const Frame& ref = read.value();
  EXPECT_EQ(got.type, ref.type);
  EXPECT_EQ(got.flags, ref.flags);
  EXPECT_EQ(got.service_micros, ref.service_micros);
  EXPECT_EQ(got.payload, ref.payload);
  EXPECT_EQ(got.has_trace, ref.has_trace);
  if (ref.has_trace) {
    EXPECT_EQ(got.trace.trace_id, ref.trace.trace_id);
    EXPECT_EQ(got.trace.span_id, ref.trace.span_id);
    EXPECT_EQ(got.trace.clock_micros, ref.trace.clock_micros);
  }
  EXPECT_EQ(got.span_block, ref.span_block);
}

TEST(FrameParserTest, AppendFrameBytesMatchesWriteFrame) {
  const Frame plain = SampleFrame();
  const Frame traced = TracedFrame();
  for (const Frame& frame : {plain, traced}) {
    std::string appended;
    ASSERT_TRUE(AppendFrameBytes(frame, &appended).ok());
    EXPECT_EQ(appended, WireImage(frame));
  }
}

TEST(FrameParserTest, AppendFrameBytesRefusesOversizeAndLeavesOutAlone) {
  Frame big;
  big.payload.assign(kMaxFramePayloadBytes + 1, 'x');
  std::string out = "prefix";
  Status status = AppendFrameBytes(big, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, "prefix");
}

TEST(FrameParserTest, WholeBufferYieldsTheFrame) {
  const Frame sent = TracedFrame();
  const std::string wire = WireImage(sent);
  FrameParser parser;
  std::vector<Frame> frames;
  ASSERT_TRUE(parser.Consume(wire.data(), wire.size(), &frames).ok());
  ASSERT_EQ(frames.size(), 1u);
  ExpectSameFrame(frames[0], sent);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_FALSE(parser.failed());
}

TEST(FrameParserTest, ByteAtATimeYieldsIdenticalFrames) {
  // The cruellest recv schedule: one byte per call, across a plain
  // frame, a traced frame with spans, and an empty-payload frame
  // back-to-back on one stream.
  Frame empty;
  empty.type = FrameType::kStats;
  const std::vector<Frame> sent = {SampleFrame(), TracedFrame(), empty};
  std::string wire;
  for (const Frame& frame : sent) {
    ASSERT_TRUE(AppendFrameBytes(frame, &wire).ok());
  }
  FrameParser parser;
  std::vector<Frame> frames;
  for (char byte : wire) {
    ASSERT_TRUE(parser.Consume(&byte, 1, &frames).ok());
  }
  ASSERT_EQ(frames.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectSameFrame(frames[i], sent[i]);
  }
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParserTest, EveryChunkingOfAPipelinedStreamAgrees) {
  // Split a three-frame stream at a dense sampling of boundary pairs
  // (coprime strides cover every phase of every wire structure): the
  // parser must produce the same three frames no matter where the
  // kernel happened to cut the bytes.
  const std::vector<Frame> sent = {SampleFrame(), TracedFrame(),
                                   SampleFrame()};
  std::string wire;
  for (const Frame& frame : sent) {
    ASSERT_TRUE(AppendFrameBytes(frame, &wire).ok());
  }
  for (size_t a = 0; a <= wire.size(); a += 3) {
    for (size_t b = a; b <= wire.size(); b += 5) {
      FrameParser parser;
      std::vector<Frame> frames;
      ASSERT_TRUE(parser.Consume(wire.data(), a, &frames).ok());
      ASSERT_TRUE(parser.Consume(wire.data() + a, b - a, &frames).ok());
      ASSERT_TRUE(
          parser.Consume(wire.data() + b, wire.size() - b, &frames).ok());
      ASSERT_EQ(frames.size(), sent.size())
          << "cuts at " << a << "," << b;
      for (size_t i = 0; i < sent.size(); ++i) {
        ExpectSameFrame(frames[i], sent[i]);
      }
    }
  }
}

TEST(FrameParserTest, GarbagePoisonsTheParserPermanently) {
  FrameParser parser;
  std::vector<Frame> frames;
  const std::string junk(kFrameHeaderBytes, 'x');
  Status status = parser.Consume(junk.data(), junk.size(), &frames);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(parser.failed());
  EXPECT_TRUE(frames.empty());

  // Even a perfectly valid frame afterwards keeps failing with the same
  // error: framing is lost, the connection must drop.
  const std::string wire = WireImage(SampleFrame());
  Status again = parser.Consume(wire.data(), wire.size(), &frames);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(frames.empty());
}

TEST(FrameParserTest, FramesBeforeTheGarbageAreStillDelivered) {
  std::string wire = WireImage(SampleFrame());
  wire += std::string(kFrameHeaderBytes, 'x');
  FrameParser parser;
  std::vector<Frame> frames;
  Status status = parser.Consume(wire.data(), wire.size(), &frames);
  ASSERT_FALSE(status.ok());
  ASSERT_EQ(frames.size(), 1u);
  ExpectSameFrame(frames[0], SampleFrame());
}

TEST(FrameParserTest, OversizedSpanLengthIsRejectedBeforeAllocation) {
  std::string wire = WireImage(TracedFrame());
  const size_t len_at = kFrameHeaderBytes + kTraceContextBytes;
  const uint32_t huge = static_cast<uint32_t>(kMaxRemoteSpanBytes) + 1;
  wire[len_at] = static_cast<char>((huge >> 24) & 0xff);
  wire[len_at + 1] = static_cast<char>((huge >> 16) & 0xff);
  wire[len_at + 2] = static_cast<char>((huge >> 8) & 0xff);
  wire[len_at + 3] = static_cast<char>(huge & 0xff);
  FrameParser parser;
  std::vector<Frame> frames;
  Status status = parser.Consume(wire.data(), wire.size(), &frames);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParserTest, BufferedBytesReportsMidFrameProgress) {
  const std::string wire = WireImage(SampleFrame());
  FrameParser parser;
  std::vector<Frame> frames;
  ASSERT_TRUE(parser.Consume(wire.data(), 5, &frames).ok());
  EXPECT_EQ(parser.buffered_bytes(), 5u);  // mid-header
  ASSERT_TRUE(
      parser.Consume(wire.data() + 5, wire.size() - 5, &frames).ok());
  EXPECT_EQ(parser.buffered_bytes(), 0u);  // between frames
  ASSERT_EQ(frames.size(), 1u);
}

}  // namespace
}  // namespace wsq::net
