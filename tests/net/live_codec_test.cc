// The negotiated binary codec over the real TCP transport: upgrade,
// fallback, bit-exact delivery, and the restart-retry regression the
// replay cache closes.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/codec/codec.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/resilience_policy.h"

namespace wsq {
namespace {

net::WsqServerOptions BinaryServerOptions(bool compress = false) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, compress};
  return options;
}

LiveSetup BinaryClientSetup(const LiveServerHarness& harness) {
  LiveSetup setup = harness.MakeSetup();
  setup.client_options.codec =
      codec::CodecChoice{codec::CodecKind::kBinary, false};
  return setup;
}

TEST(LiveCodecTest, NegotiatedBinaryDeliversTheTableBitExactly) {
  // Under the binary codec the live path sheds SOAP's 2-decimal text
  // truncation: fetched rows equal the server's in-memory table, raw
  // double bits included — not the serializer round-trip WireRows()
  // models for SOAP runs.
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(300);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok());

  ASSERT_EQ(rows.size(), harness.customer().num_rows());
  EXPECT_EQ(rows, harness.customer().rows());

  // And the SOAP wire model would NOT have matched: the table has
  // full-precision balances that 2-decimal text must mangle.
  EXPECT_NE(rows, harness.WireRows());
}

TEST(LiveCodecTest, CompressedBinaryMatchesPlainOverTcp) {
  LiveServerHarness harness(BinaryServerOptions(/*compress=*/true));
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(400);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows, harness.customer().rows());
}

TEST(LiveCodecTest, ClientFallsBackWhenServerOnlySpeaksSoap) {
  // Default server options: negotiation answers "soap" to everyone. A
  // client advertising binary must settle for SOAP and still drain the
  // query — delivering the SOAP-precision rows, proving the downgraded
  // codec really carried the blocks.
  LiveServerHarness harness;  // QuickOptions: codec defaults to soap
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(300);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  const std::vector<Tuple> expected = harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  EXPECT_EQ(rows, expected);
}

TEST(LiveCodecTest, SoapClientUnaffectedByABinaryCapableServer) {
  // The reverse direction: a legacy client (no handshake at all)
  // against a server willing to speak binary keeps getting plain SOAP.
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());  // client codec defaults to soap
  FixedController controller(300);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows, harness.WireRows());
}

TEST(LiveCodecTest, BinaryRestartRetryDeliversEveryTupleExactlyOnce) {
  // The sequenced-binary twin of LiveRetryTest's restart test. Under
  // SOAP a kill between dispatch and response write can cost one block
  // (the at-most-once residual). Binary requests carry a sequence
  // number, the server's replay cache makes the retried fetch
  // idempotent, and the reconnect handshake restores the codec — so the
  // restarted query must deliver *exactly* the full table, not "within
  // one block of it".
  net::WsqServerOptions options;  // service-time sim ON: paces the run
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(50);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace = Status::Internal("not run");
  std::thread runner(
      [&] { trace = live.RunQueryKeepingTuples(&controller, spec, &rows); });

  const auto gate_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().exchanges_served() < 5 &&
         std::chrono::steady_clock::now() < gate_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(harness.server().exchanges_served(), 5);
  harness.server().Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(harness.server().Start().ok());
  runner.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();
  EXPECT_GE(trace.value().total_retries, 1);

  // Exact delivery: every tuple, once, in order, bit-exact.
  EXPECT_EQ(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
  EXPECT_EQ(rows, harness.customer().rows());
}

}  // namespace
}  // namespace wsq
