// The negotiated binary codec over the real TCP transport: upgrade,
// fallback, bit-exact delivery, and the restart-retry regression the
// replay cache closes.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/client/tcp_ws_client.h"
#include "wsq/codec/codec.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/net/frame.h"
#include "wsq/net/socket.h"

namespace wsq {
namespace {

net::WsqServerOptions BinaryServerOptions(bool compress = false) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, compress};
  return options;
}

LiveSetup BinaryClientSetup(const LiveServerHarness& harness) {
  LiveSetup setup = harness.MakeSetup();
  setup.client_options.codec =
      codec::CodecChoice{codec::CodecKind::kBinary, false};
  return setup;
}

TEST(LiveCodecTest, NegotiatedBinaryDeliversTheTableBitExactly) {
  // Under the binary codec the live path sheds SOAP's 2-decimal text
  // truncation: fetched rows equal the server's in-memory table, raw
  // double bits included — not the serializer round-trip WireRows()
  // models for SOAP runs.
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(300);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok());

  ASSERT_EQ(rows.size(), harness.customer().num_rows());
  EXPECT_EQ(rows, harness.customer().rows());

  // And the SOAP wire model would NOT have matched: the table has
  // full-precision balances that 2-decimal text must mangle.
  EXPECT_NE(rows, harness.WireRows());
}

TEST(LiveCodecTest, CompressedBinaryMatchesPlainOverTcp) {
  LiveServerHarness harness(BinaryServerOptions(/*compress=*/true));
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(400);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows, harness.customer().rows());
}

TEST(LiveCodecTest, ClientFallsBackWhenServerOnlySpeaksSoap) {
  // Default server options: negotiation answers "soap" to everyone. A
  // client advertising binary must settle for SOAP and still drain the
  // query — delivering the SOAP-precision rows, proving the downgraded
  // codec really carried the blocks.
  LiveServerHarness harness;  // QuickOptions: codec defaults to soap
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(300);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  const std::vector<Tuple> expected = harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  EXPECT_EQ(rows, expected);
}

TEST(LiveCodecTest, SoapClientUnaffectedByABinaryCapableServer) {
  // The reverse direction: a legacy client (no handshake at all)
  // against a server willing to speak binary keeps getting plain SOAP.
  LiveServerHarness harness(BinaryServerOptions());
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());  // client codec defaults to soap
  FixedController controller(300);
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows, harness.WireRows());
}

TcpWsClientOptions BinaryClientOptions(double timeout_ms) {
  TcpWsClientOptions options;
  options.connect_timeout_ms = timeout_ms;
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  return options;
}

TEST(LiveCodecTest, AckTimeoutDoesNotLatchTheClientOntoSoap) {
  // Regression: a transient ack timeout during the Hello exchange (a
  // slow server under load) must surface as an ordinary connect failure
  // and leave the handshake armed — not silently downgrade every future
  // connection to SOAP against a binary-capable server.
  Result<net::Socket> listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  Result<int> port = net::LocalPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::thread peer([&] {
    // Connection 1: swallow the Hello and go mute (but keep the socket
    // open, so the client sees a deadline expiry, not a close).
    Result<net::Socket> c1 = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(c1.ok());
    Result<net::Frame> hello1 = net::ReadFrame(c1.value());
    EXPECT_TRUE(hello1.ok());
    // Connection 2: a healthy handshake.
    Result<net::Socket> c2 = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(c2.ok());
    Result<net::Frame> hello2 = net::ReadFrame(c2.value());
    ASSERT_TRUE(hello2.ok());
    EXPECT_EQ(hello2.value().type, net::FrameType::kHello);
    net::Frame ack;
    ack.type = net::FrameType::kHelloAck;
    ack.payload = "binary";
    EXPECT_TRUE(WriteFrame(c2.value(), ack).ok());
  });

  TcpWsClient client("127.0.0.1", port.value(), BinaryClientOptions(200.0));
  const Status first = client.Connect();
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);

  const Status second = client.Connect();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(client.wire_codec(), codec::CodecKind::kBinary);
  peer.join();
}

TEST(LiveCodecTest, LegacyCloseDowngradesThenReprobesAfterBackoff) {
  // A peer that closes cleanly on the unknown Hello frame is treated as
  // pre-codec: the client silently reconnects speaking SOAP and stops
  // probing — but only for a bounded number of reconnects, because a
  // server restarting mid-handshake looks exactly the same. The peer
  // here answers "binary" to any Hello it sees, so wire_codec() doubles
  // as the probe detector: it can only flip to kBinary on a connection
  // where the client actually sent a Hello.
  Result<net::Socket> listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  Result<int> port = net::LocalPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::thread peer([&] {
    // Connection 1: read the Hello, then slam the door (legacy peer).
    Result<net::Socket> c1 = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(c1.ok());
    EXPECT_TRUE(net::ReadFrame(c1.value()).ok());
    c1.value().Close();
    // Connections 2-4: the silent SOAP reconnect plus two suppressed
    // reconnects. No Hello may arrive — the read must fail with the
    // client's clean close, never yield a frame.
    for (int i = 0; i < 3; ++i) {
      Result<net::Socket> c = net::Accept(listener.value(), 5000.0);
      ASSERT_TRUE(c.ok());
      Result<net::Frame> frame = net::ReadFrame(c.value());
      EXPECT_FALSE(frame.ok()) << "unexpected frame on suppressed conn " << i;
    }
    // Connection 5: the re-probe. Answer it.
    Result<net::Socket> c5 = net::Accept(listener.value(), 5000.0);
    ASSERT_TRUE(c5.ok());
    Result<net::Frame> hello = net::ReadFrame(c5.value());
    ASSERT_TRUE(hello.ok());
    EXPECT_EQ(hello.value().type, net::FrameType::kHello);
    net::Frame ack;
    ack.type = net::FrameType::kHelloAck;
    ack.payload = "binary";
    EXPECT_TRUE(WriteFrame(c5.value(), ack).ok());
  });

  TcpWsClient client("127.0.0.1", port.value(), BinaryClientOptions(2000.0));
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.wire_codec(), codec::CodecKind::kSoap);  // downgraded

  // Two dropped connections inside the suppression window stay on SOAP
  // without a probe (the backoff is 3 reconnects)...
  for (int i = 0; i < 2; ++i) {
    client.Disconnect();
    ASSERT_TRUE(client.Connect().ok());
    EXPECT_EQ(client.wire_codec(), codec::CodecKind::kSoap);
  }
  // ...and the third reconnect re-offers the Hello and restores binary.
  client.Disconnect();
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.wire_codec(), codec::CodecKind::kBinary);
  peer.join();
}

TEST(LiveCodecTest, BinaryRestartRetryDeliversEveryTupleExactlyOnce) {
  // The sequenced-binary twin of LiveRetryTest's restart test. Under
  // SOAP a kill between dispatch and response write can cost one block
  // (the at-most-once residual). Binary requests carry a sequence
  // number, the server's replay cache makes the retried fetch
  // idempotent, and the reconnect handshake restores the codec — so the
  // restarted query must deliver *exactly* the full table, not "within
  // one block of it".
  net::WsqServerOptions options;  // service-time sim ON: paces the run
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(BinaryClientSetup(harness));
  FixedController controller(50);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace = Status::Internal("not run");
  std::thread runner(
      [&] { trace = live.RunQueryKeepingTuples(&controller, spec, &rows); });

  const auto gate_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().exchanges_served() < 5 &&
         std::chrono::steady_clock::now() < gate_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(harness.server().exchanges_served(), 5);
  harness.server().Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(harness.server().Start().ok());
  runner.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();
  EXPECT_GE(trace.value().total_retries, 1);

  // Exact delivery: every tuple, once, in order, bit-exact.
  EXPECT_EQ(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
  EXPECT_EQ(rows, harness.customer().rows());
}

}  // namespace
}  // namespace wsq
