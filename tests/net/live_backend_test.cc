#include "wsq/backend/live_backend.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/backend/empirical_backend.h"
#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/net/socket.h"
#include "wsq/netsim/presets.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/run_observer.h"
#include "wsq/obs/trace.h"
#include "wsq/relation/tpch_gen.h"

namespace wsq {
namespace {

/// The empirical (simulated-SOAP) backend over the *same* generated
/// table the live harness serves — the reference the live path must
/// agree with on everything deterministic.
EmpiricalBackend ReferenceBackend(double scale = 0.01, uint64_t seed = 7) {
  TpchGenOptions gen;
  gen.scale = scale;
  gen.seed = seed;
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.link.jitter_sigma = 0.0;
  setup.load.noise_sigma = 0.0;
  setup.seed = seed;
  return EmpiricalBackend(std::move(setup));
}

TEST(LiveBackendTest, ConformsToEmpiricalBackendOnAFixedController) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  EmpiricalBackend empirical = ReferenceBackend();

  FixedController live_controller(300);
  FixedController empirical_controller(300);
  std::vector<Tuple> live_rows;
  std::vector<Tuple> empirical_rows;
  Result<RunTrace> live_trace =
      live.RunQueryKeepingTuples(&live_controller, RunSpec{}, &live_rows);
  Result<RunTrace> empirical_trace = empirical.RunQueryKeepingTuples(
      &empirical_controller, RunSpec{}, &empirical_rows);
  ASSERT_TRUE(live_trace.ok()) << live_trace.status().ToString();
  ASSERT_TRUE(empirical_trace.ok()) << empirical_trace.status().ToString();

  // Both traces satisfy the cross-backend conformance contract.
  EXPECT_TRUE(live_trace.value().CheckConsistent().ok())
      << live_trace.value().CheckConsistent().ToString();
  EXPECT_TRUE(empirical_trace.value().CheckConsistent().ok());
  EXPECT_EQ(live_trace.value().backend_name, "live");

  // Deterministic structure agrees exactly: same tuples delivered in the
  // same block shapes. (Times differ by construction — one clock is
  // simulated, the other is the wall.)
  EXPECT_EQ(live_trace.value().total_tuples,
            empirical_trace.value().total_tuples);
  EXPECT_EQ(live_trace.value().total_blocks,
            empirical_trace.value().total_blocks);
  ASSERT_EQ(live_trace.value().steps.size(),
            empirical_trace.value().steps.size());
  for (size_t i = 0; i < live_trace.value().steps.size(); ++i) {
    EXPECT_EQ(live_trace.value().steps[i].requested_size,
              empirical_trace.value().steps[i].requested_size);
    EXPECT_EQ(live_trace.value().steps[i].received_tuples,
              empirical_trace.value().steps[i].received_tuples);
  }
  ASSERT_EQ(live_rows.size(), empirical_rows.size());
  for (size_t i = 0; i < live_rows.size(); ++i) {
    ASSERT_TRUE(live_rows[i] == empirical_rows[i]) << "row " << i;
  }
}

TEST(LiveBackendTest, AdaptiveControllerRunsOverLiveTcp) {
  // With the service-time simulation on, live response times carry the
  // paper's block-size dependence and an adaptive controller actually
  // adapts over the real socket.
  LiveServerHarness harness(net::WsqServerOptions{});
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  Result<std::unique_ptr<Controller>> controller =
      ControllerFactory::FromName("constant");
  ASSERT_TRUE(controller.ok());

  Result<RunTrace> trace = live.RunQuery(controller.value().get(), RunSpec{});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();
  EXPECT_EQ(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
  EXPECT_GT(trace.value().total_time_ms, 0.0);
  // Wall-clock per-block times are real: every completed block took
  // measurable time.
  for (const RunStep& step : trace.value().steps) {
    EXPECT_GT(step.block_time_ms, 0.0) << "step " << step.step;
  }
}

TEST(LiveBackendTest, CloneRunsIndependently) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  std::unique_ptr<QueryBackend> clone = live.Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->name(), "live");

  FixedController controller(250);
  Result<RunTrace> trace = clone->RunQuery(&controller, RunSpec{});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
}

TEST(LiveBackendTest, FeedsTheObservabilityLayerWithRealTransferTimes) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  MetricsRegistry metrics;
  Tracer tracer;
  RunObserver observer(&metrics, &tracer);

  LiveBackend live(harness.MakeSetup());
  FixedController controller(500);
  RunSpec spec;
  spec.observer = &observer;
  Result<RunTrace> trace = live.RunQuery(&controller, spec);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  // The network lane of the obs layer carried one sample per block.
  Histogram* transfer = metrics.GetHistogram("wsq.net.transfer_ms");
  ASSERT_NE(transfer, nullptr);
  EXPECT_EQ(transfer->count(), trace.value().total_blocks);
  EXPECT_GE(transfer->mean(), 0.0);
}

TEST(LiveBackendTest, RejectsNullController) {
  LiveBackend live(LiveSetup{});
  EXPECT_EQ(live.RunQuery(nullptr, RunSpec{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LiveBackendTest, RejectsProfileSchedules) {
  LiveBackend live(LiveSetup{});
  EXPECT_FALSE(live.SupportsSchedules());

  FixedController controller(100);
  RunSpec spec;
  spec.total_steps = 10;
  spec.steps_per_profile = 5;
  EXPECT_EQ(live.RunQuery(&controller, spec).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveBackendTest, RejectsClientSideFaultPlans) {
  // On the live path chaos belongs server-side (wsqd --fault-plan) where
  // a fault can actually tear down a TCP connection; a client-side plan
  // is a configuration error, caught before any connection is opened.
  LiveBackend live(LiveSetup{});
  FixedController controller(100);
  Result<FaultPlan> plan = FaultPlan::FromName("burst");
  ASSERT_TRUE(plan.ok());
  RunSpec spec;
  spec.fault_plan = &plan.value();
  EXPECT_EQ(live.RunQuery(&controller, spec).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveBackendTest, KeepingTuplesRequiresAnOutputSchema) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  LiveSetup setup = harness.MakeSetup();
  setup.output_schema = nullptr;
  LiveBackend live(std::move(setup));
  FixedController controller(100);
  std::vector<Tuple> rows;
  EXPECT_EQ(live.RunQueryKeepingTuples(&controller, RunSpec{}, &rows)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveBackendTest, UnreachableServerSurfacesUnavailable) {
  // A closed port: connect is refused, retries exhaust, the run fails
  // with a transient (not internal) status.
  LiveSetup setup;
  setup.query.table_name = "customer";
  setup.client_options.connect_timeout_ms = 300.0;
  {
    Result<net::Socket> listener = net::TcpListen(0);
    ASSERT_TRUE(listener.ok());
    Result<int> port = net::LocalPort(listener.value());
    ASSERT_TRUE(port.ok());
    setup.port = port.value();
    // listener closes here: the port is now known-dead.
  }
  LiveBackend live(std::move(setup));
  FixedController controller(100);
  Result<RunTrace> trace = live.RunQuery(&controller, RunSpec{});
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace wsq
