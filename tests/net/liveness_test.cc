// Liveness heartbeats, half-open eviction, session TTL, and graceful
// drain — the server-side endgame states PR "transport chaos" hardens:
// a connection must never be half-open forever, a session must never
// leak forever, and a SIGTERM must never cost a client its query.

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/client/tcp_ws_client.h"
#include "wsq/codec/codec.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/net/frame.h"
#include "wsq/net/socket.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

Result<net::Frame> Exchange(net::Socket& conn, const std::string& payload) {
  net::Frame frame;
  frame.type = net::FrameType::kRequest;
  frame.payload = payload;
  Status written = net::WriteFrame(conn, frame);
  if (!written.ok()) return written;
  return net::ReadFrame(conn);
}

std::string OpenCustomerSession() {
  OpenSessionRequest open;
  open.table = "customer";
  return EncodeOpenSession(open);
}

/// Runs a raw Hello advertising `tokens` and swallows the ack.
Status Handshake(net::Socket& conn, const std::string& tokens) {
  net::Frame hello;
  hello.type = net::FrameType::kHello;
  hello.payload = tokens;
  WSQ_RETURN_IF_ERROR(net::WriteFrame(conn, hello));
  Result<net::Frame> ack = net::ReadFrame(conn);
  if (!ack.ok()) return ack.status();
  if (ack.value().type != net::FrameType::kHelloAck) {
    return Status::Internal("expected a HelloAck");
  }
  return Status::Ok();
}

net::WsqServerOptions IdleTimeoutOptions(double idle_timeout_ms) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.idle_timeout_ms = idle_timeout_ms;
  return options;
}

// ---------------------------------------------------------------------------
// Heartbeats.
// ---------------------------------------------------------------------------

TEST(LivenessTest, ClientPingRoundTripsAndRequiresNegotiation) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  TcpWsClientOptions with_live;
  with_live.enable_liveness = true;
  TcpWsClient live_client("127.0.0.1", harness.port(), with_live);
  ASSERT_TRUE(live_client.Connect().ok());
  EXPECT_TRUE(live_client.LivenessNegotiated());
  EXPECT_TRUE(live_client.Ping(1000.0).ok());

  // Without the "live" token the probe is a contract violation, not a
  // wire exchange — the connection stays usable.
  TcpWsClient plain_client("127.0.0.1", harness.port());
  ASSERT_TRUE(plain_client.Connect().ok());
  EXPECT_FALSE(plain_client.LivenessNegotiated());
  const Status refused = plain_client.Ping(1000.0);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(plain_client.connected());
}

TEST(LivenessTest, AnsweredHeartbeatsKeepAnIdleLiveConnectionAlive) {
  // Idle budget 400ms. A raw "live" peer that answers every kPing stays
  // admitted across several multiples of the budget — liveness, not
  // traffic, is what the server meters.
  LiveServerHarness harness(IdleTimeoutOptions(400.0));
  ASSERT_TRUE(harness.start_status().ok());

  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(conn.ok());
  conn.value().set_io_timeout_ms(2000.0);
  ASSERT_TRUE(Handshake(conn.value(), "soap,live").ok());

  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1300);
  while (std::chrono::steady_clock::now() < until) {
    conn.value().set_io_timeout_ms(60.0);
    Result<net::Frame> frame = net::ReadFrame(conn.value());
    if (frame.ok() && frame.value().type == net::FrameType::kPing) {
      net::Frame pong;
      pong.type = net::FrameType::kPong;
      ASSERT_TRUE(net::WriteFrame(conn.value(), pong).ok());
    }
  }

  EXPECT_GE(harness.server().pings_sent(), 2);
  EXPECT_EQ(harness.server().idle_evicted(), 0);
  // Still a first-class connection: a real exchange works.
  conn.value().set_io_timeout_ms(3000.0);
  Result<net::Frame> served = Exchange(conn.value(), OpenCustomerSession());
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served.value().type, net::FrameType::kResponse);
}

TEST(LivenessTest, UnansweredPingEvictsAHalfOpenLivePeer) {
  // A "live" peer that goes mute is probed at half the budget and
  // evicted at the full budget — the half-open connection cannot pin a
  // slot forever.
  LiveServerHarness harness(IdleTimeoutOptions(300.0));
  ASSERT_TRUE(harness.start_status().ok());

  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(conn.ok());
  conn.value().set_io_timeout_ms(2000.0);
  ASSERT_TRUE(Handshake(conn.value(), "soap,live").ok());

  ASSERT_TRUE(WaitFor([&] { return harness.server().idle_evicted() >= 1; }));
  EXPECT_GE(harness.server().pings_sent(), 1);
  ASSERT_TRUE(WaitFor([&] { return harness.server().live_connections() == 0; }));
}

TEST(LivenessTest, LegacyIdleConnectionIsEvictedWithoutAPing) {
  // A pre-liveness peer cannot be probed (a kPing would be protocol
  // garbage to it), so the idle budget alone evicts it.
  LiveServerHarness harness(IdleTimeoutOptions(300.0));
  ASSERT_TRUE(harness.start_status().ok());

  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WaitFor([&] { return harness.server().live_connections() == 1; }));

  ASSERT_TRUE(WaitFor([&] { return harness.server().idle_evicted() >= 1; }));
  EXPECT_EQ(harness.server().pings_sent(), 0);
}

TEST(LivenessTest, EvictionSurfacesRetryablyAndTheClientReconnects) {
  // The client side of eviction: a TcpWsClient idle between calls gets
  // evicted (it does not read its socket while idle, so it cannot
  // pong). The eviction surfaces as at most one retryable kUnavailable
  // — exactly what the resilience policy absorbs — and the following
  // Call runs on a fresh connection.
  LiveServerHarness harness(IdleTimeoutOptions(250.0));
  ASSERT_TRUE(harness.start_status().ok());

  TcpWsClientOptions options;
  options.enable_liveness = true;
  TcpWsClient client("127.0.0.1", harness.port(), options);
  Result<CallResult> first = client.Call(OpenCustomerSession());
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  ASSERT_TRUE(WaitFor([&] { return harness.server().idle_evicted() >= 1; }));

  Result<CallResult> second = client.Call(OpenCustomerSession());
  if (!second.ok()) {
    // The dead socket was only discoverable mid-exchange (the buffered
    // ping masks the FIN from the pre-call peek): retryable, never
    // terminal.
    EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
    second = client.Call(OpenCustomerSession());
  }
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GE(client.reconnects(), 1);
}

// ---------------------------------------------------------------------------
// Session TTL.
// ---------------------------------------------------------------------------

TEST(LivenessTest, SessionTtlEvictsAbandonedSessions) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.session_ttl_ms = 200.0;
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  // Open a session and abandon it (keep the connection alive so the
  // eviction is unambiguously the TTL, not connection teardown).
  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(conn.ok());
  conn.value().set_io_timeout_ms(3000.0);
  Result<net::Frame> opened = Exchange(conn.value(), OpenCustomerSession());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Result<XmlNode> envelope = ParseEnvelope(opened.value().payload);
  ASSERT_TRUE(envelope.ok());
  Result<OpenSessionResponse> session =
      DecodeOpenSessionResponse(envelope.value());
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(
      WaitFor([&] { return harness.server().evicted_sessions() >= 1; }));

  // The evicted session is really gone: fetching against it is a
  // terminal SOAP fault (unknown session), not a hang or a crash.
  RequestBlockRequest block;
  block.session_id = session.value().session_id;
  block.block_size = 10;
  Result<net::Frame> after = Exchange(conn.value(), EncodeRequestBlock(block));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after.value().flags & net::kFrameFlagSoapFault, 0);
  EXPECT_EQ(after.value().flags & net::kFrameFlagTransientFault, 0);
}

TEST(LivenessTest, ActiveSessionsSurviveTheTtl) {
  // A session that keeps fetching keeps its lease: the TTL meters idle
  // time, not age. With the service-time simulation pacing the run past
  // several TTLs, every fetch still lands inside its lease and the
  // whole table arrives.
  net::WsqServerOptions options;  // service-time sim ON
  options.session_ttl_ms = 500.0;
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  LiveBackend live(harness.MakeSetup());
  FixedController controller(100);
  std::vector<Tuple> rows;
  RunSpec spec;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, spec, &rows);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows.size(), harness.WireRows().size());
  EXPECT_EQ(harness.server().evicted_sessions(), 0);
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

TEST(DrainTest, DrainOfAQuietServerIsImmediateAndClean) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(harness.server().Drain(5.0));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed_ms, 2000.0);
  EXPECT_FALSE(harness.server().draining());

  // Drain ends in Stop; the server restarts cleanly afterwards.
  ASSERT_TRUE(harness.server().Start().ok());
  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", harness.server().port(), 2000.0);
  EXPECT_TRUE(conn.ok());
}

TEST(DrainTest, BeginDrainGoawaysIdleLivePeersAndClosesTheDoor) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());
  const int port = harness.port();

  Result<net::Socket> conn = net::TcpConnect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(conn.ok());
  conn.value().set_io_timeout_ms(3000.0);
  ASSERT_TRUE(Handshake(conn.value(), "soap,live").ok());
  ASSERT_TRUE(WaitFor([&] { return harness.server().live_connections() == 1; }));

  harness.server().BeginDrain();
  EXPECT_TRUE(harness.server().draining());

  // The idle live peer gets an explicit kGoaway, then a clean close.
  Result<net::Frame> notice = net::ReadFrame(conn.value());
  ASSERT_TRUE(notice.ok()) << notice.status().ToString();
  EXPECT_EQ(notice.value().type, net::FrameType::kGoaway);
  EXPECT_GE(harness.server().goaways_sent(), 1);
  Result<net::Frame> after = net::ReadFrame(conn.value());
  EXPECT_FALSE(after.ok());

  // And the listener is gone: a draining server takes no new traffic.
  ASSERT_TRUE(WaitFor([&] {
    Result<net::Socket> probe = net::TcpConnect("127.0.0.1", port, 200.0);
    return !probe.ok();
  }));
}

TEST(DrainTest, DrainedRestartPreservesExactlyOnceDelivery) {
  // The acceptance scenario: SIGTERM's code path (Drain) fires in the
  // middle of a binary query, the server finishes the in-flight
  // exchange, sheds the rest as retryable backpressure, stops, and
  // restarts. The chaos-policy client rides the goaway/refused window
  // out and the replay cache keeps delivery exactly-once — a graceful
  // restart costs time, never tuples.
  net::WsqServerOptions options;  // service-time sim ON: paces the run
  options.codec = codec::CodecChoice{codec::CodecKind::kBinary, false};
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  LiveSetup setup = harness.MakeSetup();
  setup.client_options.codec = codec::CodecChoice{codec::CodecKind::kBinary,
                                                  false};
  setup.client_options.enable_crc = true;
  setup.client_options.enable_liveness = true;
  LiveBackend live(setup);
  FixedController controller(50);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace = Status::Internal("not run");
  std::thread runner(
      [&] { trace = live.RunQueryKeepingTuples(&controller, spec, &rows); });

  const auto gate_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().exchanges_served() < 5 &&
         std::chrono::steady_clock::now() < gate_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(harness.server().exchanges_served(), 5);

  EXPECT_TRUE(harness.server().Drain(5.0)) << "drain did not finish cleanly";
  ASSERT_TRUE(harness.server().Start().ok());
  runner.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace.value().CheckConsistent().ok())
      << trace.value().CheckConsistent().ToString();
  EXPECT_GE(trace.value().total_retries, 1);
  EXPECT_EQ(trace.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
  EXPECT_EQ(rows, harness.customer().rows());
}

TEST(DrainTest, SequencedSoapSurvivesADrainedRestartExactlyOnce) {
  // The SOAP twin: with a completed handshake the SOAP form now carries
  // blockSeq, so the replay cache protects legacy-codec clients through
  // the drained restart too — the residual "one lost block" of the
  // unsequenced form is gone.
  net::WsqServerOptions options;  // service-time sim ON
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  LiveSetup setup = harness.MakeSetup();
  setup.client_options.enable_crc = true;  // forces the handshake on SOAP
  setup.client_options.enable_liveness = true;
  LiveBackend live(setup);
  FixedController controller(50);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;

  std::vector<Tuple> rows;
  Result<RunTrace> trace = Status::Internal("not run");
  std::thread runner(
      [&] { trace = live.RunQueryKeepingTuples(&controller, spec, &rows); });

  const auto gate_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().exchanges_served() < 5 &&
         std::chrono::steady_clock::now() < gate_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(harness.server().exchanges_served(), 5);

  EXPECT_TRUE(harness.server().Drain(5.0)) << "drain did not finish cleanly";
  ASSERT_TRUE(harness.server().Start().ok());
  runner.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_GE(trace.value().total_retries, 1);
  const std::vector<Tuple> expected = harness.WireRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(rows[i] == expected[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace wsq
