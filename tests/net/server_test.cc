#include "wsq/net/server.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/client/block_fetcher.h"
#include "wsq/client/tcp_ws_client.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/net/frame.h"
#include "wsq/net/socket.h"

namespace wsq {
namespace {

TEST(WsqServerTest, StartPinsAnEphemeralPortAndIsIdempotent) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok())
      << harness.start_status().ToString();
  const int port = harness.port();
  EXPECT_GT(port, 0);
  EXPECT_TRUE(harness.server().running());

  // Start while running is a no-op and the port does not move.
  EXPECT_TRUE(harness.server().Start().ok());
  EXPECT_EQ(harness.port(), port);
}

TEST(WsqServerTest, StopIsIdempotentAndRestartReusesThePort) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());
  const int port = harness.port();

  harness.server().Stop();
  EXPECT_FALSE(harness.server().running());
  harness.server().Stop();  // second Stop is a no-op

  // A stopped server refuses connections...
  Result<net::Socket> refused = net::TcpConnect("127.0.0.1", port, 500.0);
  EXPECT_FALSE(refused.ok());

  // ...and a restart comes back on the very same port.
  ASSERT_TRUE(harness.server().Start().ok());
  EXPECT_EQ(harness.port(), port);
  Result<net::Socket> accepted = net::TcpConnect("127.0.0.1", port, 2000.0);
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
}

TEST(WsqServerTest, ServesAFullPullLoopOverLoopback) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  TcpWsClient client("127.0.0.1", harness.port());
  FixedController controller(400);
  BlockFetcher fetcher(&client, &controller);
  ScanProjectQuery query;
  query.table_name = "customer";

  Result<FetchOutcome> outcome = fetcher.Run(query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
  EXPECT_EQ(outcome.value().retries, 0);
  EXPECT_GT(outcome.value().total_time_ms, 0.0);
  EXPECT_GT(harness.server().exchanges_served(), 0);
}

TEST(WsqServerTest, GarbageSpeakerIsDisconnectedWithoutHarmingOthers) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  // A peer that does not speak the protocol gets its connection closed
  // at the first header.
  Result<net::Socket> garbage =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(garbage.ok());
  std::string junk(64, 'x');
  ASSERT_TRUE(net::WriteAll(garbage.value(), junk.data(), junk.size()).ok());
  garbage.value().set_io_timeout_ms(3000.0);
  char probe;
  Result<size_t> n = garbage.value().ReadSome(&probe, 1);
  // The server hung up on us: a clean FIN, or an RST if our unread junk
  // was still in its receive buffer at close — both count.
  EXPECT_TRUE((n.ok() && n.value() == 0u) ||
              (!n.ok() && n.status().code() == StatusCode::kUnavailable))
      << n.status().ToString();

  // The server is still healthy for well-behaved clients.
  TcpWsClient client("127.0.0.1", harness.port());
  FixedController controller(500);
  BlockFetcher fetcher(&client, &controller);
  ScanProjectQuery query;
  query.table_name = "customer";
  Result<FetchOutcome> outcome = fetcher.Run(query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().total_tuples,
            static_cast<int64_t>(harness.customer().num_rows()));
}

TEST(WsqServerTest, ConcurrentClientsGetDisjointSessionsAndFullResults) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  // Four clients pull the full table concurrently with different block
  // sizes. Sessions must not leak into each other: every client gets
  // every row, in order, exactly once.
  const std::vector<int64_t> sizes = {150, 300, 450, 700};
  std::vector<Result<FetchOutcome>> outcomes(
      sizes.size(), Result<FetchOutcome>(Status::Internal("not run")));
  std::vector<std::vector<Tuple>> rows(sizes.size());
  const TupleSerializer serializer(CustomerSchema());

  std::vector<std::thread> threads;
  for (size_t i = 0; i < sizes.size(); ++i) {
    threads.emplace_back([&, i] {
      TcpWsClient client("127.0.0.1", harness.port());
      FixedController controller(sizes[i]);
      BlockFetcher fetcher(&client, &controller);
      ScanProjectQuery query;
      query.table_name = "customer";
      outcomes[i] = fetcher.Run(query, &serializer, &rows[i]);
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<Tuple> expected = harness.WireRows();
  for (size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].status().ToString();
    EXPECT_EQ(outcomes[i].value().total_tuples,
              static_cast<int64_t>(harness.customer().num_rows()));
    ASSERT_EQ(rows[i].size(), expected.size());
    // Spot-check identity at the block-size boundaries of this client.
    EXPECT_TRUE(rows[i].front() == expected.front());
    EXPECT_TRUE(rows[i].back() == expected.back());
    EXPECT_TRUE(rows[i][static_cast<size_t>(sizes[i])] ==
                expected[static_cast<size_t>(sizes[i])]);
  }
  EXPECT_GE(harness.server().connections_accepted(), 4);
}

TEST(WsqServerTest, StatsJsonCarriesSessionLatencyAndFairness) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  // Two sequential clients: two sessions with served blocks, so the
  // fairness rollup has a real population.
  for (int64_t size : {200, 600}) {
    TcpWsClient client("127.0.0.1", harness.port());
    FixedController controller(size);
    BlockFetcher fetcher(&client, &controller);
    ScanProjectQuery query;
    query.table_name = "customer";
    Result<FetchOutcome> outcome = fetcher.Run(query);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  const std::string json = harness.server().StatsJson();
  // Per-session block-latency rollup...
  EXPECT_NE(json.find("\"latency_ms\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // ...and the fleet-facing fairness section over active sessions.
  EXPECT_NE(json.find("\"fairness\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sessions\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_spread_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"jain_index\":"), std::string::npos);
}

TEST(WsqServerTest, SocketDeadlineExpiresAsUnavailable) {
  // A listener that accepts but never answers: the client's read must
  // time out within the io deadline instead of hanging.
  Result<net::Socket> listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  Result<int> port = net::LocalPort(listener.value());
  ASSERT_TRUE(port.ok());

  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", port.value(), 2000.0);
  ASSERT_TRUE(conn.ok());
  Result<net::Socket> accepted = net::Accept(listener.value(), 2000.0);
  ASSERT_TRUE(accepted.ok());

  conn.value().set_io_timeout_ms(80.0);
  char buf;
  Result<size_t> n = conn.value().ReadSome(&buf, 1);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(n.status().message().find("timed out"), std::string::npos);
}

TEST(WsqServerTest, StopWakesABlockedClientRead) {
  LiveServerHarness harness;
  ASSERT_TRUE(harness.start_status().ok());

  // A connected client blocked waiting for a frame must be released
  // when the server stops (connection shutdown), not hang forever.
  Result<net::Socket> conn =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(conn.ok());

  std::thread stopper([&] {
    // Give the read below a moment to block, then stop the server.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    harness.server().Stop();
  });
  conn.value().set_io_timeout_ms(5000.0);
  Result<net::Frame> frame = net::ReadFrame(conn.value());
  stopper.join();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace wsq
