#include "wsq/net/admission.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live_test_util.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/net/frame.h"
#include "wsq/net/socket.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

// ---------------------------------------------------------------------------
// TokenBucket: refill timing is deterministic because the clock is an
// argument — no sleeps, no flakes.
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, DefaultConstructedAdmitsEverything) {
  net::TokenBucket bucket;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(/*now_micros=*/42));
  }
}

TEST(TokenBucketTest, BurstDrainsThenSteadyRateRefills) {
  // 2 tokens/second, burst of 3, starting full.
  net::TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/3.0);
  const int64_t t0 = 1'000'000;
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0)) << "burst exhausted";

  // At 2 tokens/second one token takes 500ms to come back: 1 microsecond
  // before the refill instant the acquire must still fail, at it (plus a
  // float-friendly microsecond) it must succeed — and only once.
  EXPECT_FALSE(bucket.TryAcquire(t0 + 499'999));
  EXPECT_TRUE(bucket.TryAcquire(t0 + 500'001));
  EXPECT_FALSE(bucket.TryAcquire(t0 + 500'001));
}

TEST(TokenBucketTest, RefillIsCappedAtBurst) {
  net::TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/2.0);
  const int64_t t0 = 5'000'000;
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0));
  // An hour of idle refills to the burst cap, not to rate * elapsed.
  const int64_t an_hour_later = t0 + 3'600'000'000ll;
  EXPECT_TRUE(bucket.TryAcquire(an_hour_later));
  EXPECT_TRUE(bucket.TryAcquire(an_hour_later));
  EXPECT_FALSE(bucket.TryAcquire(an_hour_later));
}

TEST(TokenBucketTest, BurstDefaultsToAtLeastOneToken) {
  // rate < 1/s with an unset burst must still admit the first acquire —
  // a bucket that can never hold a whole token admits nobody, ever.
  net::TokenBucket bucket(/*rate_per_sec=*/0.25, /*burst=*/0.0);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(4'000'001));  // 4s later: one token back
}

// ---------------------------------------------------------------------------
// Wire-level admission behavior.
// ---------------------------------------------------------------------------

/// Polls `pred` for up to `timeout_ms` — accept handling is asynchronous
/// (the event loop registers connections after TcpConnect returns), so
/// tests wait for the loop's view to catch up instead of sleeping blind.
bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// One framed request/response exchange over a raw socket.
Result<net::Frame> Exchange(net::Socket& conn, const std::string& payload) {
  net::Frame frame;
  frame.type = net::FrameType::kRequest;
  frame.payload = payload;
  Status written = net::WriteFrame(conn, frame);
  if (!written.ok()) return written;
  return net::ReadFrame(conn);
}

std::string OpenCustomerSession() {
  OpenSessionRequest open;
  open.table = "customer";
  return EncodeOpenSession(open);
}

bool IsRetryableFault(const net::Frame& frame) {
  return frame.type == net::FrameType::kResponse &&
         (frame.flags & net::kFrameFlagSoapFault) != 0 &&
         (frame.flags & net::kFrameFlagTransientFault) != 0;
}

TEST(AdmissionControlTest, MaxConnectionsRejectsOverflowWithRetryableFault) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.admission.max_connections = 2;
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  // Two idle connections fill the cap. TcpConnect returns at SYN-ACK
  // time (kernel backlog), so wait for the loop to actually admit them.
  Result<net::Socket> first =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  Result<net::Socket> second =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return harness.server().live_connections() == 2; }));

  // The third connection is accepted (so it can be *told* no) but
  // marked rejecting; its first request is answered with the same
  // transient-fault frame chaos injection uses — client-side that is a
  // retryable kUnavailable, not an error — and then the server hangs up.
  Result<net::Socket> third =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(third.ok());
  third.value().set_io_timeout_ms(3000.0);
  Result<net::Frame> response =
      Exchange(third.value(), OpenCustomerSession());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(IsRetryableFault(response.value()));
  EXPECT_EQ(harness.server().connections_rejected(), 1);

  Result<net::Frame> after_close = net::ReadFrame(third.value());
  ASSERT_FALSE(after_close.ok());
  EXPECT_EQ(after_close.status().code(), StatusCode::kUnavailable);

  // Admitted connections still work: the cap rejected, it did not harm.
  first.value().set_io_timeout_ms(3000.0);
  Result<net::Frame> served =
      Exchange(first.value(), OpenCustomerSession());
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_FALSE(IsRetryableFault(served.value()));
}

TEST(AdmissionControlTest, HelloIsStillAnsweredOnARejectingConnection) {
  // A fault frame in answer to Hello would be indistinguishable from a
  // pre-codec server (the client's legacy-downgrade heuristic), so a
  // rejecting connection must complete the handshake normally and only
  // fault the first *request*.
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.admission.max_connections = 1;
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  Result<net::Socket> holder =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return harness.server().live_connections() == 1; }));

  Result<net::Socket> rejected =
      net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
  ASSERT_TRUE(rejected.ok());
  rejected.value().set_io_timeout_ms(3000.0);

  net::Frame hello;
  hello.type = net::FrameType::kHello;
  hello.payload = "binary,soap";
  ASSERT_TRUE(net::WriteFrame(rejected.value(), hello).ok());
  Result<net::Frame> ack = net::ReadFrame(rejected.value());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().type, net::FrameType::kHelloAck);

  Result<net::Frame> faulted =
      Exchange(rejected.value(), OpenCustomerSession());
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_TRUE(IsRetryableFault(faulted.value()));
}

TEST(AdmissionControlTest, RateLimitRejectsBeyondTheBurst) {
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  // 2-connection burst and a refill so slow (1 token per ~17 minutes)
  // that no token comes back within the test.
  options.admission.rate_limit_per_sec = 0.001;
  options.admission.rate_limit_burst = 2.0;
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  std::vector<net::Socket> conns;
  for (int i = 0; i < 3; ++i) {
    Result<net::Socket> conn =
        net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
    ASSERT_TRUE(conn.ok());
    conn.value().set_io_timeout_ms(3000.0);
    conns.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(
      WaitFor([&] { return harness.server().rate_limited() == 1; }));

  // Exactly one of the three (whichever the loop admitted third) was
  // rejected; the others exchange normally.
  int faulted = 0;
  int served = 0;
  for (net::Socket& conn : conns) {
    Result<net::Frame> response = Exchange(conn, OpenCustomerSession());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (IsRetryableFault(response.value())) {
      ++faulted;
    } else {
      ++served;
    }
  }
  EXPECT_EQ(faulted, 1);
  EXPECT_EQ(served, 2);
  EXPECT_EQ(harness.server().rate_limited(), 1);
  EXPECT_EQ(harness.server().connections_rejected(), 0);
}

TEST(AdmissionControlTest, ShedUnderWatermarkIsRetryableBackpressure) {
  // A scripted 400ms server stall occupies one dispatch slot; with a
  // shed watermark of 1, every request arriving during the stall is
  // answered with the retryable backpressure fault instead of queueing.
  // A chaos-policy client must ride the sheds out with retries and
  // still deliver the full result — shedding is backpressure, not an
  // error.
  net::WsqServerOptions options = LiveServerHarness::QuickOptions();
  options.admission.shed_queue_watermark = 1;
  FaultSpec stall;
  stall.kind = FaultKind::kServerStall;
  stall.first_block = 0;
  stall.last_block = 0;
  stall.stall_ms = 400.0;
  options.fault_plan.specs.push_back(stall);
  LiveServerHarness harness(options);
  ASSERT_TRUE(harness.start_status().ok());

  std::atomic<bool> stall_requested{false};
  std::thread staller([&] {
    Result<net::Socket> conn =
        net::TcpConnect("127.0.0.1", harness.port(), 2000.0);
    ASSERT_TRUE(conn.ok());
    conn.value().set_io_timeout_ms(5000.0);
    Result<net::Frame> opened =
        Exchange(conn.value(), OpenCustomerSession());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Result<XmlNode> envelope = ParseEnvelope(opened.value().payload);
    ASSERT_TRUE(envelope.ok());
    Result<OpenSessionResponse> session =
        DecodeOpenSessionResponse(envelope.value());
    ASSERT_TRUE(session.ok());

    RequestBlockRequest block;
    block.session_id = session.value().session_id;
    block.block_size = 100;
    block.sequence = 0;
    stall_requested.store(true);
    // This dispatch sits in the injected stall for 400ms; the response
    // still arrives afterwards (the stall is a slowdown, not a fault).
    Result<net::Frame> response =
        Exchange(conn.value(), EncodeRequestBlock(block));
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  });

  ASSERT_TRUE(WaitFor([&] { return stall_requested.load(); }));
  // Give the loop a beat to hand the stalled request to a worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  LiveBackend live(harness.MakeSetup());
  FixedController controller(500);
  ResilienceConfig chaos = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.resilience = &chaos;
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      live.RunQueryKeepingTuples(&controller, spec, &rows);
  staller.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(rows.size(), harness.WireRows().size());
  EXPECT_GT(harness.server().sheds(), 0);
}

}  // namespace
}  // namespace wsq
