#include "wsq/relation/schema.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"balance", ColumnType::kDouble}});
}

TEST(SchemaTest, ColumnAccess) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column(0).name, "id");
  EXPECT_EQ(s.column(2).type, ColumnType::kDouble);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndex("name").value(), 1u);
  EXPECT_EQ(s.ColumnIndex("missing").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Projection) {
  Schema s = TestSchema();
  Result<Schema> p = s.Project({2, 0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().num_columns(), 2u);
  EXPECT_EQ(p.value().column(0).name, "balance");
  EXPECT_EQ(p.value().column(1).name, "id");
}

TEST(SchemaTest, ProjectionOutOfRange) {
  EXPECT_EQ(TestSchema().Project({5}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SchemaTest, Equals) {
  EXPECT_TRUE(TestSchema().Equals(TestSchema()));
  Schema other({{"id", ColumnType::kInt64}});
  EXPECT_FALSE(TestSchema().Equals(other));
  Schema renamed({{"idx", ColumnType::kInt64},
                  {"name", ColumnType::kString},
                  {"balance", ColumnType::kDouble}});
  EXPECT_FALSE(TestSchema().Equals(renamed));
  Schema retyped({{"id", ColumnType::kString},
                  {"name", ColumnType::kString},
                  {"balance", ColumnType::kDouble}});
  EXPECT_FALSE(TestSchema().Equals(retyped));
}

TEST(SchemaTest, ToStringListsColumns) {
  const std::string s = TestSchema().ToString();
  EXPECT_NE(s.find("id:int64"), std::string::npos);
  EXPECT_NE(s.find("balance:double"), std::string::npos);
}

TEST(ValueTest, TypeOfDetectsAlternatives) {
  EXPECT_EQ(TypeOf(Value(int64_t{1})), ColumnType::kInt64);
  EXPECT_EQ(TypeOf(Value(1.5)), ColumnType::kDouble);
  EXPECT_EQ(TypeOf(Value(std::string("x"))), ColumnType::kString);
}

TEST(ValueTest, ValueToStringFormats) {
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(3.14159)), "3.14");
  EXPECT_EQ(ValueToString(Value(std::string("abc"))), "abc");
}

TEST(ValueTest, ColumnTypeNames) {
  EXPECT_EQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_EQ(ColumnTypeName(ColumnType::kDouble), "double");
  EXPECT_EQ(ColumnTypeName(ColumnType::kString), "string");
}

}  // namespace
}  // namespace wsq
