#include "wsq/relation/tpch_gen.h"

#include <set>

#include <gtest/gtest.h>

namespace wsq {
namespace {

TpchGenOptions SmallScale() {
  TpchGenOptions options;
  options.scale = 0.01;  // 1500 customers, 4500 orders
  options.seed = 3;
  return options;
}

TEST(TpchGenTest, CustomerCardinalityScales) {
  auto table = GenerateCustomer(SmallScale());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), 1500u);
  EXPECT_TRUE(table.value()->schema().Equals(CustomerSchema()));
  EXPECT_EQ(table.value()->name(), "customer");
}

TEST(TpchGenTest, OrdersCardinalityIsTripleCustomer) {
  auto table = GenerateOrders(SmallScale());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), 4500u);
  EXPECT_TRUE(table.value()->schema().Equals(OrdersSchema()));
}

TEST(TpchGenTest, CustomerRowsConformAndHaveUniqueKeys) {
  auto table = GenerateCustomer(SmallScale());
  ASSERT_TRUE(table.ok());
  std::set<int64_t> keys;
  for (size_t i = 0; i < table.value()->num_rows(); ++i) {
    const Tuple& row = table.value()->row(i);
    ASSERT_TRUE(row.ConformsTo(CustomerSchema()).ok());
    keys.insert(std::get<int64_t>(row.value(0)));
  }
  EXPECT_EQ(keys.size(), table.value()->num_rows());
}

TEST(TpchGenTest, OrdersForeignKeysInRange) {
  auto orders = GenerateOrders(SmallScale());
  ASSERT_TRUE(orders.ok());
  for (size_t i = 0; i < orders.value()->num_rows(); i += 97) {
    const Tuple& row = orders.value()->row(i);
    ASSERT_TRUE(row.ConformsTo(OrdersSchema()).ok());
    const int64_t custkey = std::get<int64_t>(row.value(1));
    EXPECT_GE(custkey, 1);
    EXPECT_LE(custkey, 1500);
  }
}

TEST(TpchGenTest, DeterministicForSameSeed) {
  auto a = GenerateCustomer(SmallScale());
  auto b = GenerateCustomer(SmallScale());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value()->num_rows(), b.value()->num_rows());
  for (size_t i = 0; i < a.value()->num_rows(); i += 131) {
    EXPECT_EQ(a.value()->row(i), b.value()->row(i));
  }
}

TEST(TpchGenTest, DifferentSeedsDiffer) {
  TpchGenOptions other = SmallScale();
  other.seed = 99;
  auto a = GenerateCustomer(SmallScale());
  auto b = GenerateCustomer(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int differing = 0;
  for (size_t i = 0; i < a.value()->num_rows(); i += 131) {
    if (!(a.value()->row(i) == b.value()->row(i))) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(TpchGenTest, RealisticTupleWidth) {
  // Customer tuples should be in the ~100-250 byte range so simulated
  // network costs match the real workload's order of magnitude.
  auto table = GenerateCustomer(SmallScale());
  ASSERT_TRUE(table.ok());
  const double avg_bytes =
      static_cast<double>(table.value()->ApproxBytes()) /
      static_cast<double>(table.value()->num_rows());
  EXPECT_GT(avg_bytes, 80.0);
  EXPECT_LT(avg_bytes, 300.0);
}

TEST(TpchGenTest, InvalidScaleRejected) {
  TpchGenOptions bad;
  bad.scale = 0.0;
  EXPECT_EQ(GenerateCustomer(bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateOrders(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TpchGenTest, TinyScaleProducesAtLeastOneRow) {
  TpchGenOptions tiny;
  tiny.scale = 1e-9;
  auto table = GenerateCustomer(tiny);
  ASSERT_TRUE(table.ok());
  EXPECT_GE(table.value()->num_rows(), 1u);
}

}  // namespace
}  // namespace wsq
