#include "wsq/relation/query.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

std::unique_ptr<Table> MakeTable(int rows) {
  auto table = std::make_unique<Table>(
      "nums", Schema({{"id", ColumnType::kInt64},
                      {"label", ColumnType::kString}}));
  for (int i = 0; i < rows; ++i) {
    table->AppendUnchecked(Tuple(
        {Value(static_cast<int64_t>(i)), Value("row" + std::to_string(i))}));
  }
  return table;
}

TEST(QueryCursorTest, FullScanInBlocks) {
  auto table = MakeTable(10);
  ScanProjectQuery query;
  query.table_name = "nums";
  auto cursor = QueryCursor::Open(table.get(), query);
  ASSERT_TRUE(cursor.ok());

  auto block1 = cursor.value()->FetchBlock(4);
  ASSERT_TRUE(block1.ok());
  EXPECT_EQ(block1.value().size(), 4u);
  EXPECT_FALSE(cursor.value()->exhausted());

  auto block2 = cursor.value()->FetchBlock(4);
  ASSERT_TRUE(block2.ok());
  auto block3 = cursor.value()->FetchBlock(4);
  ASSERT_TRUE(block3.ok());
  EXPECT_EQ(block3.value().size(), 2u);
  EXPECT_TRUE(cursor.value()->exhausted());

  auto empty = cursor.value()->FetchBlock(4);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(QueryCursorTest, ProjectionByName) {
  auto table = MakeTable(3);
  ScanProjectQuery query;
  query.table_name = "nums";
  query.projected_columns = {"label"};
  auto cursor = QueryCursor::Open(table.get(), query);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor.value()->output_schema().num_columns(), 1u);
  EXPECT_EQ(cursor.value()->output_schema().column(0).name, "label");

  auto block = cursor.value()->FetchBlock(10);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block.value().size(), 3u);
  EXPECT_EQ(block.value()[0].num_values(), 1u);
  EXPECT_EQ(std::get<std::string>(block.value()[1].value(0)), "row1");
}

TEST(QueryCursorTest, UnknownColumnRejected) {
  auto table = MakeTable(1);
  ScanProjectQuery query;
  query.table_name = "nums";
  query.projected_columns = {"nope"};
  EXPECT_EQ(QueryCursor::Open(table.get(), query).status().code(),
            StatusCode::kNotFound);
}

TEST(QueryCursorTest, PredicateFiltersRows) {
  auto table = MakeTable(10);
  ScanProjectQuery query;
  query.table_name = "nums";
  query.predicate = [](const Tuple& t) {
    return std::get<int64_t>(t.value(0)) % 2 == 0;
  };
  auto cursor = QueryCursor::Open(table.get(), query);
  ASSERT_TRUE(cursor.ok());
  auto block = cursor.value()->FetchBlock(100);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().size(), 5u);
  EXPECT_EQ(cursor.value()->rows_scanned(), 10u);
  EXPECT_EQ(cursor.value()->rows_produced(), 5u);
}

TEST(QueryCursorTest, PredicateAppliesBeforeProjection) {
  auto table = MakeTable(4);
  ScanProjectQuery query;
  query.table_name = "nums";
  query.projected_columns = {"label"};
  // Predicate references column 0, which the projection drops.
  query.predicate = [](const Tuple& t) {
    return std::get<int64_t>(t.value(0)) >= 2;
  };
  auto cursor = QueryCursor::Open(table.get(), query);
  ASSERT_TRUE(cursor.ok());
  auto block = cursor.value()->FetchBlock(100);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block.value().size(), 2u);
  EXPECT_EQ(std::get<std::string>(block.value()[0].value(0)), "row2");
}

TEST(QueryCursorTest, InvalidInputs) {
  ScanProjectQuery query;
  query.table_name = "nums";
  EXPECT_EQ(QueryCursor::Open(nullptr, query).status().code(),
            StatusCode::kInvalidArgument);

  auto table = MakeTable(1);
  auto cursor = QueryCursor::Open(table.get(), query);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor.value()->FetchBlock(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cursor.value()->FetchBlock(-5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryCursorTest, EmptyTableImmediatelyExhausted) {
  auto table = MakeTable(0);
  ScanProjectQuery query;
  query.table_name = "nums";
  auto cursor = QueryCursor::Open(table.get(), query);
  ASSERT_TRUE(cursor.ok());
  EXPECT_TRUE(cursor.value()->exhausted());
  auto block = cursor.value()->FetchBlock(5);
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(block.value().empty());
}

}  // namespace
}  // namespace wsq
