#include <gtest/gtest.h>

#include "wsq/relation/table.h"
#include "wsq/relation/tuple.h"

namespace wsq {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"balance", ColumnType::kDouble}});
}

Tuple MakeRow(int64_t id, const std::string& name, double balance) {
  return Tuple({Value(id), Value(name), Value(balance)});
}

TEST(TupleTest, Conformance) {
  Schema s = TestSchema();
  EXPECT_TRUE(MakeRow(1, "a", 2.0).ConformsTo(s).ok());

  Tuple short_tuple({Value(int64_t{1})});
  EXPECT_EQ(short_tuple.ConformsTo(s).code(), StatusCode::kInvalidArgument);

  Tuple wrong_type({Value(1.5), Value(std::string("a")), Value(2.0)});
  EXPECT_EQ(wrong_type.ConformsTo(s).code(), StatusCode::kInvalidArgument);
}

TEST(TupleTest, Projection) {
  Tuple t = MakeRow(7, "bob", 10.5);
  Result<Tuple> p = t.Project({2, 0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().num_values(), 2u);
  EXPECT_EQ(std::get<double>(p.value().value(0)), 10.5);
  EXPECT_EQ(std::get<int64_t>(p.value().value(1)), 7);
  EXPECT_EQ(t.Project({9}).status().code(), StatusCode::kOutOfRange);
}

TEST(TupleTest, ApproxBytes) {
  Tuple t = MakeRow(1, "abcd", 2.0);
  // 8 (int) + 4 (string) + 8 (double)
  EXPECT_EQ(t.ApproxBytes(), 20u);
}

TEST(TupleTest, EqualityAndToString) {
  EXPECT_EQ(MakeRow(1, "a", 2.0), MakeRow(1, "a", 2.0));
  EXPECT_FALSE(MakeRow(1, "a", 2.0) == MakeRow(2, "a", 2.0));
  const std::string s = MakeRow(1, "a", 2.0).ToString();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
}

TEST(TableTest, AppendValidates) {
  Table table("t", TestSchema());
  EXPECT_TRUE(table.Append(MakeRow(1, "a", 2.0)).ok());
  EXPECT_EQ(table.Append(Tuple({Value(int64_t{1})})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, AppendUncheckedSkipsValidation) {
  Table table("t", TestSchema());
  table.AppendUnchecked(Tuple({Value(int64_t{1})}));  // nonconforming
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, RowAccessAndBytes) {
  Table table("t", TestSchema());
  ASSERT_TRUE(table.Append(MakeRow(1, "ab", 2.0)).ok());
  ASSERT_TRUE(table.Append(MakeRow(2, "cdef", 3.0)).ok());
  EXPECT_EQ(std::get<int64_t>(table.row(1).value(0)), 2);
  // (8+2+8) + (8+4+8)
  EXPECT_EQ(table.ApproxBytes(), 38u);
  EXPECT_EQ(table.name(), "t");
}

}  // namespace
}  // namespace wsq
