#include "wsq/relation/tuple_serializer.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"balance", ColumnType::kDouble}});
}

TEST(EscapeTest, RoundTripsSpecials) {
  const std::string raw = "a|b\\c\nd";
  const std::string escaped = EscapeField(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  Result<std::string> back = UnescapeField(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST(EscapeTest, DanglingEscapeRejected) {
  EXPECT_EQ(UnescapeField("abc\\").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupleSerializerTest, RoundTripSimple) {
  TupleSerializer ser(TestSchema());
  Tuple t({Value(int64_t{42}), Value(std::string("alice")), Value(10.25)});
  Result<std::string> line = ser.Serialize(t);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "42|alice|10.25");

  Result<Tuple> back = ser.Deserialize(line.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<int64_t>(back.value().value(0)), 42);
  EXPECT_EQ(std::get<std::string>(back.value().value(1)), "alice");
  EXPECT_DOUBLE_EQ(std::get<double>(back.value().value(2)), 10.25);
}

TEST(TupleSerializerTest, RoundTripSpecialCharacters) {
  TupleSerializer ser(TestSchema());
  Tuple t({Value(int64_t{1}), Value(std::string("pipe|back\\slash\nnl")),
           Value(0.5)});
  Result<std::string> line = ser.Serialize(t);
  ASSERT_TRUE(line.ok());
  Result<Tuple> back = ser.Deserialize(line.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<std::string>(back.value().value(1)),
            "pipe|back\\slash\nnl");
}

TEST(TupleSerializerTest, BlockRoundTrip) {
  TupleSerializer ser(TestSchema());
  std::vector<Tuple> block;
  for (int i = 0; i < 5; ++i) {
    block.push_back(Tuple({Value(static_cast<int64_t>(i)),
                           Value("name" + std::to_string(i)),
                           Value(i * 1.5)}));
  }
  Result<std::string> data = ser.SerializeBlock(block);
  ASSERT_TRUE(data.ok());
  Result<std::vector<Tuple>> back = ser.DeserializeBlock(data.value());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<int64_t>(back.value()[i].value(0)), i);
    EXPECT_EQ(std::get<std::string>(back.value()[i].value(1)),
              "name" + std::to_string(i));
  }
}

TEST(TupleSerializerTest, EmptyBlock) {
  TupleSerializer ser(TestSchema());
  Result<std::string> data = ser.SerializeBlock({});
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().empty());
  Result<std::vector<Tuple>> back = ser.DeserializeBlock("");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(TupleSerializerTest, NonConformingTupleRejected) {
  TupleSerializer ser(TestSchema());
  Tuple bad({Value(int64_t{1})});
  EXPECT_EQ(ser.Serialize(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupleSerializerTest, MalformedLinesRejected) {
  TupleSerializer ser(TestSchema());
  EXPECT_EQ(ser.Deserialize("1|only_two").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ser.Deserialize("abc|x|1.0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ser.Deserialize("1|x|notnum").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ser.Deserialize("1|x|1.0\\").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupleSerializerTest, DoublePrecisionIsTwoDigits) {
  // Doubles travel in money format (2 fraction digits); values round.
  TupleSerializer ser(TestSchema());
  Tuple t({Value(int64_t{1}), Value(std::string("x")), Value(1.239)});
  Result<Tuple> back = ser.Deserialize(ser.Serialize(t).value());
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(back.value().value(2)), 1.24);
}

}  // namespace
}  // namespace wsq
