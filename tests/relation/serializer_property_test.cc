// Property tests: random tuples over random schemas must round-trip
// through the wire format, and random TPC-H blocks must survive the
// whole payload path (serialize -> SOAP envelope -> parse -> deserialize).

#include <gtest/gtest.h>

#include "wsq/common/random.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

Schema RandomSchema(Random& rng) {
  std::vector<Column> columns;
  const int64_t n = rng.UniformInt(1, 6);
  for (int64_t i = 0; i < n; ++i) {
    const ColumnType type = static_cast<ColumnType>(rng.UniformInt(0, 2));
    columns.push_back({"c" + std::to_string(i), type});
  }
  return Schema(std::move(columns));
}

std::string RandomString(Random& rng) {
  // Deliberately hostile: field separators, escapes, newlines, XML
  // specials, spaces.
  static constexpr std::string_view kChars =
      "abcXYZ019|\\\n<>&\"' .,;:!";
  std::string s;
  const int64_t len = rng.UniformInt(0, 24);
  for (int64_t i = 0; i < len; ++i) {
    s += kChars[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kChars.size()) - 1))];
  }
  return s;
}

Tuple RandomTuple(Random& rng, const Schema& schema) {
  std::vector<Value> values;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    switch (schema.column(i).type) {
      case ColumnType::kInt64:
        values.emplace_back(rng.UniformInt(-1000000, 1000000));
        break;
      case ColumnType::kDouble:
        // Two-decimals values round-trip exactly through the money
        // format.
        values.emplace_back(
            static_cast<double>(rng.UniformInt(-99999, 99999)) / 100.0);
        break;
      case ColumnType::kString:
        values.emplace_back(RandomString(rng));
        break;
    }
  }
  return Tuple(std::move(values));
}

class SerializerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializerPropertyTest, RandomTuplesRoundTrip) {
  Random rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const Schema schema = RandomSchema(rng);
    TupleSerializer serializer(schema);
    std::vector<Tuple> block;
    const int64_t rows = rng.UniformInt(0, 8);
    for (int64_t i = 0; i < rows; ++i) {
      block.push_back(RandomTuple(rng, schema));
    }

    Result<std::string> payload = serializer.SerializeBlock(block);
    ASSERT_TRUE(payload.ok());
    Result<std::vector<Tuple>> back =
        serializer.DeserializeBlock(payload.value());
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\npayload:\n"
                           << payload.value();
    ASSERT_EQ(back.value().size(), block.size());
    for (size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(back.value()[i], block[i]) << "row " << i;
    }
  }
}

TEST_P(SerializerPropertyTest, FullSoapPayloadPathRoundTrips) {
  Random rng(GetParam() * 31 + 7);
  const Schema schema = RandomSchema(rng);
  TupleSerializer serializer(schema);
  std::vector<Tuple> block;
  for (int i = 0; i < 5; ++i) block.push_back(RandomTuple(rng, schema));

  BlockResponse response;
  response.session_id = 3;
  response.num_tuples = 5;
  response.payload = serializer.SerializeBlock(block).value();

  // Through the envelope: encode, parse, decode, deserialize.
  const std::string doc = EncodeBlockResponse(response);
  Result<XmlNode> payload_node = ParseEnvelope(doc);
  ASSERT_TRUE(payload_node.ok());
  Result<BlockResponse> decoded = DecodeBlockResponse(payload_node.value());
  ASSERT_TRUE(decoded.ok());
  Result<std::vector<Tuple>> back =
      serializer.DeserializeBlock(decoded.value().payload);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(back.value()[i], block[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerPropertyTest,
                         ::testing::Values(3, 9, 27, 81, 243, 729));

TEST(SerializerTpchTest, FullCustomerBlockSurvivesWirePath) {
  TpchGenOptions gen;
  gen.scale = 0.004;  // 600 rows
  auto table = GenerateCustomer(gen).value();
  TupleSerializer serializer(CustomerSchema());

  std::vector<Tuple> block(table->rows().begin(), table->rows().end());
  const std::string payload = serializer.SerializeBlock(block).value();
  const std::vector<Tuple> back =
      serializer.DeserializeBlock(payload).value();
  ASSERT_EQ(back.size(), block.size());
  for (size_t i = 0; i < block.size(); i += 37) {
    // Doubles are rounded to 2 decimals on the wire; compare fields.
    EXPECT_EQ(std::get<int64_t>(back[i].value(0)),
              std::get<int64_t>(block[i].value(0)));
    EXPECT_EQ(std::get<std::string>(back[i].value(1)),
              std::get<std::string>(block[i].value(1)));
    EXPECT_NEAR(std::get<double>(back[i].value(5)),
                std::get<double>(block[i].value(5)), 0.005);
  }
}

}  // namespace
}  // namespace wsq
