#include "wsq/relation/predicate.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"balance", ColumnType::kDouble},
                 {"segment", ColumnType::kString}});
}

Tuple Row(int64_t id, double balance, const std::string& segment) {
  return Tuple({Value(id), Value(balance), Value(segment)});
}

bool Matches(const std::string& expression, const Tuple& tuple) {
  Result<Predicate> predicate = CompilePredicate(TestSchema(), expression);
  EXPECT_TRUE(predicate.ok()) << predicate.status().ToString();
  return predicate.value()(tuple);
}

TEST(PredicateTest, IntegerComparisons) {
  EXPECT_TRUE(Matches("id = 5", Row(5, 0, "")));
  EXPECT_FALSE(Matches("id = 5", Row(6, 0, "")));
  EXPECT_TRUE(Matches("id != 5", Row(6, 0, "")));
  EXPECT_TRUE(Matches("id < 10", Row(9, 0, "")));
  EXPECT_FALSE(Matches("id < 10", Row(10, 0, "")));
  EXPECT_TRUE(Matches("id <= 10", Row(10, 0, "")));
  EXPECT_TRUE(Matches("id > -3", Row(0, 0, "")));
  EXPECT_TRUE(Matches("id >= 7", Row(7, 0, "")));
}

TEST(PredicateTest, DoubleComparisons) {
  EXPECT_TRUE(Matches("balance >= 99.5", Row(1, 99.5, "")));
  EXPECT_FALSE(Matches("balance > 99.5", Row(1, 99.5, "")));
  EXPECT_TRUE(Matches("balance < -10.25", Row(1, -11.0, "")));
}

TEST(PredicateTest, StringComparisons) {
  EXPECT_TRUE(Matches("segment = 'BUILDING'", Row(1, 0, "BUILDING")));
  EXPECT_FALSE(Matches("segment = 'BUILDING'", Row(1, 0, "AUTO")));
  EXPECT_TRUE(Matches("segment != 'BUILDING'", Row(1, 0, "AUTO")));
  EXPECT_TRUE(Matches("segment < 'B'", Row(1, 0, "AUTO")));
  EXPECT_TRUE(Matches("segment >= 'B'", Row(1, 0, "BUILDING")));
}

TEST(PredicateTest, QuoteEscapeInStringLiteral) {
  EXPECT_TRUE(Matches("segment = 'O''BRIEN'", Row(1, 0, "O'BRIEN")));
}

TEST(PredicateTest, BooleanConnectives) {
  const std::string expr = "id > 2 AND balance < 100";
  EXPECT_TRUE(Matches(expr, Row(3, 50, "")));
  EXPECT_FALSE(Matches(expr, Row(1, 50, "")));
  EXPECT_FALSE(Matches(expr, Row(3, 200, "")));

  EXPECT_TRUE(Matches("id = 1 OR id = 2", Row(2, 0, "")));
  EXPECT_FALSE(Matches("id = 1 OR id = 2", Row(3, 0, "")));

  EXPECT_TRUE(Matches("NOT id = 4", Row(5, 0, "")));
  EXPECT_FALSE(Matches("NOT NOT id = 4", Row(5, 0, "")));
}

TEST(PredicateTest, PrecedenceAndParentheses) {
  // AND binds tighter than OR.
  const std::string expr = "id = 1 OR id = 2 AND balance > 100";
  EXPECT_TRUE(Matches(expr, Row(1, 0, "")));
  EXPECT_TRUE(Matches(expr, Row(2, 200, "")));
  EXPECT_FALSE(Matches(expr, Row(2, 50, "")));

  const std::string grouped = "(id = 1 OR id = 2) AND balance > 100";
  EXPECT_FALSE(Matches(grouped, Row(1, 0, "")));
  EXPECT_TRUE(Matches(grouped, Row(1, 200, "")));
}

TEST(PredicateTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(Matches("id = 1 or id = 2", Row(2, 0, "")));
  EXPECT_TRUE(Matches("id > 0 and not id = 9", Row(3, 0, "")));
}

TEST(PredicateTest, KeywordPrefixesAreIdentifiers) {
  // A column legitimately named with an AND/OR/NOT prefix must not be
  // eaten by keyword matching.
  Schema schema({{"orders", ColumnType::kInt64},
                 {"android", ColumnType::kInt64}});
  Result<Predicate> predicate =
      CompilePredicate(schema, "orders > 1 AND android < 5");
  ASSERT_TRUE(predicate.ok()) << predicate.status().ToString();
  EXPECT_TRUE(predicate.value()(
      Tuple({Value(int64_t{2}), Value(int64_t{3})})));
}

TEST(PredicateTest, CompileErrors) {
  const Schema schema = TestSchema();
  EXPECT_FALSE(CompilePredicate(schema, "").ok());
  EXPECT_FALSE(CompilePredicate(schema, "ghost = 1").ok());
  EXPECT_FALSE(CompilePredicate(schema, "id ~ 1").ok());
  EXPECT_FALSE(CompilePredicate(schema, "id = ").ok());
  EXPECT_FALSE(CompilePredicate(schema, "id = 1 AND").ok());
  EXPECT_FALSE(CompilePredicate(schema, "(id = 1").ok());
  EXPECT_FALSE(CompilePredicate(schema, "id = 1 extra").ok());
  EXPECT_FALSE(CompilePredicate(schema, "segment = 'unterminated").ok());
  // Type mismatches are compile-time errors.
  EXPECT_FALSE(CompilePredicate(schema, "id = 'five'").ok());
  EXPECT_FALSE(CompilePredicate(schema, "segment = 5").ok());
}

TEST(PredicateTest, WorksThroughQueryCursor) {
  Table table("t", TestSchema());
  for (int i = 0; i < 10; ++i) {
    table.AppendUnchecked(
        Row(i, i * 100.0, i % 2 == 0 ? "EVEN" : "ODD"));
  }
  ScanProjectQuery query;
  query.table_name = "t";
  query.filter = "segment = 'EVEN' AND balance >= 400";
  auto cursor = QueryCursor::Open(&table, query);
  ASSERT_TRUE(cursor.ok());
  auto block = cursor.value()->FetchBlock(100);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block.value().size(), 3u);  // ids 4, 6, 8
  EXPECT_EQ(std::get<int64_t>(block.value()[0].value(0)), 4);
}

TEST(PredicateTest, FilterCombinesWithProgrammaticPredicate) {
  Table table("t", TestSchema());
  for (int i = 0; i < 10; ++i) {
    table.AppendUnchecked(Row(i, 0.0, ""));
  }
  ScanProjectQuery query;
  query.table_name = "t";
  query.filter = "id >= 3";
  query.predicate = [](const Tuple& t) {
    return std::get<int64_t>(t.value(0)) % 2 == 0;
  };
  auto cursor = QueryCursor::Open(&table, query);
  ASSERT_TRUE(cursor.ok());
  auto block = cursor.value()->FetchBlock(100);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().size(), 3u);  // ids 4, 6, 8 pass both
}

TEST(PredicateTest, BadFilterFailsCursorOpen) {
  Table table("t", TestSchema());
  ScanProjectQuery query;
  query.table_name = "t";
  query.filter = "nope = 1";
  EXPECT_FALSE(QueryCursor::Open(&table, query).ok());
}

}  // namespace
}  // namespace wsq
