#include "wsq/common/text_table.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(FormatDoubleTest, RendersFixedPrecision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.AddRow({"xxxxxxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string out = t.ToString();
  // Both "1" and "2" should appear at the same column offset.
  size_t line_start = 0;
  std::vector<size_t> offsets;
  while (line_start < out.size()) {
    size_t line_end = out.find('\n', line_start);
    if (line_end == std::string::npos) line_end = out.size();
    const std::string line = out.substr(line_start, line_end - line_start);
    const size_t pos1 = line.find(" 1");
    const size_t pos2 = line.find(" 2");
    if (pos1 != std::string::npos) offsets.push_back(pos1);
    if (pos2 != std::string::npos) offsets.push_back(pos2);
    line_start = line_end + 1;
  }
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0], offsets[1]);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  // Should not crash and should still render three columns worth of header.
  const std::string out = t.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatsValues) {
  TextTable t({"conf", "v1", "v2"});
  t.AddNumericRow("conf1.1", {1.39456, 0.98321}, 2);
  const std::string out = t.ToString();
  EXPECT_NE(out.find("1.39"), std::string::npos);
  EXPECT_NE(out.find("0.98"), std::string::npos);
}

TEST(TextTableTest, LongRowExtendsColumns) {
  TextTable t({"a"});
  t.AddRow({"1", "2", "3"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("3"), std::string::npos);
}

}  // namespace
}  // namespace wsq
