#include "wsq/common/clock.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(SimClockTest, StartsAtZeroByDefault) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(SimClockTest, StartsAtGivenEpoch) {
  SimClock clock(1234);
  EXPECT_EQ(clock.NowMicros(), 1234);
}

TEST(SimClockTest, AdvancesByMicros) {
  SimClock clock;
  clock.AdvanceMicros(500);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 750);
}

TEST(SimClockTest, NegativeAdvanceIgnored) {
  SimClock clock(100);
  clock.AdvanceMicros(-50);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMillis(-1.0);
  EXPECT_EQ(clock.NowMicros(), 100);
}

TEST(SimClockTest, AdvanceMillisRoundsToMicros) {
  SimClock clock;
  clock.AdvanceMillis(1.5);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.AdvanceMillis(0.0004);  // rounds to 0.4us -> 0
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.AdvanceMillis(0.0006);  // rounds to 1us
  EXPECT_EQ(clock.NowMicros(), 1501);
}

TEST(WallClockTest, MonotonicallyNonDecreasing) {
  WallClock clock;
  const int64_t a = clock.NowMicros();
  const int64_t b = clock.NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, PolymorphicUse) {
  SimClock sim(42);
  Clock* clock = &sim;
  EXPECT_EQ(clock->NowMicros(), 42);
}

}  // namespace
}  // namespace wsq
