#include "wsq/common/random.h"

#include <gtest/gtest.h>

#include "wsq/stats/running_stats.h"

namespace wsq {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next64() != b.Next64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RandomTest, UniformIntRespectsBoundsInclusive) {
  Random rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, GaussianMomentsRoughlyCorrect) {
  Random rng(99);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RandomTest, LognormalMultiplierMedianNearOne) {
  Random rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.LognormalMultiplier(0.3));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 1.0, 0.05);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  // Out-of-range probabilities are clamped rather than UB.
  EXPECT_TRUE(rng.Bernoulli(2.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
}

TEST(RandomTest, ForkProducesIndependentDeterministicStreams) {
  Random parent1(42);
  Random parent2(42);
  Random child1 = parent1.Fork();
  Random child2 = parent2.Fork();
  // Deterministic: same parent state -> same child.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.Next64(), child2.Next64());
  // Independent-ish: child differs from a fresh parent's stream.
  Random parent3(42);
  int differences = 0;
  Random child3 = parent3.Fork();
  Random fresh(42);
  for (int i = 0; i < 16; ++i) {
    if (child3.Next64() != fresh.Next64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

}  // namespace
}  // namespace wsq
