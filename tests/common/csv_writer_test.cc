#include "wsq/common/csv_writer.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(CsvWriterTest, BasicRows) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  csv.AddNumericRow({3.5, 4.25}, 2);
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3.50,4.25\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"field"});
  csv.AddRow({"a,b"});
  csv.AddRow({"say \"hi\""});
  csv.AddRow({"line\nbreak"});
  const std::string out = csv.ToString();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(CsvWriterTest, WriteToFileRoundTrips) {
  CsvWriter csv({"a"});
  csv.AddRow({"value"});
  const std::string path = ::testing::TempDir() + "/wsq_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a\nvalue\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter csv({"a"});
  Status s = csv.WriteToFile("/nonexistent_dir_wsq/x.csv");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace wsq
