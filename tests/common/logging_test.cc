#include "wsq/common/logging.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace wsq {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogLevel(LogLevel::kWarning);
    SetLogSink(nullptr);
  }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kOff);
  WSQ_LOG(kError) << "this must be swallowed " << 42;
  WSQ_LOG(kDebug) << "so must this";
}

TEST_F(LoggingTest, EmittedMessagesGoToStderr) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kWarning) << "visible " << 7;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("visible 7"), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(err.find("[W "), std::string::npos);
}

TEST_F(LoggingTest, PrefixCarriesMonotonicTimestamp) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kWarning) << "stamped";
  const std::string err = ::testing::internal::GetCapturedStderr();
  // "[W <seconds>s file:line] " — seconds is a non-negative decimal.
  ASSERT_NE(err.find("[W "), std::string::npos);
  const size_t start = err.find("[W ") + 3;
  const size_t unit = err.find("s ", start);
  ASSERT_NE(unit, std::string::npos);
  const double stamp = std::stod(err.substr(start, unit - start));
  EXPECT_GE(stamp, 0.0);
  EXPECT_LE(stamp, LogElapsedSeconds());
}

TEST_F(LoggingTest, SinkReplacesStderr) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kError) << "routed " << 3;
  WSQ_LOG(kDebug) << "still below threshold";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty());
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kError);
  EXPECT_NE(captured[0].second.find("routed 3"), std::string::npos);
  EXPECT_NE(captured[0].second.find("[E "), std::string::npos);

  // Null sink restores the stderr default.
  SetLogSink(nullptr);
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kError) << "back on stderr";
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("back on stderr"),
            std::string::npos);
  EXPECT_EQ(captured.size(), 1u);
}

TEST_F(LoggingTest, ElapsedSecondsIsMonotonic) {
  const double a = LogElapsedSeconds();
  const double b = LogElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST_F(LoggingTest, LoggableLevelMapsSeverities) {
  // kOff is rejected at compile time by a static_assert in
  // LoggableLevel; the valid severities map through unchanged.
  static_assert(internal_logging::LoggableLevel<LogLevel::kDebug>::value ==
                LogLevel::kDebug);
  static_assert(internal_logging::LoggableLevel<LogLevel::kError>::value ==
                LogLevel::kError);
  SUCCEED();
}

TEST_F(LoggingTest, BelowThresholdSuppressed) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kInfo) << "hidden";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
}

}  // namespace
}  // namespace wsq
