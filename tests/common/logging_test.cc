#include "wsq/common/logging.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kOff);
  WSQ_LOG(kError) << "this must be swallowed " << 42;
  WSQ_LOG(kDebug) << "so must this";
}

TEST_F(LoggingTest, EmittedMessagesGoToStderr) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kWarning) << "visible " << 7;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("visible 7"), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(err.find("[W "), std::string::npos);
}

TEST_F(LoggingTest, BelowThresholdSuppressed) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  WSQ_LOG(kInfo) << "hidden";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
}

}  // namespace
}  // namespace wsq
