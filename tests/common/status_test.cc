#include "wsq/common/status.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::RemoteFault("x").code(), StatusCode::kRemoteFault);

  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "not_found: missing table");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(StatusCodeName(StatusCode::kRemoteFault), "remote_fault");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AccessingErrorValueDies) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  WSQ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wsq
