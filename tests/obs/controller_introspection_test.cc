// Controller introspection: every controller exposes its internal state
// through DebugState(), and the hybrid supervisor's snapshot is
// cross-checked against the paper's Eq. (4)-(5) phase transition on a
// deterministic response profile.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/control/fixed_controller.h"
#include "wsq/control/hybrid_controller.h"
#include "wsq/control/mimd_controller.h"
#include "wsq/control/model_based_controller.h"
#include "wsq/control/self_tuning_controller.h"
#include "wsq/control/switching_controller.h"
#include "wsq/obs/state_snapshot.h"

namespace wsq {
namespace {

/// Deterministic convex per-tuple response curve with its optimum at
/// 2500 tuples — the stand-in for the paper's Fig. 3 profile shape.
double ConvexCost(int64_t block_size) {
  const double x = static_cast<double>(block_size);
  return 1.0 + 0.2 * ((x - 2500.0) / 1000.0) * ((x - 2500.0) / 1000.0);
}

TEST(ControllerIntrospectionTest, BaseSnapshotHasNameAndSteps) {
  FixedController controller(1200);
  StateSnapshot state = controller.DebugState();
  EXPECT_EQ(*state.Find("name"), "fixed_1200");
  EXPECT_EQ(state.Number("adaptivity_steps").value(), 0.0);
  EXPECT_EQ(state.Number("block_size").value(), 1200.0);
}

TEST(ControllerIntrospectionTest, SwitchingExposesGainAndSigns) {
  SwitchingConfig config;
  config.dither_factor = 0.0;  // deterministic
  SwitchingExtremumController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 10; ++i) {
    x = controller.NextBlockSize(ConvexCost(x));
  }
  StateSnapshot state = controller.DebugState();
  EXPECT_EQ(*state.Find("gain_mode"), "constant_gain");
  EXPECT_EQ(state.Number("gain").value(), config.b1);
  EXPECT_EQ(state.Number("b1").value(), config.b1);
  EXPECT_EQ(state.Number("b2").value(), config.b2);
  EXPECT_EQ(state.Number("dither_factor").value(), 0.0);
  ASSERT_TRUE(state.Number("sign_switches").ok());
  ASSERT_TRUE(state.Number("last_sign").ok());
  // The commanded size in the snapshot matches the controller's output.
  EXPECT_EQ(static_cast<int64_t>(state.Number("command").value()), x);
}

TEST(ControllerIntrospectionTest, CountSignSwitchesCountsAdjacentFlips) {
  EXPECT_EQ(CountSignSwitches({}), 0);
  EXPECT_EQ(CountSignSwitches({1}), 0);
  EXPECT_EQ(CountSignSwitches({1, 1, 1}), 0);
  EXPECT_EQ(CountSignSwitches({1, -1, 1, -1}), 3);
  EXPECT_EQ(CountSignSwitches({1, 1, -1, -1, 1}), 2);
}

// The Eq. (4)-(5) cross-check: drive the hybrid controller over the
// deterministic convex profile, sample DebugState() every adaptivity
// step, and verify that the phase flips to steady state exactly when the
// sign criterion |sum of the last n' signs| <= s first holds — computed
// independently in the test from the sampled per-step sign terms.
TEST(ControllerIntrospectionTest, HybridPhaseTransitionMatchesEq45) {
  HybridConfig config;
  config.base.dither_factor = 0.0;  // deterministic run
  config.base.b1 = 500.0;
  config.base.averaging_horizon = 1;
  config.criterion = PhaseCriterion::kSignSwitches;
  config.criterion_horizon = 5;
  config.criterion_threshold = 1;
  HybridController controller(config);

  struct Sample {
    std::string phase;
    std::string gain_mode;
    double gain = 0.0;
    int64_t sign_switches = 0;
    int last_sign = 0;
    bool has_sign = false;
  };
  std::vector<Sample> samples;

  int64_t x = controller.initial_block_size();
  for (int step = 0; step < 120; ++step) {
    x = controller.NextBlockSize(ConvexCost(x));
    StateSnapshot state = controller.DebugState();
    Sample sample;
    sample.phase = *state.Find("phase");
    sample.gain_mode = *state.Find("gain_mode");
    sample.gain = state.Number("gain").value();
    sample.sign_switches =
        static_cast<int64_t>(state.Number("sign_switches").value());
    if (state.Find("last_sign") != nullptr) {
      sample.last_sign = static_cast<int>(state.Number("last_sign").value());
      sample.has_sign = true;
    }
    samples.push_back(sample);
    // Eq. (4): the gain mode is slaved to the phase.
    EXPECT_EQ(sample.gain_mode, sample.phase == "transient"
                                    ? "constant_gain"
                                    : "adaptive_gain")
        << "step " << step;
  }

  // The run must reach steady state on a convex deterministic profile.
  size_t transition = samples.size();
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].phase == "steady_state") {
      transition = i;
      break;
    }
  }
  ASSERT_LT(transition, samples.size()) << "never reached steady state";
  ASSERT_GE(transition, 1u);

  // Reconstruct the per-step sign series from the sampled last_sign
  // values (one new sign per adaptivity step once deltas exist).
  std::vector<int> signs;
  for (size_t i = 0; i <= transition; ++i) {
    if (samples[i].has_sign) signs.push_back(samples[i].last_sign);
  }

  // Eq. (5) at the transition step: the last n' signs nearly cancel.
  const size_t n = static_cast<size_t>(config.criterion_horizon);
  ASSERT_GE(signs.size(), n);
  int sum = 0;
  for (size_t i = signs.size() - n; i < signs.size(); ++i) sum += signs[i];
  EXPECT_LE(std::abs(sum), config.criterion_threshold)
      << "criterion did not hold at the reported transition";

  // ... and at no earlier step with a full window did it hold (otherwise
  // the controller should have flipped there).
  for (size_t end = n; end < signs.size(); ++end) {
    int early = 0;
    for (size_t i = end - n; i < end; ++i) early += signs[i];
    EXPECT_GT(std::abs(early), config.criterion_threshold)
        << "criterion held " << signs.size() - end
        << " sign(s) before the transition";
  }

  // Once steady (no-switch-back flavor), the phase never reverts, the
  // transition count is exactly 1, and sign switches keep accumulating
  // as the saw-tooth oscillates (Eq. 5's rationale).
  for (size_t i = transition; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].phase, "steady_state");
  }
  StateSnapshot final_state = controller.DebugState();
  EXPECT_EQ(final_state.Number("phase_transitions").value(), 1.0);
  EXPECT_EQ(*final_state.Find("criterion"), "sign_switches");
  EXPECT_EQ(final_state.Number("criterion_horizon").value(), 5.0);
  EXPECT_GT(samples.back().sign_switches, 0);
  EXPECT_EQ(controller.phase(), GainPhase::kSteadyState);
}

TEST(ControllerIntrospectionTest, MimdExposesGridState) {
  MimdConfig config;
  MimdController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) x = controller.NextBlockSize(ConvexCost(x));
  StateSnapshot state = controller.DebugState();
  EXPECT_EQ(state.Number("factor").value(), config.factor);
  ASSERT_TRUE(state.Number("exponent").ok());
  ASSERT_TRUE(state.Number("command").ok());
  ASSERT_TRUE(state.Number("grid_points_visited").ok());
}

TEST(ControllerIntrospectionTest, ModelBasedExposesFitAfterIdentification) {
  ModelBasedConfig config;
  ModelBasedController controller(config);
  int64_t x = controller.initial_block_size();
  // Identification: num_samples * samples_per_size measurements.
  for (int i = 0; i < config.num_samples * config.samples_per_size + 5; ++i) {
    x = controller.NextBlockSize(ConvexCost(x));
    StateSnapshot state = controller.DebugState();
    ASSERT_NE(state.Find("identification_complete"), nullptr);
  }
  StateSnapshot state = controller.DebugState();
  EXPECT_EQ(*state.Find("identification_complete"), "true");
  ASSERT_TRUE(state.Number("optimum").ok());
  ASSERT_TRUE(state.Number("fit_rmse").ok());
  ASSERT_TRUE(state.Number("fit_param_0").ok());
}

TEST(ControllerIntrospectionTest, SelfTuningExposesRlsAndInnerState) {
  SelfTuningConfig config;
  config.enable_rls = true;
  config.controller.base.dither_factor = 0.0;
  SelfTuningController controller(config);

  StateSnapshot during = controller.DebugState();
  EXPECT_EQ(*during.Find("stage"), "identification");
  EXPECT_EQ(*during.Find("rls_enabled"), "true");
  ASSERT_TRUE(during.Number("rls_covariance_trace").ok());

  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 80 && !controller.in_continuation(); ++i) {
    x = controller.NextBlockSize(ConvexCost(x));
  }
  ASSERT_TRUE(controller.in_continuation());

  StateSnapshot after = controller.DebugState();
  EXPECT_EQ(*after.Find("stage"), "continuation");
  ASSERT_TRUE(after.Number("seed_estimate").ok());
  ASSERT_TRUE(after.Number("rls_updates").ok());
  EXPECT_GT(after.Number("rls_updates").value(), 0.0);
  EXPECT_EQ(after.Number("rls_forgetting").value(), config.rls_forgetting);
  // RLS covariance contracts as measurements accumulate.
  EXPECT_LT(after.Number("rls_covariance_trace").value(),
            during.Number("rls_covariance_trace").value());
  // The driving hybrid controller's state is nested under inner_.
  ASSERT_NE(after.Find("inner_phase"), nullptr);
  ASSERT_TRUE(after.Number("inner_b1").ok());
}

}  // namespace
}  // namespace wsq
