#include "wsq/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "wsq/obs/json_lite.h"

namespace wsq {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(HistogramTest, CountsBucketsAndMoments) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Record(0.5);    // bucket 0
  histogram.Record(5.0);    // bucket 1
  histogram.Record(50.0);   // bucket 2
  histogram.Record(500.0);  // overflow
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_EQ(histogram.bucket_counts(), (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 500.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), (0.5 + 5.0 + 50.0 + 500.0) / 4.0);
}

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) {
    histogram.Record(5.0);  // all samples in the first bucket
  }
  const double p50 = histogram.p50();
  // The owning bucket is (0, 10]; interpolation stays inside it, and the
  // estimate is clipped to the observed range, so it must return the
  // single observed value's neighborhood.
  EXPECT_GE(p50, histogram.min());
  EXPECT_LE(p50, histogram.max());
}

TEST(HistogramTest, PercentileOrderingOnSpread) {
  Histogram histogram(Histogram::LatencyBucketsMs());
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(static_cast<double>(i));  // 1..1000 ms
  }
  const double p50 = histogram.p50();
  const double p90 = histogram.p90();
  const double p99 = histogram.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bucket-interpolation error is bounded by the owning bucket's width;
  // the 1-2-5 decade grid keeps that within a factor of ~2.5.
  EXPECT_NEAR(p50, 500.0, 300.0);
  EXPECT_NEAR(p99, 990.0, 300.0);
}

TEST(HistogramTest, EmptyHistogramQuantilesAreNaN) {
  Histogram histogram(Histogram::LatencyBucketsMs());
  EXPECT_TRUE(std::isnan(histogram.p50()));
  EXPECT_EQ(histogram.count(), 0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("wsq.test.counter");
  Counter* b = registry.GetCounter("wsq.test.counter");
  EXPECT_EQ(a, b);
  registry.GetGauge("wsq.test.gauge")->Set(7.0);
  registry.GetHistogram("wsq.test.hist")->Record(3.0);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedOnFirstUse) {
  MetricsRegistry registry;
  Histogram* first = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* second = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, ExportersProduceParseableSnapshots) {
  MetricsRegistry registry;
  registry.GetCounter("wsq.a.count")->Increment(5);
  registry.GetGauge("wsq.b.gauge")->Set(2.5);
  Histogram* histogram = registry.GetHistogram("wsq.c.hist");
  histogram->Record(12.0);
  histogram->Record(120.0);

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("wsq.a.count"), std::string::npos);
  EXPECT_NE(text.find("wsq.b.gauge"), std::string::npos);

  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("wsq.c.hist"), std::string::npos);
  EXPECT_NE(csv.find("p99"), std::string::npos);

  const std::string json = registry.ToJson();
  Status valid = CheckJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonStaysParseableWithEmptyHistogram) {
  MetricsRegistry registry;
  registry.GetHistogram("empty.hist");  // NaN quantiles must become null
  Status valid = CheckJson(registry.ToJson());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(MetricsRegistryTest, LabeledNamesFollowTheConvention) {
  EXPECT_EQ(LabeledName("wsq.server.bytes_out", "session", "7"),
            "wsq.server.bytes_out{session=7}");
  EXPECT_EQ(LabeledName("b", "k", ""), "b{k=}");
}

TEST(MetricsRegistryTest, SumCountersRollsUpALabeledFamily) {
  MetricsRegistry registry;
  registry.GetCounter("wsq.s.blocks")->Increment(2);  // the exact base name
  registry.GetCounter(LabeledName("wsq.s.blocks", "session", "1"))
      ->Increment(10);
  registry.GetCounter(LabeledName("wsq.s.blocks", "session", "2"))
      ->Increment(30);
  // Decoys that must NOT fold in: a different family sharing the
  // prefix, and the lexicographic neighbors of '{'.
  registry.GetCounter("wsq.s.blocks_total")->Increment(1000);
  registry.GetCounter("wsq.s.blocksz")->Increment(1000);
  registry.GetCounter("wsq.s.block")->Increment(1000);

  EXPECT_EQ(registry.SumCounters("wsq.s.blocks"), 42);
  EXPECT_EQ(registry.SumCounters("wsq.s.block"), 1000);
  EXPECT_EQ(registry.SumCounters("absent"), 0);
}

TEST(MetricsRegistryTest, LabeledNameEscapesHostileLabelValues) {
  // Label values carrying the structural characters of the convention
  // ({, }, =, ,) are percent-escaped, so the mapping (base, k, v) ->
  // name stays injective: no two distinct labels can render to the
  // same string.
  EXPECT_EQ(LabeledName("b", "k", "a,b"), "b{k=a%2Cb}");
  EXPECT_EQ(LabeledName("b", "k", "a=b"), "b{k=a%3Db}");
  EXPECT_EQ(LabeledName("b", "k", "a{b}"), "b{k=a%7Bb%7D}");
  EXPECT_EQ(LabeledName("b", "k", "100%"), "b{k=100%25}");
  // The escape character itself round-trips unambiguously.
  EXPECT_NE(LabeledName("b", "k", "%2C"), LabeledName("b", "k", ","));
  // A hostile value cannot forge another family's labeled name.
  EXPECT_NE(LabeledName("b", "tenant", "1,evil=x"),
            LabeledName(LabeledName("b", "tenant", "1"), "evil", "x"));
}

TEST(MetricsRegistryTest, MultiLabelNamesJoinInOrder) {
  EXPECT_EQ(LabeledName("b", {{"tenant", "3"}, {"phase", "live"}}),
            "b{tenant=3,phase=live}");
  EXPECT_EQ(LabeledName("b", {}), "b");
  // Single-label overload agrees with the list form.
  EXPECT_EQ(LabeledName("b", "k", "v"), LabeledName("b", {{"k", "v"}}));
}

TEST(MetricsRegistryTest, SumCountersRespectsLabelBoundaries) {
  // The adversarial neighbor family: tenant=1 must not absorb
  // tenant=10..19, which are its lexicographic extensions when the sum
  // walks raw string prefixes instead of label boundaries.
  MetricsRegistry registry;
  registry.GetCounter(LabeledName("wsq.f.blocks", "tenant", "1"))
      ->Increment(7);
  registry.GetCounter(LabeledName("wsq.f.blocks", "tenant", "10"))
      ->Increment(100);
  registry.GetCounter(LabeledName("wsq.f.blocks", "tenant", "19"))
      ->Increment(100);

  // The whole family rolls up from the unlabeled base...
  EXPECT_EQ(registry.SumCounters("wsq.f.blocks"), 207);
  // ...but a labeled base sums only itself plus *label extensions* of
  // itself (extra labels after a comma), never sibling values.
  EXPECT_EQ(registry.SumCounters(LabeledName("wsq.f.blocks", "tenant", "1")),
            7);
  EXPECT_EQ(registry.SumCounters(LabeledName("wsq.f.blocks", "tenant", "10")),
            100);

  // Sub-family rollup: base{tenant=1} plus its multi-label extensions.
  registry
      .GetCounter(LabeledName("wsq.f.rows", {{"tenant", "1"}, {"op", "a"}}))
      ->Increment(3);
  registry
      .GetCounter(LabeledName("wsq.f.rows", {{"tenant", "1"}, {"op", "b"}}))
      ->Increment(4);
  registry
      .GetCounter(LabeledName("wsq.f.rows", {{"tenant", "10"}, {"op", "a"}}))
      ->Increment(50);
  EXPECT_EQ(registry.SumCounters(LabeledName("wsq.f.rows", "tenant", "1")),
            7);
  EXPECT_EQ(registry.SumCounters("wsq.f.rows"), 57);
}

TEST(MetricsRegistryTest, SumCountersWithEscapedLabelValues) {
  // Escaped hostile values keep families disjoint under rollup: a value
  // ending in ',' or containing '=' cannot smuggle itself into another
  // family's sum.
  MetricsRegistry registry;
  registry.GetCounter(LabeledName("wsq.h.c", "tenant", "t"))->Increment(1);
  registry.GetCounter(LabeledName("wsq.h.c", "tenant", "t,x=1"))
      ->Increment(20);
  registry.GetCounter(LabeledName("wsq.h.c", "tenant", "t}"))->Increment(300);

  EXPECT_EQ(registry.SumCounters("wsq.h.c"), 321);
  EXPECT_EQ(registry.SumCounters(LabeledName("wsq.h.c", "tenant", "t")), 1);
  EXPECT_EQ(registry.SumCounters(LabeledName("wsq.h.c", "tenant", "t,x=1")),
            20);
  EXPECT_EQ(registry.SumCounters(LabeledName("wsq.h.c", "tenant", "t}")),
            300);
}

TEST(MetricsRegistryTest, JsonNeverEmitsNonFiniteLiterals) {
  // The exporter audit: NaN and +/-Inf gauges and an empty histogram's
  // NaN quantiles must all surface as null — RFC 8259 has no nan/inf
  // literals, and one leaked token poisons the whole document for every
  // standard parser.
  MetricsRegistry registry;
  registry.GetGauge("g.not_a_number")->Set(std::nan(""));
  registry.GetGauge("g.pos")->Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("g.neg")->Set(-std::numeric_limits<double>::infinity());
  registry.GetHistogram("h.empty");
  Histogram* overflow = registry.GetHistogram("h.overflow");
  overflow->Record(std::numeric_limits<double>::infinity());

  const std::string json = registry.ToJson();
  Status valid = CheckJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("null"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteFilePicksFormatByExtension) {
  MetricsRegistry registry;
  registry.GetCounter("x.count")->Increment();
  const std::string base = ::testing::TempDir() + "/wsq_metrics_test";

  ASSERT_TRUE(registry.WriteFile(base + ".json").ok());
  std::stringstream json;
  json << std::ifstream(base + ".json").rdbuf();
  EXPECT_TRUE(CheckJson(json.str()).ok());

  ASSERT_TRUE(registry.WriteFile(base + ".csv").ok());
  std::stringstream csv;
  csv << std::ifstream(base + ".csv").rdbuf();
  EXPECT_NE(csv.str().find("x.count"), std::string::npos);

  std::remove((base + ".json").c_str());
  std::remove((base + ".csv").c_str());
}

TEST(MetricsRegistryTest, ResetAllKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Increment(9);
  Histogram* histogram = registry.GetHistogram("h");
  histogram->Record(1.0);
  registry.ResetAll();
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(histogram->count(), 0);
  counter->Increment();  // handle still live
  EXPECT_EQ(counter->value(), 1);
}

}  // namespace
}  // namespace wsq
