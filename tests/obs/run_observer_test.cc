#include "wsq/obs/run_observer.h"

#include <gtest/gtest.h>

#include "wsq/obs/json_lite.h"

namespace wsq {
namespace {

StateSnapshot SampleState() {
  StateSnapshot state;
  state.Add("gain", 2000.0);
  state.Add("phase", std::string_view("transient"));
  return state;
}

void EmitOneOfEverything(RunObserver& observer) {
  observer.OnSessionOpen(0, 100);
  observer.OnBlock(100, 5000, 700, 700, 0.4, 1);
  observer.OnNetworkTransfer(100, 2000);
  observer.OnServerResidence(2100, 2900);
  observer.OnParse(5100, 4096);
  observer.OnRetry(5200, 250.0);
  observer.OnControllerDecision(5300, "switching", SampleState(), 1, 900);
  observer.OnServerQueueLength(5400, 3);
  observer.OnServerLoadLevel(5400, 2);
  observer.OnSessionClose(6000, 50);
}

TEST(RunObserverTest, HooksAccumulateMetrics) {
  MetricsRegistry registry;
  RunObserver observer(&registry, nullptr);
  EmitOneOfEverything(observer);

  EXPECT_EQ(registry.GetCounter("wsq.pull.sessions_total")->value(), 1);
  EXPECT_EQ(registry.GetCounter("wsq.pull.blocks_total")->value(), 1);
  EXPECT_EQ(registry.GetCounter("wsq.pull.tuples_total")->value(), 700);
  EXPECT_EQ(registry.GetCounter("wsq.pull.retries_total")->value(), 1);
  EXPECT_EQ(registry.GetCounter("wsq.pull.parses_total")->value(), 1);
  EXPECT_EQ(registry.GetCounter("wsq.controller.decisions_total")->value(), 1);
  EXPECT_EQ(registry.GetHistogram("wsq.pull.block_time_ms")->count(), 1);
  EXPECT_EQ(registry.GetHistogram("wsq.net.transfer_ms")->count(), 1);
  EXPECT_EQ(registry.GetHistogram("wsq.server.residence_ms")->count(), 1);
  EXPECT_EQ(registry.GetGauge("wsq.server.queue_len")->value(), 3.0);
  EXPECT_EQ(registry.GetGauge("wsq.server.load_level")->value(), 2.0);
  // Numeric DebugState entries mirror to wsq.controller.<key> gauges.
  EXPECT_EQ(registry.GetGauge("wsq.controller.gain")->value(), 2000.0);
}

TEST(RunObserverTest, HooksEmitValidTraceEvents) {
  Tracer tracer;
  RunObserver observer(nullptr, &tracer);
  EmitOneOfEverything(observer);
  EXPECT_GT(tracer.size(), 5u);
  Status valid = CheckChromeTrace(tracer.ToChromeJson());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  // The decision event carries the DebugState snapshot in its args.
  EXPECT_NE(tracer.ToChromeJson().find("\"phase\":\"transient\""),
            std::string::npos);
}

TEST(RunObserverTest, NullComponentsAreSafe) {
  RunObserver observer(nullptr, nullptr);
  EmitOneOfEverything(observer);  // must not crash
}

TEST(RunObserverTest, GlobalObserverInstallAndClear) {
  EXPECT_EQ(GlobalRunObserver(), nullptr);
  MetricsRegistry registry;
  RunObserver observer(&registry, nullptr);
  SetGlobalRunObserver(&observer);
  EXPECT_EQ(GlobalRunObserver(), &observer);
  SetGlobalRunObserver(nullptr);
  EXPECT_EQ(GlobalRunObserver(), nullptr);
}

}  // namespace
}  // namespace wsq
