#include "wsq/obs/span_context.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(TraceContextTest, EncodeDecodeRoundTrips) {
  TraceContext context;
  context.trace_id = 0x0123456789abcdefull;
  context.span_id = 0xfedcba9876543210ull;
  context.clock_micros = 1722500000123456ull;

  char raw[kTraceContextBytes];
  EncodeTraceContext(context, raw);
  EXPECT_EQ(DecodeTraceContext(raw), context);
}

TEST(TraceContextTest, EncodingIsBigEndian) {
  TraceContext context;
  context.trace_id = 0x0102030405060708ull;
  char raw[kTraceContextBytes];
  EncodeTraceContext(context, raw);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(raw[i]), i + 1);
  }
}

std::vector<RemoteSpan> SampleSpans() {
  std::vector<RemoteSpan> spans;
  RemoteSpan root;
  root.span_id = 11;
  root.parent_span_id = 3;
  root.ts_micros = 1722500000000000;
  root.dur_micros = 1500;
  root.name = "server.request";
  spans.push_back(root);
  RemoteSpan instant;
  instant.span_id = 12;
  instant.parent_span_id = 11;
  instant.ts_micros = 1722500000000400;
  instant.dur_micros = 0;  // instant marker
  instant.name = "server.replay_hit";
  spans.push_back(instant);
  return spans;
}

TEST(RemoteSpanTest, EncodeDecodeRoundTrips) {
  const std::vector<RemoteSpan> spans = SampleSpans();
  Result<std::vector<RemoteSpan>> got =
      DecodeRemoteSpans(EncodeRemoteSpans(spans));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), spans);
}

TEST(RemoteSpanTest, EmptyListRoundTrips) {
  const std::string encoded = EncodeRemoteSpans({});
  ASSERT_EQ(encoded.size(), 2u);
  Result<std::vector<RemoteSpan>> got = DecodeRemoteSpans(encoded);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST(RemoteSpanTest, NegativeTimestampsSurviveTheTrip) {
  // Timestamps are i64 carried in u64 fields; a pre-epoch or relative
  // negative value must come back bit-exact.
  RemoteSpan span;
  span.span_id = 1;
  span.ts_micros = -5;
  span.dur_micros = -1;
  span.name = "odd";
  Result<std::vector<RemoteSpan>> got =
      DecodeRemoteSpans(EncodeRemoteSpans({span}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value()[0].ts_micros, -5);
  EXPECT_EQ(got.value()[0].dur_micros, -1);
}

TEST(RemoteSpanTest, EncodeDropsSpansPastThePerFrameCap) {
  std::vector<RemoteSpan> spans(kMaxRemoteSpansPerFrame + 10);
  for (size_t i = 0; i < spans.size(); ++i) {
    spans[i].span_id = i + 1;
    spans[i].name = "s";
  }
  Result<std::vector<RemoteSpan>> got =
      DecodeRemoteSpans(EncodeRemoteSpans(spans));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().size(), kMaxRemoteSpansPerFrame);
}

TEST(RemoteSpanTest, EncodeTruncatesOversizedNames) {
  RemoteSpan span;
  span.span_id = 1;
  span.name.assign(kMaxRemoteSpanNameBytes + 50, 'n');
  Result<std::vector<RemoteSpan>> got =
      DecodeRemoteSpans(EncodeRemoteSpans({span}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value()[0].name.size(), kMaxRemoteSpanNameBytes);
}

TEST(RemoteSpanTest, DecodeRejectsTruncationAtEveryCut) {
  const std::string encoded = EncodeRemoteSpans(SampleSpans());
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Result<std::vector<RemoteSpan>> got =
        DecodeRemoteSpans(std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(got.ok()) << "cut at " << cut << " decoded spans";
  }
}

TEST(RemoteSpanTest, DecodeRejectsTrailingGarbage) {
  std::string encoded = EncodeRemoteSpans(SampleSpans());
  encoded += 'x';
  Result<std::vector<RemoteSpan>> got = DecodeRemoteSpans(encoded);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(RemoteSpanTest, DecodeRejectsHostileCountBeforeAllocating) {
  std::string hostile;
  hostile.push_back(static_cast<char>(0xff));
  hostile.push_back(static_cast<char>(0xff));  // count = 65535
  Result<std::vector<RemoteSpan>> got = DecodeRemoteSpans(hostile);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(RemoteSpanTest, DecodeRejectsOversizedBlock) {
  std::string huge(kMaxRemoteSpanBytes + 1, '\0');
  Result<std::vector<RemoteSpan>> got = DecodeRemoteSpans(huge);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(RemoteSpanTest, DecodeSurvivesEverySingleBitFlip) {
  // No flip may crash or over-read; each either still parses or fails
  // with kInvalidArgument.
  const std::string encoded = EncodeRemoteSpans(SampleSpans());
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      Result<std::vector<RemoteSpan>> got = DecodeRemoteSpans(mutated);
      if (!got.ok()) {
        EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(ClockOffsetTest, StartsAsIdentity) {
  ClockOffsetEstimator estimator;
  EXPECT_FALSE(estimator.has_offset());
  EXPECT_EQ(estimator.ToClientMicros(12345), 12345);
}

TEST(ClockOffsetTest, SymmetricExchangeRecoversTheExactOffset) {
  // Server clock runs 1s ahead; both wire legs take 100us, residence
  // 300us. The midpoint estimate is exact when the legs are symmetric.
  ClockOffsetEstimator estimator;
  const int64_t offset = 1000000;
  const int64_t t1 = 5000;
  const int64_t server_t1 = t1 + 100 + offset;   // arrive after one leg
  const int64_t server_t2 = server_t1 + 300;     // residence
  const int64_t t2 = t1 + 100 + 300 + 100;       // back after the other leg
  estimator.AddSample(t1, t2, server_t2, /*service_micros=*/300);
  ASSERT_TRUE(estimator.has_offset());
  EXPECT_EQ(estimator.offset_micros(), offset);
  EXPECT_EQ(estimator.uncertainty_micros(), 200);  // the two wire legs
  EXPECT_EQ(estimator.ToClientMicros(server_t2), t1 + 100 + 300);
}

TEST(ClockOffsetTest, KeepsTheMinimumUncertaintySample) {
  ClockOffsetEstimator estimator;
  // A slow exchange first (wire time 10000us)...
  estimator.AddSample(0, 10300, 1000000, 300);
  ASSERT_TRUE(estimator.has_offset());
  const int64_t coarse = estimator.offset_micros();
  EXPECT_EQ(estimator.uncertainty_micros(), 10000);
  // ...then a fast one (wire time 200us) — it wins...
  estimator.AddSample(20000, 20500, 1020250, 300);
  EXPECT_EQ(estimator.uncertainty_micros(), 200);
  EXPECT_NE(estimator.offset_micros(), coarse);
  const int64_t fine = estimator.offset_micros();
  // ...and a later slow one must not displace it.
  estimator.AddSample(40000, 55000, 1048000, 1000);
  EXPECT_EQ(estimator.offset_micros(), fine);
  EXPECT_EQ(estimator.uncertainty_micros(), 200);
  EXPECT_EQ(estimator.samples(), 3);
}

TEST(ClockOffsetTest, IgnoresPhysicallyImpossibleSamples) {
  ClockOffsetEstimator estimator;
  estimator.AddSample(100, 100, 500, 0);    // zero RTT
  estimator.AddSample(100, 50, 500, 0);     // negative RTT
  estimator.AddSample(100, 200, 500, -10);  // negative residence
  estimator.AddSample(100, 200, 500, 500);  // residence > RTT
  EXPECT_FALSE(estimator.has_offset());
  EXPECT_EQ(estimator.samples(), 0);
}

}  // namespace
}  // namespace wsq
