#include "wsq/obs/state_snapshot.h"

#include <gtest/gtest.h>

#include "wsq/obs/json_lite.h"

namespace wsq {
namespace {

TEST(StateSnapshotTest, PreservesInsertionOrder) {
  StateSnapshot snapshot;
  snapshot.Add("zeta", 1);
  snapshot.Add("alpha", 2);
  snapshot.Add("mid", 3);
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot.entries()[0].first, "zeta");
  EXPECT_EQ(snapshot.entries()[1].first, "alpha");
  EXPECT_EQ(snapshot.entries()[2].first, "mid");
}

TEST(StateSnapshotTest, NumberRoundTripsDoubles) {
  StateSnapshot snapshot;
  const double value = 0.1 + 0.2;  // not exactly representable in decimal
  snapshot.Add("x", value);
  Result<double> parsed = snapshot.Number("x");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), value);  // %.17g must round-trip exactly
}

TEST(StateSnapshotTest, TypedAddOverloads) {
  StateSnapshot snapshot;
  snapshot.Add("s", std::string_view("text"));
  snapshot.Add("i", int64_t{-7});
  snapshot.Add("n", 42);
  snapshot.Add("b", true);
  EXPECT_EQ(*snapshot.Find("s"), "text");
  EXPECT_EQ(*snapshot.Find("i"), "-7");
  EXPECT_EQ(*snapshot.Find("n"), "42");
  EXPECT_EQ(*snapshot.Find("b"), "true");
  EXPECT_EQ(snapshot.Find("missing"), nullptr);
}

TEST(StateSnapshotTest, CharPointerValuesStoreText) {
  // Regression: a const char* must hit the string overload, not decay
  // pointer-to-bool and store "true".
  StateSnapshot snapshot;
  const bool flag = false;
  snapshot.Add("stage", flag ? "continuation" : "identification");
  EXPECT_EQ(*snapshot.Find("stage"), "identification");
}

TEST(StateSnapshotTest, NumberErrors) {
  StateSnapshot snapshot;
  snapshot.Add("text", std::string_view("not a number"));
  EXPECT_EQ(snapshot.Number("absent").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(snapshot.Number("text").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StateSnapshotTest, AppendSplicesEntries) {
  StateSnapshot inner;
  inner.Add("gain", 2000.0);
  StateSnapshot outer;
  outer.Add("phase", std::string_view("transient"));
  outer.Append(inner);
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_EQ(outer.entries()[1].first, "gain");
}

TEST(StateSnapshotTest, ToJsonObjectIsValidJson) {
  StateSnapshot snapshot;
  snapshot.Add("name", std::string_view("he said \"hi\"\n"));
  snapshot.Add("v", 1.5);
  const std::string json = snapshot.ToJsonObject();
  EXPECT_TRUE(CheckJson(json).ok()) << json;
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
}

TEST(StateSnapshotTest, EmptySnapshotIsEmptyJsonObject) {
  StateSnapshot snapshot;
  EXPECT_TRUE(snapshot.empty());
  EXPECT_TRUE(CheckJson(snapshot.ToJsonObject()).ok());
}

}  // namespace
}  // namespace wsq
