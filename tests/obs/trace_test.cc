#include "wsq/obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "wsq/common/clock.h"
#include "wsq/obs/json_lite.h"

namespace wsq {
namespace {

TEST(TracerTest, CollectsEventsInOrder) {
  Tracer tracer;
  tracer.AddComplete("block", "pull", 100, 50, TraceLane::kPullLoop,
                     "{\"requested\":700}");
  tracer.AddInstant("retry", "pull", 120, TraceLane::kPullLoop);
  tracer.AddCounterSample("queue_len", 130, TraceLane::kServer, 3.0);
  ASSERT_EQ(tracer.size(), 3u);
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].dur_micros, 50);
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].phase, 'C');
}

TEST(TracerTest, ChromeJsonPassesSchemaCheck) {
  Tracer tracer;
  tracer.SetLaneName(TraceLane::kPullLoop, "pull loop");
  tracer.AddComplete("block \"quoted\"", "pull", 0, 10, TraceLane::kPullLoop);
  tracer.AddInstant("decision", "controller", 5, TraceLane::kController,
                    "{\"gain\":2000}");
  tracer.AddCounterSample("load", 7, TraceLane::kServer, 1.5);
  const std::string json = tracer.ToChromeJson();
  Status valid = CheckChromeTrace(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TracerTest, EmptyTracerStillValidChromeJson) {
  Tracer tracer;
  EXPECT_TRUE(CheckChromeTrace(tracer.ToChromeJson()).ok());
}

TEST(TracerTest, JsonlHasOneValidObjectPerLine) {
  Tracer tracer;
  tracer.AddComplete("a", "c", 0, 1, 1);
  tracer.AddInstant("b", "c", 2, 1);
  const std::string jsonl = tracer.ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(CheckJson(line).ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(TracerTest, BeginEndUsesClockTimestamps) {
  SimClock clock;
  Tracer tracer;
  const int64_t t0 = tracer.Begin(clock);
  clock.AdvanceMillis(12.5);
  tracer.End(t0, clock, "work", "pull", TraceLane::kPullLoop);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_micros, t0);
  EXPECT_EQ(events[0].dur_micros, 12500);
}

TEST(TracerTest, WriteFilesRoundTrip) {
  Tracer tracer;
  tracer.AddComplete("a", "c", 0, 1, 1);
  const std::string base = ::testing::TempDir() + "/wsq_trace_test";

  ASSERT_TRUE(tracer.WriteChromeJson(base + ".json").ok());
  std::stringstream chrome;
  chrome << std::ifstream(base + ".json").rdbuf();
  EXPECT_TRUE(CheckChromeTrace(chrome.str()).ok());

  ASSERT_TRUE(tracer.WriteJsonl(base + ".jsonl").ok());
  std::stringstream jsonl;
  jsonl << std::ifstream(base + ".jsonl").rdbuf();
  EXPECT_NE(jsonl.str().find("\"ph\""), std::string::npos);

  std::remove((base + ".json").c_str());
  std::remove((base + ".jsonl").c_str());
}

TEST(TracerTest, ClearEmptiesTheBuffer) {
  Tracer tracer;
  tracer.AddInstant("a", "c", 0, 1);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
}

}  // namespace
}  // namespace wsq
