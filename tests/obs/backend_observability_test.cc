// End-to-end observability: the same RunObserver plugged into all three
// QueryBackend adapters yields a schema-valid Chrome trace and a
// populated metrics registry, while a null observer leaves the run
// results bit-for-bit unchanged.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/eventsim_backend.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/backend/query_backend.h"
#include "wsq/backend/run_stats.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/control/switching_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/obs/json_lite.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/sim/profile.h"

namespace wsq {
namespace {

std::shared_ptr<const ResponseProfile> SmallProfile() {
  ParametricProfile::Params p;
  p.name = "obs_small";
  p.dataset_tuples = 8000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  return std::make_shared<ParametricProfile>(p);
}

EventSimConfig SmallEventConfig() {
  EventSimConfig config;
  config.jitter_sigma = 0.05;
  config.seed = 3;
  return config;
}

EmpiricalSetup SmallEmpiricalSetup() {
  TpchGenOptions gen;
  gen.scale = 0.02;  // 3000 customers
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 5;
  return setup;
}

/// Runs a switching controller through `backend` with `observer` wired
/// via RunSpec and returns the trace.
RunTrace RunObserved(QueryBackend& backend, RunObserver* observer) {
  SwitchingConfig config;
  config.seed = 7;
  SwitchingExtremumController controller(config);
  RunSpec spec;
  spec.observer = observer;
  Result<RunTrace> trace = backend.RunQuery(&controller, spec);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return std::move(trace).value();
}

TEST(BackendObservabilityTest, AllBackendsEmitValidChromeTraces) {
  std::vector<std::unique_ptr<QueryBackend>> backends;
  backends.push_back(
      std::make_unique<ProfileBackend>(SmallProfile(), SimOptions{}));
  backends.push_back(std::make_unique<EventSimBackend>(SmallEventConfig(),
                                                       /*dataset_tuples=*/8000));
  backends.push_back(std::make_unique<EmpiricalBackend>(SmallEmpiricalSetup()));

  for (auto& backend : backends) {
    MetricsRegistry registry;
    Tracer tracer;
    RunObserver observer(&registry, &tracer);
    RunTrace trace = RunObserved(*backend, &observer);
    ASSERT_GT(trace.total_blocks, 0) << backend->name();

    // The trace must be a schema-valid Chrome trace-event document.
    const std::string chrome = tracer.ToChromeJson();
    Status valid = CheckChromeTrace(chrome);
    EXPECT_TRUE(valid.ok()) << backend->name() << ": " << valid.ToString();
    // Every backend's pull loop lands block spans and decisions.
    EXPECT_NE(chrome.find("block_request"), std::string::npos)
        << backend->name();
    EXPECT_NE(chrome.find("controller_decision"), std::string::npos)
        << backend->name();

    // The metrics agree with the trace totals.
    EXPECT_EQ(registry.GetCounter("wsq.pull.blocks_total")->value(),
              trace.total_blocks)
        << backend->name();
    EXPECT_EQ(registry.GetCounter("wsq.pull.tuples_total")->value(),
              trace.total_tuples)
        << backend->name();
    EXPECT_EQ(registry.GetCounter("wsq.run.runs_total")->value(), 1)
        << backend->name();
    // The metrics JSON snapshot parses.
    EXPECT_TRUE(CheckJson(registry.ToJson()).ok()) << backend->name();
  }
}

TEST(BackendObservabilityTest, NullObserverLeavesResultsIdentical) {
  // Same backend + controller seed, observed vs unobserved: the traces
  // must match field for field — observability is read-only.
  ProfileBackend backend(SmallProfile(), SimOptions{});
  MetricsRegistry registry;
  Tracer tracer;
  RunObserver observer(&registry, &tracer);

  RunTrace observed = RunObserved(backend, &observer);
  RunTrace unobserved = RunObserved(backend, nullptr);

  EXPECT_EQ(observed.total_time_ms, unobserved.total_time_ms);
  EXPECT_EQ(observed.total_blocks, unobserved.total_blocks);
  EXPECT_EQ(observed.total_tuples, unobserved.total_tuples);
  ASSERT_EQ(observed.steps.size(), unobserved.steps.size());
  for (size_t i = 0; i < observed.steps.size(); ++i) {
    EXPECT_EQ(observed.steps[i].requested_size,
              unobserved.steps[i].requested_size)
        << "step " << i;
    EXPECT_EQ(observed.steps[i].block_time_ms, unobserved.steps[i].block_time_ms)
        << "step " << i;
  }
}

TEST(BackendObservabilityTest, EventSimEmitsServerSamples) {
  MetricsRegistry registry;
  Tracer tracer;
  RunObserver observer(&registry, &tracer);
  EventSimBackend backend(SmallEventConfig(), 5000);
  RunObserved(backend, &observer);
  const std::string chrome = tracer.ToChromeJson();
  EXPECT_NE(chrome.find("server_queue_len"), std::string::npos);
  EXPECT_NE(chrome.find("network_transfer"), std::string::npos);
}

TEST(BackendObservabilityTest, EmpiricalEmitsSessionAndDecomposition) {
  MetricsRegistry registry;
  Tracer tracer;
  RunObserver observer(&registry, &tracer);
  EmpiricalBackend backend(SmallEmpiricalSetup());
  RunObserved(backend, &observer);
  EXPECT_EQ(registry.GetCounter("wsq.pull.sessions_total")->value(), 1);
  EXPECT_GT(registry.GetCounter("wsq.pull.parses_total")->value(), 0);
  const std::string chrome = tracer.ToChromeJson();
  EXPECT_NE(chrome.find("session_open"), std::string::npos);
  EXPECT_NE(chrome.find("session_close"), std::string::npos);
  EXPECT_NE(chrome.find("server_residence"), std::string::npos);
}

TEST(BackendObservabilityTest, GlobalObserverActsAsFallback) {
  MetricsRegistry registry;
  RunObserver observer(&registry, nullptr);
  SetGlobalRunObserver(&observer);
  ProfileBackend backend(SmallProfile(), SimOptions{});
  FixedController controller(700);
  Result<RunTrace> trace = backend.RunQuery(&controller, RunSpec{});
  SetGlobalRunObserver(nullptr);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(registry.GetCounter("wsq.pull.blocks_total")->value(),
            trace.value().total_blocks);
  // An explicit RunSpec observer wins over the global one.
  MetricsRegistry other;
  RunObserver preferred(&other, nullptr);
  RunSpec spec;
  spec.observer = &preferred;
  EXPECT_EQ(ResolveObserver(spec), &preferred);
}

TEST(RunStatsTest, FromTraceDistillsTotalsAndDeadTime) {
  RunTrace trace;
  trace.backend_name = "test";
  trace.controller_name = "fixed_1000";
  trace.total_time_ms = 150.0;
  trace.total_blocks = 2;
  trace.total_tuples = 1500;
  trace.total_retries = 1;
  RunStep a;
  a.step = 0;
  a.requested_size = 1000;
  a.received_tuples = 1000;
  a.block_time_ms = 60.0;
  a.per_tuple_ms = 0.06;
  RunStep b;
  b.step = 1;
  b.requested_size = 1000;
  b.received_tuples = 500;
  b.block_time_ms = 40.0;
  b.per_tuple_ms = 0.08;
  b.retries = 1;
  b.adaptivity_step = 1;
  trace.steps = {a, b};

  RunStats stats = RunStats::FromTrace(trace);
  EXPECT_EQ(stats.backend_name, "test");
  EXPECT_EQ(stats.total_blocks, 2);
  EXPECT_EQ(stats.total_tuples, 1500);
  EXPECT_EQ(stats.adaptivity_steps, 1);
  EXPECT_DOUBLE_EQ(stats.dead_time_ms, 50.0);  // 150 - (60 + 40)
  EXPECT_DOUBLE_EQ(stats.throughput_tuples_per_s, 1500.0 / 0.150);
  EXPECT_EQ(stats.block_time_ms.count(), 2);
  EXPECT_DOUBLE_EQ(stats.block_time_ms.mean(), 50.0);

  StateSnapshot snapshot = stats.ToSnapshot();
  EXPECT_EQ(*snapshot.Find("backend"), "test");
  EXPECT_TRUE(snapshot.Number("dead_time_ms").ok());

  MetricsRegistry registry;
  stats.RecordTo(registry);
  EXPECT_EQ(registry.GetCounter("wsq.run.runs_total")->value(), 1);
  EXPECT_EQ(registry.GetCounter("wsq.run.tuples_total")->value(), 1500);
  EXPECT_EQ(registry.GetHistogram("wsq.run.total_time_ms")->count(), 1);
}

}  // namespace
}  // namespace wsq
