#include "wsq/obs/json_lite.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_TRUE(CheckJson(JsonNumber(1.0 / 3.0)).ok());
}

TEST(CheckJsonTest, AcceptsWellFormedValues) {
  EXPECT_TRUE(CheckJson("{}").ok());
  EXPECT_TRUE(CheckJson("[]").ok());
  EXPECT_TRUE(CheckJson("null").ok());
  EXPECT_TRUE(CheckJson("-1.5e-3").ok());
  EXPECT_TRUE(CheckJson("\"a \\u00e9 b\"").ok());
  EXPECT_TRUE(
      CheckJson("{\"a\":[1,2,{\"b\":false}],\"c\":\"x\"}").ok());
}

TEST(CheckJsonTest, RejectsMalformedValues) {
  EXPECT_FALSE(CheckJson("").ok());
  EXPECT_FALSE(CheckJson("{").ok());
  EXPECT_FALSE(CheckJson("[1,]").ok());
  EXPECT_FALSE(CheckJson("{\"a\":}").ok());
  EXPECT_FALSE(CheckJson("{'a':1}").ok());
  EXPECT_FALSE(CheckJson("NaN").ok());
  EXPECT_FALSE(CheckJson("01").ok());
  EXPECT_FALSE(CheckJson("{} trailing").ok());
  EXPECT_FALSE(CheckJson("\"unterminated").ok());
}

TEST(CheckChromeTraceTest, AcceptsMinimalDocument) {
  const char* doc =
      "{\"traceEvents\":["
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\"pid\":1,\"tid\":1},"
      "{\"name\":\"i\",\"ph\":\"i\",\"ts\":2,\"pid\":1,\"tid\":1}"
      "],\"displayTimeUnit\":\"ms\"}";
  Status status = CheckChromeTrace(doc);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(CheckChromeTraceTest, RejectsMissingRequiredMembers) {
  // No traceEvents member at all.
  EXPECT_FALSE(CheckChromeTrace("{}").ok());
  // Top level is not an object.
  EXPECT_FALSE(CheckChromeTrace("[]").ok());
  // Event missing "ts".
  EXPECT_FALSE(
      CheckChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\","
                       "\"pid\":1,\"tid\":1}]}")
          .ok());
  // Complete event missing "dur".
  EXPECT_FALSE(
      CheckChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                       "\"ts\":0,\"pid\":1,\"tid\":1}]}")
          .ok());
  // Event is not an object.
  EXPECT_FALSE(CheckChromeTrace("{\"traceEvents\":[42]}").ok());
}

}  // namespace
}  // namespace wsq
