// Property sweeps across whole families of environments: for any
// profile in the family and any seed, the paper's qualitative claims
// about the controllers must hold.

#include <gtest/gtest.h>

#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/sim/experiment.h"
#include "wsq/sim/ground_truth.h"
#include "wsq/sim/profile.h"

namespace wsq {
namespace {

/// A family of environments parameterized by where the paging knee sits
/// and how noisy measurements are.
struct Environment {
  double buffer_tuples;
  double noise;
  uint64_t seed;
};

ParametricProfile MakeProfile(const Environment& env) {
  ParametricProfile::Params p;
  p.name = "family";
  p.dataset_tuples = 200000;
  p.overhead_ms = 120.0;
  p.per_tuple_ms = 0.05;
  p.paging_ms = 1.2e-3;
  p.buffer_tuples = env.buffer_tuples;
  return ParametricProfile(p);
}

SimOptions Options(const Environment& env) {
  SimOptions options;
  options.noise_amplitude = env.noise;
  options.seed = env.seed;
  return options;
}

class EnvironmentSweepTest : public ::testing::TestWithParam<Environment> {
 protected:
  static ControllerFactoryFn Hybrid() {
    return []() {
      HybridConfig config = PaperHybridConfig();
      config.base.b1 = 1200.0;
      return std::unique_ptr<Controller>(new HybridController(config));
    };
  }
  static ControllerFactoryFn Constant() {
    return []() {
      SwitchingConfig config = PaperSwitchingConfig();
      config.b1 = 1200.0;
      return std::unique_ptr<Controller>(
          new SwitchingExtremumController(config));
    };
  }
};

TEST_P(EnvironmentSweepTest, HybridStaysWithinFortyPercentOfOptimum) {
  const Environment env = GetParam();
  ParametricProfile profile = MakeProfile(env);
  Result<GroundTruth> gt = ComputeGroundTruth(
      profile, PaperSwitchingConfig().limits, 500, 4, Options(env));
  ASSERT_TRUE(gt.ok());

  Result<RepeatedRunSummary> summary =
      RunRepeated(Hybrid(), profile, 6, Options(env));
  ASSERT_TRUE(summary.ok());
  EXPECT_LT(summary.value().NormalizedMean(gt.value().optimum_mean_ms),
            1.4)
      << "buffer=" << env.buffer_tuples << " noise=" << env.noise;
}

TEST_P(EnvironmentSweepTest, HybridNeverMuchWorseThanConstant) {
  const Environment env = GetParam();
  ParametricProfile profile = MakeProfile(env);

  Result<RepeatedRunSummary> hybrid =
      RunRepeated(Hybrid(), profile, 6, Options(env));
  Result<RepeatedRunSummary> constant =
      RunRepeated(Constant(), profile, 6, Options(env));
  ASSERT_TRUE(hybrid.ok());
  ASSERT_TRUE(constant.ok());
  // Robustness claim: the hybrid may win or tie, but must never blow up
  // relative to its own transient-phase controller.
  EXPECT_LT(hybrid.value().total_time_ms.mean(),
            constant.value().total_time_ms.mean() * 1.15)
      << "buffer=" << env.buffer_tuples << " noise=" << env.noise;
}

TEST_P(EnvironmentSweepTest, CommandsAlwaysWithinLimits) {
  const Environment env = GetParam();
  ParametricProfile profile = MakeProfile(env);
  const BlockSizeLimits limits = PaperSwitchingConfig().limits;

  for (const char* name : {"constant", "adaptive", "hybrid", "mimd"}) {
    auto controller = ControllerFactory::FromName(name);
    ASSERT_TRUE(controller.ok());
    SimEngine engine(Options(env));
    Result<SimRunResult> run =
        engine.RunQuery(controller.value().get(), profile);
    ASSERT_TRUE(run.ok()) << name;
    for (const SimStep& step : run.value().steps) {
      EXPECT_GE(step.block_size, limits.min_size) << name;
      EXPECT_LE(step.block_size, limits.max_size) << name;
    }
  }
}

TEST_P(EnvironmentSweepTest, EveryControllerDeliversTheWholeDataset) {
  const Environment env = GetParam();
  ParametricProfile profile = MakeProfile(env);
  for (const char* name :
       {"fixed:700", "constant", "adaptive", "hybrid", "hybrid_s", "mimd",
        "model_quadratic", "model_parabolic", "self_tuning"}) {
    auto controller = ControllerFactory::FromName(name);
    ASSERT_TRUE(controller.ok());
    SimEngine engine(Options(env));
    Result<SimRunResult> run =
        engine.RunQuery(controller.value().get(), profile);
    ASSERT_TRUE(run.ok()) << name;
    EXPECT_EQ(run.value().total_tuples, profile.dataset_tuples()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BufferAndNoiseSweep, EnvironmentSweepTest,
    ::testing::Values(Environment{3000.0, 0.05, 101},
                      Environment{3000.0, 0.15, 102},
                      Environment{6000.0, 0.05, 103},
                      Environment{6000.0, 0.15, 104},
                      Environment{9000.0, 0.10, 105},
                      Environment{12000.0, 0.05, 106},
                      Environment{12000.0, 0.20, 107},
                      Environment{16000.0, 0.10, 108}));

/// Seeds sweep: determinism and seed-sensitivity of a full adaptive run.
class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, RunsAreDeterministicPerSeed) {
  ParametricProfile profile = MakeProfile({6000.0, 0.12, GetParam()});
  SimOptions options;
  options.noise_amplitude = 0.12;
  options.seed = GetParam();

  auto run_once = [&]() {
    HybridController controller(PaperHybridConfig());
    SimEngine engine(options);
    return engine.RunQuery(&controller, profile).value().total_time_ms;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace wsq
