#include "wsq/control/watchdog_controller.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "wsq/control/factories.h"
#include "wsq/control/fixed_controller.h"

namespace wsq {
namespace {

/// A deliberately broken control law: emits a scripted sequence of raw
/// outputs (possibly absurd) and records what measurements it was fed.
class ScriptedController : public Controller {
 public:
  explicit ScriptedController(std::vector<int64_t> outputs)
      : outputs_(std::move(outputs)) {}

  int64_t initial_block_size() const override { return initial_; }
  int64_t NextBlockSize(double response_time_ms) override {
    fed_.push_back(response_time_ms);
    ++steps_;
    if (outputs_.empty()) return 1000;
    const int64_t out = outputs_[next_ % outputs_.size()];
    ++next_;
    return out;
  }
  int64_t adaptivity_steps() const override { return steps_; }
  void Reset() override {
    ++resets_;
    next_ = 0;
  }
  std::string name() const override { return "scripted"; }

  int64_t initial_ = 1000;
  std::vector<int64_t> outputs_;
  std::vector<double> fed_;
  size_t next_ = 0;
  int64_t steps_ = 0;
  int64_t resets_ = 0;
};

TEST(WatchdogControllerTest, PassesThroughSaneDecisions) {
  auto inner = std::make_unique<ScriptedController>(
      std::vector<int64_t>{500, 900, 1500});
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  EXPECT_EQ(watchdog.initial_block_size(), 1000);
  EXPECT_EQ(watchdog.NextBlockSize(10.0), 500);
  EXPECT_EQ(watchdog.NextBlockSize(12.0), 900);
  EXPECT_EQ(watchdog.NextBlockSize(11.0), 1500);
  EXPECT_EQ(watchdog.bad_inputs(), 0);
  EXPECT_EQ(watchdog.clamped_outputs(), 0);
  EXPECT_EQ(watchdog.watchdog_resets(), 0);
  EXPECT_EQ(watchdog.name(), "watchdog(scripted)");
}

TEST(WatchdogControllerTest, ClampsOutOfRangeOutputs) {
  auto inner = std::make_unique<ScriptedController>(
      std::vector<int64_t>{-50, 1000000});
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  EXPECT_EQ(watchdog.NextBlockSize(10.0), 100);    // limits.min_size
  EXPECT_EQ(watchdog.NextBlockSize(10.0), 20000);  // limits.max_size
  EXPECT_EQ(watchdog.clamped_outputs(), 2);
}

TEST(WatchdogControllerTest, ClampsInitialCommand) {
  auto inner =
      std::make_unique<ScriptedController>(std::vector<int64_t>{1000});
  inner->initial_ = 999999;
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  EXPECT_EQ(watchdog.initial_block_size(), 20000);
}

TEST(WatchdogControllerTest, SanitizesNonFiniteMeasurements) {
  auto inner =
      std::make_unique<ScriptedController>(std::vector<int64_t>{1000});
  ScriptedController* raw = inner.get();
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});

  watchdog.NextBlockSize(25.0);
  watchdog.NextBlockSize(std::numeric_limits<double>::quiet_NaN());
  watchdog.NextBlockSize(std::numeric_limits<double>::infinity());
  watchdog.NextBlockSize(-3.0);

  EXPECT_EQ(watchdog.bad_inputs(), 3);
  ASSERT_EQ(raw->fed_.size(), 4u);
  // The inner law never sees the poison — each bad measurement is
  // replaced with the last good one.
  EXPECT_DOUBLE_EQ(raw->fed_[1], 25.0);
  EXPECT_DOUBLE_EQ(raw->fed_[2], 25.0);
  EXPECT_DOUBLE_EQ(raw->fed_[3], 25.0);
  for (double fed : raw->fed_) EXPECT_TRUE(std::isfinite(fed));
}

TEST(WatchdogControllerTest, BadMeasurementBeforeAnyGoodOneUsesFallback) {
  auto inner =
      std::make_unique<ScriptedController>(std::vector<int64_t>{1000});
  ScriptedController* raw = inner.get();
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  watchdog.NextBlockSize(std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(raw->fed_.size(), 1u);
  EXPECT_DOUBLE_EQ(raw->fed_[0], 1.0);
}

TEST(WatchdogControllerTest, SustainedDivergenceTriggersReset) {
  WatchdogConfig config;
  config.window = 4;
  config.max_clamps_in_window = 3;
  config.min_steps_between_resets = 4;
  auto inner = std::make_unique<ScriptedController>(
      std::vector<int64_t>{-1, -1, -1, -1, -1, -1});
  ScriptedController* raw = inner.get();
  WatchdogController watchdog(std::move(inner), config);

  watchdog.NextBlockSize(10.0);
  watchdog.NextBlockSize(10.0);
  watchdog.NextBlockSize(10.0);
  EXPECT_EQ(raw->resets_, 0);
  // Fourth clamp in the window and past the refractory period: reset,
  // and the command restarts from the (clamped) initial size.
  const int64_t after_reset = watchdog.NextBlockSize(10.0);
  EXPECT_EQ(raw->resets_, 1);
  EXPECT_EQ(watchdog.watchdog_resets(), 1);
  EXPECT_EQ(after_reset, 1000);
}

TEST(WatchdogControllerTest, RefractoryPeriodSpacesResets) {
  WatchdogConfig config;
  config.window = 2;
  config.max_clamps_in_window = 2;
  config.min_steps_between_resets = 6;
  auto inner = std::make_unique<ScriptedController>(
      std::vector<int64_t>{-1});  // diverges on every step
  ScriptedController* raw = inner.get();
  WatchdogController watchdog(std::move(inner), config);

  for (int i = 0; i < 12; ++i) watchdog.NextBlockSize(10.0);
  // Divergence is continuous, but resets are spaced >= 6 steps apart:
  // the first fires at step 6, the second at step 12.
  EXPECT_EQ(raw->resets_, 2);
}

TEST(WatchdogControllerTest, ResetClearsCountersAndForwards) {
  auto inner = std::make_unique<ScriptedController>(
      std::vector<int64_t>{-1, 1000});
  ScriptedController* raw = inner.get();
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  watchdog.NextBlockSize(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(watchdog.bad_inputs(), 1);
  EXPECT_EQ(watchdog.clamped_outputs(), 1);
  watchdog.Reset();
  EXPECT_EQ(raw->resets_, 1);
  EXPECT_EQ(watchdog.bad_inputs(), 0);
  EXPECT_EQ(watchdog.clamped_outputs(), 0);
  EXPECT_EQ(watchdog.watchdog_resets(), 0);
}

TEST(WatchdogControllerTest, DebugStateExposesCountersAndInnerState) {
  auto inner =
      std::make_unique<ScriptedController>(std::vector<int64_t>{-1});
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  watchdog.NextBlockSize(std::numeric_limits<double>::quiet_NaN());

  const StateSnapshot state = watchdog.DebugState();
  EXPECT_EQ(state.Number("bad_inputs").value(), 1.0);
  EXPECT_EQ(state.Number("clamped_outputs").value(), 1.0);
  EXPECT_EQ(state.Number("watchdog_resets").value(), 0.0);
  // Inner controller state is nested under the "inner_" prefix.
  ASSERT_NE(state.Find("inner_name"), nullptr);
  EXPECT_EQ(*state.Find("inner_name"), "scripted");
}

TEST(WatchdogControllerTest, AdaptivityStepsForwardToInner) {
  auto inner =
      std::make_unique<ScriptedController>(std::vector<int64_t>{500});
  WatchdogController watchdog(std::move(inner), WatchdogConfig{});
  EXPECT_EQ(watchdog.adaptivity_steps(), 0);
  watchdog.NextBlockSize(10.0);
  watchdog.NextBlockSize(10.0);
  EXPECT_EQ(watchdog.adaptivity_steps(), 2);
}

TEST(WithWatchdogFactoryTest, WrapsAndPropagatesNull) {
  ControllerFactoryFn wrapped =
      WithWatchdog(FixedFactory(700));
  std::unique_ptr<Controller> controller = wrapped();
  ASSERT_NE(controller, nullptr);
  EXPECT_EQ(controller->name(), "watchdog(fixed_700)");

  ControllerFactoryFn null_inner = WithWatchdog([] {
    return std::unique_ptr<Controller>();
  });
  EXPECT_EQ(null_inner(), nullptr);
}

}  // namespace
}  // namespace wsq
