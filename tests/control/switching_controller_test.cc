#include "wsq/control/switching_controller.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace wsq {
namespace {

SwitchingConfig BaseConfig() {
  SwitchingConfig config;
  config.gain_mode = GainMode::kConstant;
  config.b1 = 1000.0;
  config.b2 = 25.0;
  config.dither_factor = 0.0;  // deterministic unless a test wants dither
  config.averaging_horizon = 1;
  config.limits = {100, 20000};
  config.initial_block_size = 1000;
  config.seed = 1;
  return config;
}

/// Convex per-tuple cost bowl with minimum at `optimum`.
double Bowl(double x, double optimum) {
  const double z = (x - optimum) / optimum;
  return 1.0 + z * z;
}

TEST(SwitchingConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig().Validate().ok());
  SwitchingConfig bad = BaseConfig();
  bad.b1 = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.b2 = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.dither_factor = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.averaging_horizon = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.limits = {500, 100};
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.initial_block_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SwitchingControllerTest, FirstStepIncreasesByB1) {
  SwitchingExtremumController controller(BaseConfig());
  EXPECT_EQ(controller.initial_block_size(), 1000);
  const int64_t next = controller.NextBlockSize(5.0);
  EXPECT_EQ(next, 2000);  // +b1, no dither
  EXPECT_EQ(controller.adaptivity_steps(), 1);
  EXPECT_EQ(controller.last_gain(), 1000.0);
}

TEST(SwitchingControllerTest, GrowsWhileImproving) {
  // Response per tuple falls as x grows: the controller must keep
  // increasing the block size.
  SwitchingExtremumController controller(BaseConfig());
  int64_t x = controller.initial_block_size();
  x = controller.NextBlockSize(10.0);
  int64_t prev = x;
  for (int i = 0; i < 5; ++i) {
    x = controller.NextBlockSize(10.0 * 1000.0 / static_cast<double>(prev));
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(SwitchingControllerTest, ShrinksWhenDegrading) {
  // Growing hurt: y increases with x. After the forced first step up,
  // the controller must reverse.
  SwitchingExtremumController controller(BaseConfig());
  int64_t x = controller.initial_block_size();
  x = controller.NextBlockSize(1.0);        // first step: 1000 -> 2000
  int64_t next = controller.NextBlockSize(2.0);  // got worse
  EXPECT_LT(next, x);
}

TEST(SwitchingControllerTest, ConstantGainOscillatesAroundOptimum) {
  SwitchingConfig config = BaseConfig();
  config.b1 = 500.0;
  SwitchingExtremumController controller(config);
  int64_t x = controller.initial_block_size();
  std::vector<int64_t> tail;
  for (int i = 0; i < 60; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    if (i >= 40) tail.push_back(x);
  }
  // The saw-tooth must hover around the optimum.
  double mean = 0.0;
  for (int64_t v : tail) mean += static_cast<double>(v);
  mean /= static_cast<double>(tail.size());
  EXPECT_NEAR(mean, 5000.0, 1200.0);
  // ... and oscillate rather than converge.
  int64_t lo = tail.front();
  int64_t hi = tail.front();
  for (int64_t v : tail) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(hi - lo, 500);
}

TEST(SwitchingControllerTest, AdaptiveGainShrinksNearOptimum) {
  SwitchingConfig config = BaseConfig();
  config.gain_mode = GainMode::kAdaptive;
  config.initial_block_size = 4500;  // near the optimum at 5000
  config.dither_factor = 10.0;
  SwitchingExtremumController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 40; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
  }
  // Near the bowl's bottom relative dy is tiny, so adaptive steps are
  // small and the operating point stays close.
  EXPECT_NEAR(static_cast<double>(x), 5000.0, 1500.0);
  EXPECT_LT(controller.last_gain(), 500.0);
}

TEST(SwitchingControllerTest, LimitsClampCommands) {
  SwitchingConfig config = BaseConfig();
  config.b1 = 50000.0;  // one step overshoots any limit
  SwitchingExtremumController controller(config);
  EXPECT_EQ(controller.NextBlockSize(1.0), 20000);  // clamped at max
  // Force decreases repeatedly: y grows -> shrink, clamped at min.
  int64_t x = 20000;
  for (int i = 0; i < 5; ++i) {
    x = controller.NextBlockSize(static_cast<double>(i + 2));
  }
  EXPECT_EQ(x, 100);
}

TEST(SwitchingControllerTest, AveragingSmoothsNoiseSpike) {
  // With n=3, a single corrupted measurement must not flip the
  // direction decision that the clean trend implies.
  SwitchingConfig smooth = BaseConfig();
  smooth.averaging_horizon = 3;
  SwitchingExtremumController controller(smooth);
  int64_t x = controller.initial_block_size();
  // Feed a falling trend with one spike.
  const double ys[] = {10.0, 9.0, 8.0, 30.0, 7.0, 6.5, 6.0};
  int64_t prev = x;
  int drops = 0;
  for (double y : ys) {
    x = controller.NextBlockSize(y);
    if (x < prev) ++drops;
    prev = x;
  }
  // At most one reversal despite the spike.
  EXPECT_LE(drops, 1);
}

TEST(SwitchingControllerTest, DitherKeepsProbing) {
  SwitchingConfig config = BaseConfig();
  config.dither_factor = 50.0;
  SwitchingExtremumController controller(config);
  int64_t x = controller.initial_block_size();
  std::set<int64_t> values;
  for (int i = 0; i < 30; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    values.insert(x);
  }
  // Dither must produce off-grid values (not only multiples of b1).
  int off_grid = 0;
  for (int64_t v : values) {
    if ((v - 1000) % 1000 != 0) ++off_grid;
  }
  EXPECT_GT(off_grid, 5);
}

TEST(SwitchingControllerTest, HistoriesTrackSteps) {
  SwitchingExtremumController controller(BaseConfig());
  for (int i = 0; i < 10; ++i) {
    controller.NextBlockSize(Bowl(4000, 5000.0) + i * 0.01);
  }
  EXPECT_EQ(controller.adaptivity_steps(), 10);
  // Signs start from the second step.
  EXPECT_EQ(controller.sign_history().size(), 9u);
  EXPECT_EQ(controller.averaged_input_history().size(), 10u);
  for (int s : controller.sign_history()) {
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(SwitchingControllerTest, ResetRestoresInitialState) {
  SwitchingConfig config = BaseConfig();
  config.dither_factor = 25.0;
  SwitchingExtremumController controller(config);
  std::vector<int64_t> first;
  for (int i = 0; i < 8; ++i) {
    first.push_back(controller.NextBlockSize(Bowl(2000, 5000.0)));
  }
  controller.Reset();
  EXPECT_EQ(controller.adaptivity_steps(), 0);
  EXPECT_TRUE(controller.sign_history().empty());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(controller.NextBlockSize(Bowl(2000, 5000.0)), first[i]);
  }
}

TEST(SwitchingControllerTest, SetCommandClampsToLimits) {
  SwitchingExtremumController controller(BaseConfig());
  controller.set_command(50.0);
  EXPECT_EQ(controller.NextBlockSize(1.0), 100 + 1000);  // clamped then +b1
  controller.set_command(1e9);
  // Second step: direction depends on deltas, but the command base is
  // clamped to the max.
  const int64_t next = controller.NextBlockSize(1.0);
  EXPECT_LE(next, 20000);
}

TEST(SwitchingControllerTest, ResetDeltasHoldsPosition) {
  SwitchingExtremumController controller(BaseConfig());
  controller.NextBlockSize(5.0);  // 1000 -> 2000
  controller.ResetDeltas(/*hold_position=*/true);
  // Next step must hold (no +b1, no movement since dither is 0).
  EXPECT_EQ(controller.NextBlockSize(5.0), 2000);
  // The step after that resumes normal control.
  EXPECT_NE(controller.NextBlockSize(4.0), 2000);
}

TEST(SwitchingControllerTest, GainModeSwitchMidFlight) {
  SwitchingExtremumController controller(BaseConfig());
  controller.NextBlockSize(5.0);
  controller.NextBlockSize(4.0);
  EXPECT_EQ(controller.gain_mode(), GainMode::kConstant);
  controller.set_gain_mode(GainMode::kAdaptive);
  controller.NextBlockSize(3.9);
  // Adaptive gain is proportional, not b1.
  EXPECT_NE(controller.last_gain(), BaseConfig().b1);
}

TEST(SwitchingControllerTest, NamesReflectMode) {
  EXPECT_EQ(SwitchingExtremumController(BaseConfig()).name(),
            "constant_gain");
  SwitchingConfig adaptive = BaseConfig();
  adaptive.gain_mode = GainMode::kAdaptive;
  EXPECT_EQ(SwitchingExtremumController(adaptive).name(), "adaptive_gain");
  EXPECT_EQ(GainModeName(GainMode::kConstant), "constant_gain");
  EXPECT_EQ(GainModeName(GainMode::kAdaptive), "adaptive_gain");
}

/// Property sweep: for any bowl optimum and starting point, the constant
/// gain controller's late-phase mean must land near the optimum.
struct BowlCase {
  double optimum;
  int64_t start;
};

class SwitchingBowlTest : public ::testing::TestWithParam<BowlCase> {};

TEST_P(SwitchingBowlTest, ConstantGainTracksBowl) {
  SwitchingConfig config = BaseConfig();
  config.b1 = 600.0;
  config.averaging_horizon = 3;
  config.initial_block_size = GetParam().start;
  SwitchingExtremumController controller(config);

  int64_t x = controller.initial_block_size();
  double late_mean = 0.0;
  int late_count = 0;
  for (int i = 0; i < 120; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x),
                                      GetParam().optimum));
    if (i >= 80) {
      late_mean += static_cast<double>(x);
      ++late_count;
    }
  }
  late_mean /= late_count;
  EXPECT_NEAR(late_mean, GetParam().optimum,
              std::max(1500.0, GetParam().optimum * 0.35));
}

INSTANTIATE_TEST_SUITE_P(
    BowlSweep, SwitchingBowlTest,
    ::testing::Values(BowlCase{3000.0, 500}, BowlCase{5000.0, 1000},
                      BowlCase{8000.0, 1000}, BowlCase{8000.0, 18000},
                      BowlCase{12000.0, 2000}, BowlCase{4000.0, 15000}));

}  // namespace
}  // namespace wsq
