#include "wsq/control/hybrid_controller.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wsq {
namespace {

HybridConfig BaseConfig() {
  HybridConfig config;
  config.base.gain_mode = GainMode::kConstant;
  config.base.b1 = 800.0;
  config.base.b2 = 25.0;
  config.base.dither_factor = 0.0;
  config.base.averaging_horizon = 1;
  config.base.limits = {100, 20000};
  config.base.initial_block_size = 1000;
  config.base.seed = 1;
  config.criterion = PhaseCriterion::kSignSwitches;
  config.criterion_horizon = 5;
  config.criterion_threshold = 1;
  config.flavor = HybridFlavor::kNoSwitchBack;
  return config;
}

double Bowl(double x, double optimum) {
  const double z = (x - optimum) / optimum;
  return 1.0 + z * z;
}

TEST(HybridConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig().Validate().ok());

  HybridConfig bad = BaseConfig();
  bad.base.b1 = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = BaseConfig();
  bad.criterion_horizon = 1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = BaseConfig();
  bad.criterion_threshold = -1;
  EXPECT_FALSE(bad.Validate().ok());

  // Parity rule: s must share parity with n'.
  bad = BaseConfig();
  bad.criterion_horizon = 5;
  bad.criterion_threshold = 2;
  EXPECT_FALSE(bad.Validate().ok());
  bad.criterion_horizon = 4;
  EXPECT_TRUE(bad.Validate().ok());

  bad = BaseConfig();
  bad.reset_period = -1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(HybridControllerTest, StartsInTransientConstantMode) {
  HybridController controller(BaseConfig());
  EXPECT_EQ(controller.phase(), GainPhase::kTransient);
  EXPECT_EQ(controller.initial_block_size(), 1000);
  const int64_t next = controller.NextBlockSize(5.0);
  EXPECT_EQ(next, 1800);  // first step: +b1
}

TEST(HybridControllerTest, SwitchesToSteadyStateOnBowl) {
  HybridController controller(BaseConfig());
  int64_t x = controller.initial_block_size();
  int64_t switch_step = -1;
  for (int i = 0; i < 60; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    if (switch_step < 0 && controller.phase() == GainPhase::kSteadyState) {
      switch_step = i;
    }
  }
  ASSERT_GE(switch_step, 0) << "hybrid never detected steady state";
  EXPECT_EQ(controller.phase_transitions(), 1);
  // After the switch the operating point must be near the optimum and
  // stable (adaptive refinement, no saw-tooth).
  EXPECT_NEAR(static_cast<double>(x), 5000.0, 1500.0);
}

TEST(HybridControllerTest, SteadyStateIsMoreStableThanConstantGain) {
  HybridConfig config = BaseConfig();
  HybridController hybrid(config);
  SwitchingConfig constant_config = config.base;
  SwitchingExtremumController constant(constant_config);

  auto run_tail_amplitude = [](Controller& controller) {
    int64_t x = controller.initial_block_size();
    int64_t lo = 1 << 30;
    int64_t hi = 0;
    for (int i = 0; i < 80; ++i) {
      x = controller.NextBlockSize(Bowl(static_cast<double>(x), 6000.0));
      if (i >= 50) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
    return hi - lo;
  };

  const int64_t hybrid_amplitude = run_tail_amplitude(hybrid);
  const int64_t constant_amplitude = run_tail_amplitude(constant);
  EXPECT_LT(hybrid_amplitude, constant_amplitude);
  EXPECT_GE(constant_amplitude, config.base.b1);
}

TEST(HybridControllerTest, NoSwitchBackStaysAdaptive) {
  HybridController controller(BaseConfig());
  int64_t x = controller.initial_block_size();
  // Converge, then move the optimum: the no-switch-back flavor must stay
  // in the steady-state phase.
  for (int i = 0; i < 40; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
  }
  ASSERT_EQ(controller.phase(), GainPhase::kSteadyState);
  for (int i = 0; i < 40; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 12000.0));
  }
  EXPECT_EQ(controller.phase(), GainPhase::kSteadyState);
  EXPECT_EQ(controller.phase_transitions(), 1);
}

TEST(HybridControllerTest, SwitchBackFlavorReturnsToConstant) {
  HybridConfig config = BaseConfig();
  config.flavor = HybridFlavor::kSwitchBack;
  config.base.dither_factor = 40.0;  // probing so the shift is noticed
  HybridController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0;
       i < 150 && controller.phase() == GainPhase::kTransient; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
  }
  ASSERT_EQ(controller.phase(), GainPhase::kSteadyState);
  // Shift the optimum far away; the consistent signs should trigger
  // re-entry into the transient phase.
  for (int i = 0; i < 60 && controller.phase() == GainPhase::kSteadyState;
       ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 15000.0));
  }
  EXPECT_EQ(controller.phase(), GainPhase::kTransient);
  EXPECT_GE(controller.phase_transitions(), 2);
}

TEST(HybridControllerTest, PeriodicResetReturnsToTransient) {
  HybridConfig config = BaseConfig();
  config.reset_period = 20;
  HybridController controller(config);
  int64_t x = controller.initial_block_size();
  bool saw_steady = false;
  bool saw_transient_after_steady = false;
  for (int i = 0; i < 100; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    if (controller.phase() == GainPhase::kSteadyState) saw_steady = true;
    if (saw_steady && controller.phase() == GainPhase::kTransient) {
      saw_transient_after_steady = true;
    }
  }
  EXPECT_TRUE(saw_steady);
  EXPECT_TRUE(saw_transient_after_steady);
  EXPECT_GE(controller.phase_transitions(), 2);
}

TEST(HybridControllerTest, PeriodicResetTracksMovingOptimum) {
  // Fig. 8 scenario in miniature: optimum jumps, the resetting hybrid
  // must re-track it; the plain no-switch-back one must not.
  auto run = [](int64_t reset_period, double final_optimum) {
    HybridConfig config = BaseConfig();
    config.reset_period = reset_period;
    HybridController controller(config);
    int64_t x = controller.initial_block_size();
    for (int i = 0; i < 80; ++i) {
      x = controller.NextBlockSize(Bowl(static_cast<double>(x), 4000.0));
    }
    for (int i = 0; i < 120; ++i) {
      x = controller.NextBlockSize(
          Bowl(static_cast<double>(x), final_optimum));
    }
    return x;
  };
  const int64_t with_reset = run(25, 12000.0);
  const int64_t without_reset = run(0, 12000.0);
  EXPECT_NEAR(static_cast<double>(with_reset), 12000.0, 3000.0);
  EXPECT_LT(std::fabs(static_cast<double>(with_reset) - 12000.0),
            std::fabs(static_cast<double>(without_reset) - 12000.0));
}

TEST(HybridControllerTest, Eq6CriterionAlsoDetectsSteadyState) {
  HybridConfig config = BaseConfig();
  config.criterion = PhaseCriterion::kWindowMeans;
  HybridController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 80; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
  }
  EXPECT_EQ(controller.phase(), GainPhase::kSteadyState);
}

TEST(HybridControllerTest, Eq5FiresNoLaterThanEq6OnCleanBowl) {
  auto steps_to_steady = [](PhaseCriterion criterion) {
    HybridConfig config = BaseConfig();
    config.criterion = criterion;
    HybridController controller(config);
    int64_t x = controller.initial_block_size();
    for (int i = 0; i < 200; ++i) {
      x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
      if (controller.phase() == GainPhase::kSteadyState) return i;
    }
    return 200;
  };
  EXPECT_LE(steps_to_steady(PhaseCriterion::kSignSwitches),
            steps_to_steady(PhaseCriterion::kWindowMeans));
}

TEST(HybridControllerTest, ResetRestoresEverything) {
  HybridController controller(BaseConfig());
  int64_t x = controller.initial_block_size();
  std::vector<int64_t> first;
  for (int i = 0; i < 30; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    first.push_back(x);
  }
  controller.Reset();
  EXPECT_EQ(controller.phase(), GainPhase::kTransient);
  EXPECT_EQ(controller.phase_transitions(), 0);
  EXPECT_EQ(controller.adaptivity_steps(), 0);
  x = controller.initial_block_size();
  for (int i = 0; i < 30; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    EXPECT_EQ(x, first[i]);
  }
}

TEST(HybridControllerTest, Names) {
  EXPECT_EQ(HybridController(BaseConfig()).name(), "hybrid");
  HybridConfig s = BaseConfig();
  s.flavor = HybridFlavor::kSwitchBack;
  EXPECT_EQ(HybridController(s).name(), "hybrid_s");
  HybridConfig eq6 = BaseConfig();
  eq6.criterion = PhaseCriterion::kWindowMeans;
  EXPECT_EQ(HybridController(eq6).name(), "hybrid_eq6");
  HybridConfig reset = BaseConfig();
  reset.reset_period = 50;
  EXPECT_EQ(HybridController(reset).name(), "hybrid_reset50");
  EXPECT_EQ(PhaseCriterionName(PhaseCriterion::kSignSwitches),
            "sign_switches");
  EXPECT_EQ(PhaseCriterionName(PhaseCriterion::kWindowMeans),
            "window_means");
}

/// Property sweep over criterion parameters: steady state must always be
/// detected on a clean bowl, for any valid (n', s).
struct CriterionCase {
  int horizon;
  int threshold;
};

class HybridCriterionTest : public ::testing::TestWithParam<CriterionCase> {};

TEST_P(HybridCriterionTest, DetectsSteadyStateOnCleanBowl) {
  HybridConfig config = BaseConfig();
  config.criterion_horizon = GetParam().horizon;
  config.criterion_threshold = GetParam().threshold;
  ASSERT_TRUE(config.Validate().ok());
  HybridController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 150; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
  }
  EXPECT_EQ(controller.phase(), GainPhase::kSteadyState);
}

INSTANTIATE_TEST_SUITE_P(
    CriterionSweep, HybridCriterionTest,
    ::testing::Values(CriterionCase{3, 1}, CriterionCase{5, 1},
                      CriterionCase{7, 1}, CriterionCase{4, 2},
                      CriterionCase{6, 2}, CriterionCase{9, 3}));

}  // namespace
}  // namespace wsq
