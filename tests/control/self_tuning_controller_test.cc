#include "wsq/control/self_tuning_controller.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wsq {
namespace {

SelfTuningConfig BaseConfig(Continuation continuation) {
  SelfTuningConfig config;
  config.identification.model = IdentificationModel::kQuadratic;
  config.identification.num_samples = 6;
  config.identification.samples_per_size = 1;
  config.identification.limits = {100, 20000};
  config.continuation = continuation;
  config.controller.base.b1 = 800.0;
  config.controller.base.b2 = 25.0;
  config.controller.base.dither_factor = 0.0;
  config.controller.base.averaging_horizon = 1;
  config.controller.base.limits = {100, 20000};
  config.controller.base.initial_block_size = 1000;
  config.controller.base.seed = 2;
  return config;
}

double Bowl(double x, double optimum) {
  const double z = (x - optimum) / optimum;
  return 1.0 + z * z;
}

TEST(SelfTuningConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig(Continuation::kHybrid).Validate().ok());
  SelfTuningConfig bad = BaseConfig(Continuation::kHybrid);
  bad.identification.num_samples = 1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig(Continuation::kHybrid);
  bad.rls_forgetting = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig(Continuation::kHybrid);
  bad.rls_recenter_period = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig(Continuation::kHybrid);
  bad.rls_recenter_tolerance = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SelfTuningControllerTest, IdentifiesThenSeedsContinuation) {
  SelfTuningController controller(BaseConfig(Continuation::kHybrid));
  EXPECT_FALSE(controller.in_continuation());
  EXPECT_EQ(controller.seed_estimate().status().code(),
            StatusCode::kFailedPrecondition);

  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 7500.0));
  }
  EXPECT_TRUE(controller.in_continuation());
  auto seed = controller.seed_estimate();
  ASSERT_TRUE(seed.ok());
  EXPECT_NEAR(static_cast<double>(seed.value()), 7500.0, 500.0);
  // The continuation starts at the seed.
  EXPECT_NEAR(static_cast<double>(x), static_cast<double>(seed.value()),
              1.0);
}

TEST(SelfTuningControllerTest, FixedContinuationHoldsEstimate) {
  SelfTuningController controller(BaseConfig(Continuation::kFixed));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 7500.0));
  }
  const int64_t estimate = x;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.NextBlockSize(1.0), estimate);
  }
}

TEST(SelfTuningControllerTest, HybridContinuationRefinesTowardOptimum) {
  // Make the fit land off the true optimum by using an asymmetric cost;
  // the hybrid continuation should walk toward the real minimum.
  SelfTuningController controller(BaseConfig(Continuation::kHybrid));
  auto cost = [](double x) {
    // Asymmetric: quadratic + a 1/x term the quadratic fit mismodels.
    return 200.0 / x + 1.0 + 1.5e-9 * (x - 9000.0) * (x - 9000.0);
  };
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 80; ++i) {
    x = controller.NextBlockSize(cost(static_cast<double>(x)));
  }
  EXPECT_NEAR(static_cast<double>(x), 9000.0, 2500.0);
}

TEST(SelfTuningControllerTest, ConstantAndAdaptiveContinuationsRun) {
  for (Continuation continuation :
       {Continuation::kConstantGain, Continuation::kAdaptiveGain}) {
    SelfTuningController controller(BaseConfig(continuation));
    int64_t x = controller.initial_block_size();
    for (int i = 0; i < 30; ++i) {
      x = controller.NextBlockSize(Bowl(static_cast<double>(x), 7500.0));
      EXPECT_GE(x, 100);
      EXPECT_LE(x, 20000);
    }
    EXPECT_TRUE(controller.in_continuation());
    EXPECT_GT(controller.adaptivity_steps(), 6);
  }
}

TEST(SelfTuningControllerTest, RlsRecentersStagnantContinuation) {
  // Adaptive gain famously stagnates when the optimum moves away
  // (paper Fig. 4(a)); the RLS extension must rescue it: the dither
  // keeps the regressors locally excited, the forgetting factor ages
  // out pre-move data, and the analytic optimum of the refreshed model
  // re-seeds the controller.
  SelfTuningConfig config = BaseConfig(Continuation::kAdaptiveGain);
  config.controller.base.dither_factor = 100.0;  // local excitation
  config.enable_rls = true;
  config.rls_forgetting = 0.9;
  config.rls_recenter_period = 10;
  config.rls_recenter_tolerance = 0.5;
  SelfTuningController controller(config);

  int64_t x = controller.initial_block_size();
  // Identification on a bowl at 4000; the adaptive continuation parks
  // near its seed.
  for (int i = 0; i < 20; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 4000.0));
  }
  EXPECT_NEAR(static_cast<double>(x), 4000.0, 1200.0);
  // The optimum jumps to 12000. Stagnant adaptive gain would stay near
  // 4000 forever; the RLS model sees exact quadratic data through the
  // dither window and re-centers.
  for (int i = 0; i < 120; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 12000.0));
  }
  EXPECT_GE(controller.recenter_count(), 1);
  EXPECT_NEAR(static_cast<double>(x), 12000.0, 3000.0);
}

TEST(SelfTuningControllerTest, ResetRestartsIdentification) {
  SelfTuningController controller(BaseConfig(Continuation::kHybrid));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 10; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 7500.0));
  }
  ASSERT_TRUE(controller.in_continuation());
  controller.Reset();
  EXPECT_FALSE(controller.in_continuation());
  EXPECT_EQ(controller.adaptivity_steps(), 0);
  EXPECT_EQ(controller.recenter_count(), 0);
}

TEST(SelfTuningControllerTest, Names) {
  EXPECT_EQ(SelfTuningController(BaseConfig(Continuation::kHybrid)).name(),
            "model_quadratic+hybrid");
  SelfTuningConfig with_rls = BaseConfig(Continuation::kConstantGain);
  with_rls.enable_rls = true;
  with_rls.identification.model = IdentificationModel::kParabolic;
  EXPECT_EQ(SelfTuningController(with_rls).name(),
            "model_parabolic+constant_gain+rls");
  EXPECT_EQ(ContinuationName(Continuation::kFixed), "fixed");
  EXPECT_EQ(ContinuationName(Continuation::kAdaptiveGain), "adaptive_gain");
}

}  // namespace
}  // namespace wsq
