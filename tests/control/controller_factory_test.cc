#include "wsq/control/controller_factory.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(PaperConfigsTest, MatchPaperParameters) {
  const SwitchingConfig sw = PaperSwitchingConfig();
  EXPECT_EQ(sw.b1, 2000.0);
  EXPECT_EQ(sw.b2, 25.0);
  EXPECT_EQ(sw.dither_factor, 25.0);
  EXPECT_EQ(sw.averaging_horizon, 3);
  EXPECT_EQ(sw.limits.min_size, 100);
  EXPECT_EQ(sw.limits.max_size, 20000);
  EXPECT_EQ(sw.initial_block_size, 1000);
  EXPECT_TRUE(sw.Validate().ok());

  const HybridConfig hy = PaperHybridConfig();
  EXPECT_EQ(hy.criterion_horizon, 5);
  EXPECT_EQ(hy.criterion_threshold, 1);
  EXPECT_EQ(hy.criterion, PhaseCriterion::kSignSwitches);
  EXPECT_EQ(hy.flavor, HybridFlavor::kNoSwitchBack);
  EXPECT_TRUE(hy.Validate().ok());

  const ModelBasedConfig mb = PaperModelBasedConfig();
  EXPECT_EQ(mb.num_samples, 6);
  EXPECT_EQ(mb.samples_per_size, 1);
  EXPECT_TRUE(mb.Validate().ok());
}

TEST(ControllerFactoryTest, MakersValidateConfigs) {
  EXPECT_TRUE(ControllerFactory::MakeFixed(1000).ok());
  EXPECT_FALSE(ControllerFactory::MakeFixed(0).ok());

  SwitchingConfig bad_sw = PaperSwitchingConfig();
  bad_sw.b1 = -1;
  EXPECT_FALSE(ControllerFactory::MakeSwitching(bad_sw).ok());
  EXPECT_TRUE(ControllerFactory::MakeSwitching(PaperSwitchingConfig()).ok());

  HybridConfig bad_hy = PaperHybridConfig();
  bad_hy.criterion_horizon = 0;
  EXPECT_FALSE(ControllerFactory::MakeHybrid(bad_hy).ok());
  EXPECT_TRUE(ControllerFactory::MakeHybrid(PaperHybridConfig()).ok());

  MimdConfig bad_mimd;
  bad_mimd.factor = 0.5;
  EXPECT_FALSE(ControllerFactory::MakeMimd(bad_mimd).ok());

  EXPECT_TRUE(
      ControllerFactory::MakeModelBased(PaperModelBasedConfig()).ok());

  SelfTuningConfig st;
  st.identification = PaperModelBasedConfig();
  st.controller = PaperHybridConfig();
  EXPECT_TRUE(ControllerFactory::MakeSelfTuning(st).ok());
}

TEST(ControllerFactoryTest, FromNameKnownControllers) {
  const std::pair<const char*, const char*> cases[] = {
      {"constant", "constant_gain"}, {"adaptive", "adaptive_gain"},
      {"hybrid", "hybrid"},          {"hybrid_s", "hybrid_s"},
      {"mimd", "mimd"},              {"model_quadratic", "model_quadratic"},
      {"model_parabolic", "model_parabolic"},
      {"self_tuning", "model_quadratic+hybrid"}};
  for (const auto& [spec, expected_name] : cases) {
    auto controller = ControllerFactory::FromName(spec);
    ASSERT_TRUE(controller.ok()) << spec;
    EXPECT_EQ(controller.value()->name(), expected_name) << spec;
  }
}

TEST(ControllerFactoryTest, FromNameFixedWithSize) {
  auto controller = ControllerFactory::FromName("fixed:2500");
  ASSERT_TRUE(controller.ok());
  EXPECT_EQ(controller.value()->name(), "fixed_2500");
  EXPECT_EQ(controller.value()->initial_block_size(), 2500);
}

TEST(ControllerFactoryTest, FromNameRejectsBadSpecs) {
  EXPECT_FALSE(ControllerFactory::FromName("unknown").ok());
  EXPECT_FALSE(ControllerFactory::FromName("fixed:").ok());
  EXPECT_FALSE(ControllerFactory::FromName("fixed:abc").ok());
  EXPECT_FALSE(ControllerFactory::FromName("fixed:-5").ok());
  EXPECT_FALSE(ControllerFactory::FromName("fixed:12x").ok());
  EXPECT_FALSE(ControllerFactory::FromName("").ok());
  // Overflowing and absurd sizes are rejected, not silently clamped to
  // LLONG_MAX (which used to crash downstream allocations).
  EXPECT_FALSE(
      ControllerFactory::FromName("fixed:999999999999999999999").ok());
  EXPECT_FALSE(ControllerFactory::FromName("fixed:20000000").ok());
}

TEST(ControllerFactoryTest, CreatedControllersAreUsable) {
  for (const char* name :
       {"constant", "adaptive", "hybrid", "hybrid_s", "mimd",
        "model_quadratic", "model_parabolic", "self_tuning", "fixed:500"}) {
    auto controller = ControllerFactory::FromName(name);
    ASSERT_TRUE(controller.ok()) << name;
    int64_t x = controller.value()->initial_block_size();
    EXPECT_GE(x, 1) << name;
    for (int i = 0; i < 20; ++i) {
      x = controller.value()->NextBlockSize(1.0 + 0.001 * i);
      EXPECT_GE(x, 1) << name;
      EXPECT_LE(x, 20000) << name;
    }
    controller.value()->Reset();
    EXPECT_EQ(controller.value()->adaptivity_steps(), 0) << name;
  }
}

}  // namespace
}  // namespace wsq
