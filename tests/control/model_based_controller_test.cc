#include "wsq/control/model_based_controller.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wsq {
namespace {

ModelBasedConfig BaseConfig(IdentificationModel model) {
  ModelBasedConfig config;
  config.model = model;
  config.num_samples = 6;
  config.samples_per_size = 1;
  config.limits = {100, 20000};
  return config;
}

/// Quadratic per-tuple cost with vertex at `optimum`.
double QuadCost(double x, double optimum) {
  return 1.0 + 2e-9 * (x - optimum) * (x - optimum);
}

/// Parabolic cost a/x + b x + c with minimum at sqrt(a/b).
double ParabolicCost(double x) { return 5000.0 / x + 0.0002 * x + 1.0; }

TEST(ModelBasedConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig(IdentificationModel::kQuadratic).Validate().ok());
  ModelBasedConfig bad = BaseConfig(IdentificationModel::kQuadratic);
  bad.num_samples = 2;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig(IdentificationModel::kQuadratic);
  bad.samples_per_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig(IdentificationModel::kQuadratic);
  bad.limits = {100, 50};
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ModelBasedControllerTest, SampleSizesEvenlyDistributed) {
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kQuadratic));
  const auto& sizes = controller.sample_sizes();
  ASSERT_EQ(sizes.size(), 6u);
  EXPECT_EQ(sizes.front(), 100);
  EXPECT_EQ(sizes.back(), 20000);
  // Evenly spaced: constant gaps (within rounding).
  const int64_t gap = sizes[1] - sizes[0];
  for (size_t i = 2; i < sizes.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(sizes[i] - sizes[i - 1]),
                static_cast<double>(gap), 2.0);
  }
}

TEST(ModelBasedControllerTest, ProbesAllSamplesThenFixes) {
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kQuadratic));
  int64_t x = controller.initial_block_size();
  std::vector<int64_t> probed = {x};
  for (int i = 0; i < 5; ++i) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 9000.0));
    probed.push_back(x);
    EXPECT_FALSE(controller.identification_complete());
  }
  // Sixth measurement completes identification.
  x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 9000.0));
  EXPECT_TRUE(controller.identification_complete());
  // The first six commands are exactly the sample schedule.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(probed[i], controller.sample_sizes()[i]);
  }
  // From now on, fixed at the estimate.
  const int64_t estimate = x;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(controller.NextBlockSize(1.0), estimate);
  }
}

TEST(ModelBasedControllerTest, QuadraticFindsVertex) {
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kQuadratic));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 9000.0));
  }
  auto model = controller.identified_model();
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().failed);
  EXPECT_NEAR(static_cast<double>(model.value().optimum), 9000.0, 300.0);
  EXPECT_GT(model.value().fit.r_squared, 0.99);
}

TEST(ModelBasedControllerTest, ParabolicFindsMinimum) {
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kParabolic));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(ParabolicCost(static_cast<double>(x)));
  }
  auto model = controller.identified_model();
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().failed);
  // sqrt(5000 / 0.0002) = 5000.
  EXPECT_NEAR(static_cast<double>(model.value().optimum), 5000.0, 300.0);
}

TEST(ModelBasedControllerTest, QuadraticFailsOnDecreasingProfile) {
  // A monotonically decreasing cost (optimum at the upper limit) makes
  // the quadratic fit convex-down or flat: must flag and clamp.
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kQuadratic));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(5.0 * std::exp(-static_cast<double>(x) / 3000.0) + 1.0);
  }
  auto model = controller.identified_model();
  ASSERT_TRUE(model.ok());
  // Either a vertex beyond the limits (clamped to max) or a failure that
  // picks a limit; it must not sit in the interior low region.
  EXPECT_TRUE(model.value().optimum == 20000 ||
              model.value().optimum == 100 || !model.value().failed);
}

TEST(ModelBasedControllerTest, ParabolicFailureSelectsLimit) {
  // Decreasing-with-x cost: the parabolic fit sees b2 <= 0, the paper's
  // observed failure ("selecting the lower limit value" family).
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kParabolic));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(10.0 - static_cast<double>(x) * 1e-4);
  }
  auto model = controller.identified_model();
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model.value().failed);
  EXPECT_TRUE(model.value().optimum == 100 ||
              model.value().optimum == 20000);
}

TEST(ModelBasedControllerTest, SamplesPerSizeAveraging) {
  ModelBasedConfig config = BaseConfig(IdentificationModel::kQuadratic);
  config.samples_per_size = 3;
  ModelBasedController controller(config);
  int64_t x = controller.initial_block_size();
  int measurements = 0;
  while (!controller.identification_complete()) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 9000.0));
    ++measurements;
    ASSERT_LT(measurements, 100);
  }
  EXPECT_EQ(measurements, 18);  // 6 sizes x 3 measurements
  auto model = controller.identified_model();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(static_cast<double>(model.value().optimum), 9000.0, 300.0);
}

TEST(ModelBasedControllerTest, IdentifiedModelUnavailableDuringSampling) {
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kQuadratic));
  EXPECT_EQ(controller.identified_model().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ModelBasedControllerTest, ResetRestartsSampling) {
  ModelBasedController controller(
      BaseConfig(IdentificationModel::kQuadratic));
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 9000.0));
  }
  ASSERT_TRUE(controller.identification_complete());
  controller.Reset();
  EXPECT_FALSE(controller.identification_complete());
  EXPECT_EQ(controller.adaptivity_steps(), 0);
  EXPECT_EQ(controller.NextBlockSize(1.0), controller.sample_sizes()[1]);
}

TEST(ModelBasedControllerTest, Names) {
  EXPECT_EQ(
      ModelBasedController(BaseConfig(IdentificationModel::kQuadratic))
          .name(),
      "model_quadratic");
  EXPECT_EQ(
      ModelBasedController(BaseConfig(IdentificationModel::kParabolic))
          .name(),
      "model_parabolic");
}

TEST(ModelBasedControllerTest, ReidentifiesWhenEnvironmentShifts) {
  // Paper Section IV heuristic: rerun the LS when measurements deviate
  // significantly from the derived model.
  ModelBasedConfig config = BaseConfig(IdentificationModel::kQuadratic);
  config.reidentify_deviation = 0.5;
  config.reidentify_patience = 3;
  ModelBasedController controller(config);

  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 6000.0));
  }
  ASSERT_TRUE(controller.identification_complete());
  const int64_t first_estimate = x;
  EXPECT_NEAR(static_cast<double>(first_estimate), 6000.0, 300.0);

  // Environment changes: costs triple (way past the 50% deviation band)
  // for `patience` measurements -> sampling restarts.
  for (int i = 0; i < 3; ++i) {
    x = controller.NextBlockSize(
        3.0 * QuadCost(static_cast<double>(x), 14000.0));
  }
  EXPECT_EQ(controller.reidentifications(), 1);
  EXPECT_FALSE(controller.identification_complete());

  // The rerun converges on the new optimum.
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(
        3.0 * QuadCost(static_cast<double>(x), 14000.0));
  }
  ASSERT_TRUE(controller.identification_complete());
  EXPECT_NEAR(static_cast<double>(x), 14000.0, 500.0);
}

TEST(ModelBasedControllerTest, ToleratesDeviationWithinBand) {
  ModelBasedConfig config = BaseConfig(IdentificationModel::kQuadratic);
  config.reidentify_deviation = 0.5;
  config.reidentify_patience = 2;
  ModelBasedController controller(config);

  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 6000.0));
  }
  ASSERT_TRUE(controller.identification_complete());
  // 20% noise stays inside the 50% band: never re-identifies.
  for (int i = 0; i < 20; ++i) {
    const double noisy = QuadCost(static_cast<double>(x), 6000.0) *
                         (i % 2 == 0 ? 1.2 : 0.8);
    x = controller.NextBlockSize(noisy);
  }
  EXPECT_EQ(controller.reidentifications(), 0);
  EXPECT_TRUE(controller.identification_complete());
}

TEST(ModelBasedControllerTest, IsolatedSpikeDoesNotReidentify) {
  ModelBasedConfig config = BaseConfig(IdentificationModel::kQuadratic);
  config.reidentify_deviation = 0.3;
  config.reidentify_patience = 3;
  ModelBasedController controller(config);

  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 6; ++i) {
    x = controller.NextBlockSize(QuadCost(static_cast<double>(x), 6000.0));
  }
  ASSERT_TRUE(controller.identification_complete());
  // Two isolated spikes separated by clean measurements: patience=3 is
  // never exhausted.
  for (int i = 0; i < 10; ++i) {
    const double y = QuadCost(static_cast<double>(x), 6000.0) *
                     (i == 2 || i == 6 ? 5.0 : 1.0);
    x = controller.NextBlockSize(y);
  }
  EXPECT_EQ(controller.reidentifications(), 0);
}

TEST(ModelBasedConfigTest, ReidentifyValidation) {
  ModelBasedConfig config = BaseConfig(IdentificationModel::kQuadratic);
  config.reidentify_deviation = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig(IdentificationModel::kQuadratic);
  config.reidentify_patience = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AnalyticOptimumTest, QuadraticVertex) {
  bool failed = true;
  BlockSizeLimits limits{100, 20000};
  // y = 1e-6 x^2 - 0.02 x + c -> vertex at 10000.
  EXPECT_EQ(AnalyticOptimum(IdentificationModel::kQuadratic,
                            {1e-6, -0.02, 5.0}, limits, &failed),
            10000);
  EXPECT_FALSE(failed);
}

TEST(AnalyticOptimumTest, QuadraticVertexClampsToLimits) {
  bool failed = true;
  BlockSizeLimits limits{100, 20000};
  EXPECT_EQ(AnalyticOptimum(IdentificationModel::kQuadratic,
                            {1e-6, -0.2, 5.0}, limits, &failed),
            20000);  // vertex at 100000, clamped
  EXPECT_FALSE(failed);
}

TEST(AnalyticOptimumTest, QuadraticConcaveDownFails) {
  bool failed = false;
  BlockSizeLimits limits{100, 20000};
  const int64_t x = AnalyticOptimum(IdentificationModel::kQuadratic,
                                    {-1e-6, 0.01, 5.0}, limits, &failed);
  EXPECT_TRUE(failed);
  EXPECT_TRUE(x == 100 || x == 20000);
}

TEST(AnalyticOptimumTest, ParabolicCases) {
  bool failed = false;
  BlockSizeLimits limits{100, 20000};
  EXPECT_EQ(AnalyticOptimum(IdentificationModel::kParabolic,
                            {10000.0, 0.0001, 1.0}, limits, &failed),
            10000);  // sqrt(1e4 / 1e-4)
  EXPECT_FALSE(failed);

  // Negative a2: derivative never zero, lower limit.
  EXPECT_EQ(AnalyticOptimum(IdentificationModel::kParabolic,
                            {-5.0, 0.0001, 1.0}, limits, &failed),
            100);
  EXPECT_TRUE(failed);

  // Negative b2: "bigger is always better" -> upper limit.
  EXPECT_EQ(AnalyticOptimum(IdentificationModel::kParabolic,
                            {10000.0, -0.0001, 1.0}, limits, &failed),
            20000);
  EXPECT_TRUE(failed);
}

TEST(AnalyticOptimumTest, WrongArityFails) {
  bool failed = false;
  BlockSizeLimits limits{100, 20000};
  EXPECT_EQ(AnalyticOptimum(IdentificationModel::kQuadratic, {1.0, 2.0},
                            limits, &failed),
            100);
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace wsq
