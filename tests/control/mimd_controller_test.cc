#include "wsq/control/mimd_controller.h"

#include <cmath>

#include <gtest/gtest.h>

#include "wsq/common/random.h"

namespace wsq {
namespace {

MimdConfig BaseConfig() {
  MimdConfig config;
  config.factor = 1.5;
  config.averaging_horizon = 1;
  config.scale_window = 3;
  config.limits = {100, 20000};
  config.initial_block_size = 1000;
  return config;
}

double Bowl(double x, double optimum) {
  const double z = (x - optimum) / optimum;
  return 1.0 + z * z;
}

TEST(MimdConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig().Validate().ok());
  MimdConfig bad = BaseConfig();
  bad.factor = 1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.averaging_horizon = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.scale_window = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.limits = {0, 10};
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.initial_block_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(MimdControllerTest, MovesOnGeometricGrid) {
  MimdController controller(BaseConfig());
  EXPECT_EQ(controller.initial_block_size(), 1000);
  // First step: one notch up.
  EXPECT_EQ(controller.NextBlockSize(5.0), 1500);
  EXPECT_EQ(controller.exponent(), 1);
  // Improvement: another notch up, x = 1000 * 1.5^2 = 2250.
  EXPECT_EQ(controller.NextBlockSize(4.0), 2250);
  EXPECT_EQ(controller.exponent(), 2);
}

TEST(MimdControllerTest, ReversesOnDegradation) {
  MimdController controller(BaseConfig());
  controller.NextBlockSize(5.0);  // -> 1500
  controller.NextBlockSize(4.0);  // improving -> 2250
  const int64_t down = controller.NextBlockSize(10.0);  // worse -> back
  EXPECT_EQ(down, 1500);
  EXPECT_EQ(controller.exponent(), 1);
}

TEST(MimdControllerTest, GridValuesClampToLimits) {
  MimdConfig config = BaseConfig();
  config.factor = 4.0;
  MimdController controller(config);
  int64_t x = controller.initial_block_size();
  for (int i = 0; i < 10; ++i) {
    // Always "improving" drives the exponent up; values must clamp.
    x = controller.NextBlockSize(1.0 / (i + 1));
    EXPECT_LE(x, 20000);
  }
  EXPECT_EQ(x, 20000);
  // Exponent must not wind up unboundedly while pinned at the limit.
  EXPECT_LE(controller.exponent(), 6);
}

TEST(MimdControllerTest, ScaleAveragingSmoothsRevisits) {
  // Property: widening the scale-averaging window must not increase the
  // number of direction reversals on a noisy-but-trending input.
  auto reversals_with_window = [](int scale_window) {
    MimdConfig config = BaseConfig();
    config.scale_window = scale_window;
    MimdController controller(config);
    int64_t x = controller.initial_block_size();
    int64_t prev = x;
    int reversals = 0;
    Random rng(13);
    const double base = 10.0;
    for (int i = 0; i < 40; ++i) {
      const double y =
          base / (1.0 + 0.05 * i) * rng.Uniform(0.85, 1.15);
      x = controller.NextBlockSize(y);
      if (x < prev) ++reversals;
      prev = x;
    }
    return reversals;
  };
  EXPECT_LE(reversals_with_window(4), reversals_with_window(1) + 1);
}

TEST(MimdControllerTest, HoversNearBowlOptimum) {
  MimdConfig config = BaseConfig();
  config.factor = 1.3;
  MimdController controller(config);
  int64_t x = controller.initial_block_size();
  double late_mean = 0.0;
  int late = 0;
  for (int i = 0; i < 80; ++i) {
    x = controller.NextBlockSize(Bowl(static_cast<double>(x), 5000.0));
    if (i >= 50) {
      late_mean += static_cast<double>(x);
      ++late;
    }
  }
  late_mean /= late;
  // MIMD is coarse (geometric grid), so the tolerance is wide.
  EXPECT_GT(late_mean, 2500.0);
  EXPECT_LT(late_mean, 10000.0);
}

TEST(MimdControllerTest, AveragingHorizonBatchesMeasurements) {
  MimdConfig config = BaseConfig();
  config.averaging_horizon = 3;
  MimdController controller(config);
  // Two raw measurements: no adaptivity step yet.
  EXPECT_EQ(controller.NextBlockSize(5.0), 1000);
  EXPECT_EQ(controller.NextBlockSize(5.0), 1000);
  EXPECT_EQ(controller.adaptivity_steps(), 0);
  // Third completes the window -> first step.
  EXPECT_EQ(controller.NextBlockSize(5.0), 1500);
  EXPECT_EQ(controller.adaptivity_steps(), 1);
}

TEST(MimdControllerTest, ResetRestoresInitialState) {
  MimdController controller(BaseConfig());
  controller.NextBlockSize(5.0);
  controller.NextBlockSize(4.0);
  controller.Reset();
  EXPECT_EQ(controller.exponent(), 0);
  EXPECT_EQ(controller.adaptivity_steps(), 0);
  EXPECT_EQ(controller.NextBlockSize(5.0), 1500);  // first step again
}

TEST(MimdControllerTest, Name) {
  EXPECT_EQ(MimdController(BaseConfig()).name(), "mimd");
}

}  // namespace
}  // namespace wsq
