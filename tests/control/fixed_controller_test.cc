#include "wsq/control/fixed_controller.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(FixedControllerTest, AlwaysReturnsConfiguredSize) {
  FixedController controller(1234);
  EXPECT_EQ(controller.initial_block_size(), 1234);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.NextBlockSize(static_cast<double>(i)), 1234);
  }
  EXPECT_EQ(controller.adaptivity_steps(), 0);
}

TEST(FixedControllerTest, NonPositiveSizePromotedToOne) {
  FixedController controller(0);
  EXPECT_EQ(controller.initial_block_size(), 1);
  FixedController negative(-10);
  EXPECT_EQ(negative.initial_block_size(), 1);
}

TEST(FixedControllerTest, NameIncludesSize) {
  EXPECT_EQ(FixedController(1000).name(), "fixed_1000");
}

TEST(FixedControllerTest, ResetIsNoop) {
  FixedController controller(50);
  controller.NextBlockSize(1.0);
  controller.Reset();
  EXPECT_EQ(controller.NextBlockSize(1.0), 50);
}

TEST(BlockSizeLimitsTest, ClampBehavior) {
  BlockSizeLimits limits{100, 20000};
  EXPECT_EQ(limits.Clamp(50.0), 100);
  EXPECT_EQ(limits.Clamp(100.0), 100);
  EXPECT_EQ(limits.Clamp(5000.4), 5000);
  EXPECT_EQ(limits.Clamp(5000.6), 5001);
  EXPECT_EQ(limits.Clamp(1e9), 20000);
  EXPECT_EQ(limits.Clamp(std::nan("")), 100);
  EXPECT_EQ(limits.Clamp(std::numeric_limits<double>::infinity()), 100);
}

TEST(BlockSizeLimitsTest, Validity) {
  EXPECT_TRUE((BlockSizeLimits{100, 20000}).Valid());
  EXPECT_TRUE((BlockSizeLimits{1, 1}).Valid());
  EXPECT_FALSE((BlockSizeLimits{0, 100}).Valid());
  EXPECT_FALSE((BlockSizeLimits{200, 100}).Valid());
}

}  // namespace
}  // namespace wsq
