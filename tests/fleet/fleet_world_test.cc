// Determinism and consistency suite for the fleet co-scheduling world:
// the fleet analogue of tests/exec's parallel-equality contract. The
// pinned properties:
//
//  * RunFleetRepeated output is byte-identical at --jobs=1 and --jobs=8
//    (whole worlds are the unit of parallelism; folding is run-ordered);
//  * same (config, spec, seed) reproduces the same fleet trace;
//  * per-tenant streams derive from (seed, tenant index), so appending
//    tenants never perturbs the tenants already in the spec before the
//    newcomer's arrival (churn stability);
//  * every stitched FleetTrace passes its own consistency contract.

#include "wsq/fleet/fleet_world.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/fleet/fleet_spec.h"

namespace wsq::fleet {
namespace {

// Renders every field that defines a fleet trace with hex floats
// ("%a"), so two fingerprints match iff every float matches to the
// last bit — the same discipline as the exec parallel suites.
std::string Fingerprint(const FleetTrace& fleet) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "seed=%" PRIu64 "|makespan=%a\n", fleet.seed,
                fleet.makespan_ms);
  out += buf;
  for (const TenantTrace& lane : fleet.tenants) {
    std::snprintf(buf, sizeof(buf), "%s|%a|%a|%a|%" PRId64 "|%" PRId64 "\n",
                  lane.tenant.c_str(), lane.start_time_ms,
                  lane.completion_time_ms, lane.trace.total_time_ms,
                  lane.trace.total_blocks, lane.trace.total_tuples);
    out += buf;
    for (const RunStep& step : lane.trace.steps) {
      std::snprintf(buf, sizeof(buf),
                    "  %" PRId64 "|%" PRId64 "|%" PRId64 "|%a|%a|%" PRId64 "\n",
                    step.step, step.requested_size, step.received_tuples,
                    step.per_tuple_ms, step.block_time_ms,
                    step.adaptivity_step);
      out += buf;
    }
  }
  return out;
}

std::string Fingerprint(const std::vector<FleetTrace>& runs) {
  std::string out;
  for (const FleetTrace& fleet : runs) out += Fingerprint(fleet);
  return out;
}

FleetWorldConfig SmallWorld() {
  FleetWorldConfig config;
  config.one_way_latency_ms = 10.0;
  config.bandwidth_mbps = 9.0;
  config.seed = 17;
  return config;
}

FleetSpec SmallFleet() {
  FleetSpec spec;
  spec.mix = {{"hybrid", 2}, {"mimd", 2}};
  spec.tuples_per_tenant = 1500;
  return spec;
}

TEST(FleetSpecTest, ValidateRejectsBadSpecs) {
  FleetSpec empty;
  EXPECT_FALSE(empty.Validate().ok());

  FleetSpec bad_count;
  bad_count.mix = {{"hybrid", 0}};
  EXPECT_FALSE(bad_count.Validate().ok());

  FleetSpec bad_tuples;
  bad_tuples.mix = {{"hybrid", 1}};
  bad_tuples.tuples_per_tenant = 0;
  EXPECT_FALSE(bad_tuples.Validate().ok());

  EXPECT_TRUE(SmallFleet().Validate().ok());
}

TEST(FleetSpecTest, BuildTenantsRejectsUnknownController) {
  FleetSpec spec;
  spec.mix = {{"no_such_controller", 2}};
  auto tenants = spec.BuildTenants(1);
  EXPECT_FALSE(tenants.ok());
}

TEST(FleetSpecTest, TenantNamesCountPerControllerSpelling) {
  FleetSpec spec;
  spec.mix = {{"hybrid", 2}, {"mimd", 1}, {"hybrid", 1}};
  spec.tuples_per_tenant = 100;
  auto tenants = spec.BuildTenants(1);
  ASSERT_TRUE(tenants.ok()) << tenants.status().ToString();
  ASSERT_EQ(tenants.value().size(), 4u);
  EXPECT_EQ(tenants.value()[0].name, "hybrid-0");
  EXPECT_EQ(tenants.value()[1].name, "hybrid-1");
  EXPECT_EQ(tenants.value()[2].name, "mimd-0");
  EXPECT_EQ(tenants.value()[3].name, "hybrid-2");
}

TEST(FleetSpecTest, StaggeredArrivalSpacesStarts) {
  FleetSpec spec = SmallFleet();
  spec.arrival = ArrivalProcess::kStaggered;
  spec.stagger_interval_ms = 250.0;
  auto tenants = spec.BuildTenants(1);
  ASSERT_TRUE(tenants.ok());
  for (size_t i = 0; i < tenants.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(tenants.value()[i].start_time_ms,
                     250.0 * static_cast<double>(i));
  }
}

TEST(FleetSpecTest, JitteredArrivalIsSeededAndBounded) {
  FleetSpec spec = SmallFleet();
  spec.arrival = ArrivalProcess::kJittered;
  spec.stagger_interval_ms = 100.0;
  spec.arrival_jitter_ms = 50.0;
  auto first = spec.BuildTenants(7);
  auto second = spec.BuildTenants(7);
  auto other = spec.BuildTenants(8);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(other.ok());
  bool any_differs = false;
  for (size_t i = 0; i < first.value().size(); ++i) {
    const double base = 100.0 * static_cast<double>(i);
    EXPECT_GE(first.value()[i].start_time_ms, base);
    EXPECT_LT(first.value()[i].start_time_ms, base + 50.0);
    // Same seed reproduces; a different seed moves at least one start.
    EXPECT_DOUBLE_EQ(first.value()[i].start_time_ms,
                     second.value()[i].start_time_ms);
    if (first.value()[i].start_time_ms != other.value()[i].start_time_ms) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(FleetWorldTest, RunsEveryTenantToCompletion) {
  FleetSpec spec = SmallFleet();
  auto tenants = spec.BuildTenants(3);
  ASSERT_TRUE(tenants.ok());
  auto fleet = RunFleetWorld(SmallWorld(), tenants.value());
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_EQ(fleet.value().tenants.size(), 4u);
  for (const TenantTrace& lane : fleet.value().tenants) {
    EXPECT_EQ(lane.trace.total_tuples, spec.tuples_per_tenant);
    EXPECT_GT(lane.trace.total_blocks, 0);
    EXPECT_EQ(lane.trace.backend_name, "fleet");
  }
  EXPECT_TRUE(fleet.value().CheckConsistent().ok())
      << fleet.value().CheckConsistent().ToString();
}

TEST(FleetWorldTest, SameSeedReproducesByteIdentically) {
  FleetSpec spec = SmallFleet();
  auto tenants = spec.BuildTenants(3);
  ASSERT_TRUE(tenants.ok());
  auto first = RunFleetWorld(SmallWorld(), tenants.value());
  auto second = RunFleetWorld(SmallWorld(), tenants.value());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Fingerprint(first.value()), Fingerprint(second.value()));

  FleetWorldConfig other = SmallWorld();
  other.seed = 18;
  auto different = RunFleetWorld(other, tenants.value());
  ASSERT_TRUE(different.ok());
  EXPECT_NE(Fingerprint(first.value()), Fingerprint(different.value()));
}

TEST(FleetWorldTest, SharedWorldTenantsInterfere) {
  // The same tenant alone vs inside an 8-tenant herd: co-tenants must
  // inflate its response time (the whole point of a shared LoadModel).
  // A LAN-ish world where service time dominates the round trip, so
  // blocks genuinely overlap in service and the in-flight pricing bites.
  FleetWorldConfig config;
  config.one_way_latency_ms = 1.0;
  config.bandwidth_mbps = 100.0;
  config.load.per_tuple_cpu_ms = 0.05;
  config.seed = 17;

  FleetSpec solo;
  solo.mix = {{"hybrid", 1}};
  solo.tuples_per_tenant = 1500;
  auto solo_tenants = solo.BuildTenants(3);
  ASSERT_TRUE(solo_tenants.ok());
  auto solo_fleet = RunFleetWorld(config, solo_tenants.value());
  ASSERT_TRUE(solo_fleet.ok());

  FleetSpec herd;
  herd.mix = {{"hybrid", 8}};
  herd.tuples_per_tenant = 1500;
  auto herd_tenants = herd.BuildTenants(3);
  ASSERT_TRUE(herd_tenants.ok());
  auto herd_fleet = RunFleetWorld(config, herd_tenants.value());
  ASSERT_TRUE(herd_fleet.ok());

  EXPECT_GT(herd_fleet.value().tenants[0].trace.total_time_ms,
            solo_fleet.value().tenants[0].trace.total_time_ms);
}

TEST(FleetWorldTest, RepeatedRunsIdenticalAcrossJobCounts) {
  const FleetWorldConfig config = SmallWorld();
  const FleetSpec spec = SmallFleet();
  auto serial = RunFleetRepeated(config, spec, 6, 42, /*jobs=*/1);
  auto parallel = RunFleetRepeated(config, spec, 6, 42, /*jobs=*/8);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial.value().size(), 6u);
  ASSERT_EQ(parallel.value().size(), 6u);
  EXPECT_EQ(Fingerprint(serial.value()), Fingerprint(parallel.value()));
}

TEST(FleetWorldTest, RepeatedRunsUseStridedSeeds) {
  auto runs = RunFleetRepeated(SmallWorld(), SmallFleet(), 3, 42, 1);
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(runs.value()[0].seed, 42u);
  EXPECT_EQ(runs.value()[1].seed, 42u + 104729u);
  EXPECT_EQ(runs.value()[2].seed, 42u + 2u * 104729u);
  EXPECT_NE(Fingerprint(runs.value()[0]), Fingerprint(runs.value()[1]));
}

TEST(FleetWorldTest, ChurnPreservesIncumbentPrefixes) {
  // Append a late-arriving tenant to the spec: every incumbent's steps
  // that completed strictly before the newcomer's start time must be
  // byte-identical to the run without it. Derived-by-index streams plus
  // live in-flight pricing make exactly this prefix invariant.
  FleetWorldConfig config = SmallWorld();
  config.jitter_sigma = 0.1;  // exercise the per-tenant jitter streams

  FleetSpec before = SmallFleet();
  auto incumbents = before.BuildTenants(3);
  ASSERT_TRUE(incumbents.ok());
  auto base = RunFleetWorld(config, incumbents.value());
  ASSERT_TRUE(base.ok());

  // The newcomer arrives mid-run (makespan is comfortably beyond this).
  const double arrival_ms = base.value().makespan_ms / 3.0;
  std::vector<TenantSpec> churned = incumbents.value();
  TenantSpec late;
  late.name = "latecomer";
  late.factory = NamedFactory("adaptive");
  late.dataset_tuples = 800;
  late.start_time_ms = arrival_ms;
  churned.push_back(late);
  auto with_late = RunFleetWorld(config, churned);
  ASSERT_TRUE(with_late.ok());
  EXPECT_TRUE(with_late.value().CheckConsistent().ok());

  for (size_t t = 0; t < incumbents.value().size(); ++t) {
    const TenantTrace& a = base.value().tenants[t];
    const TenantTrace& b = with_late.value().tenants[t];
    ASSERT_EQ(a.tenant, b.tenant);
    // Compare the steps that completed before the newcomer arrived.
    double elapsed = 0.0;
    size_t prefix = 0;
    while (prefix < a.trace.steps.size() && prefix < b.trace.steps.size()) {
      elapsed += a.trace.steps[prefix].block_time_ms;
      if (a.start_time_ms + elapsed >= arrival_ms) break;
      ++prefix;
    }
    for (size_t s = 0; s < prefix; ++s) {
      const RunStep& x = a.trace.steps[s];
      const RunStep& y = b.trace.steps[s];
      EXPECT_EQ(x.requested_size, y.requested_size)
          << a.tenant << " step " << s;
      EXPECT_EQ(x.received_tuples, y.received_tuples);
      EXPECT_DOUBLE_EQ(x.block_time_ms, y.block_time_ms)
          << a.tenant << " step " << s;
    }
  }
}

TEST(FleetWorldTest, ConfigValidation) {
  FleetWorldConfig config = SmallWorld();
  config.bandwidth_mbps = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallWorld();
  config.one_way_latency_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  auto fleet = RunFleetWorld(config, {});
  EXPECT_FALSE(fleet.ok());
}

TEST(FleetWorldTest, ResilienceBreakerGovernsCommandedSizes) {
  // A breaker-capped tenant must never command more than the governor
  // allows while the breaker is warm; here we just pin that wiring a
  // ResilienceConfig through the spec is honored (sizes stay positive
  // and the run completes).
  FleetSpec spec = SmallFleet();
  ResilienceConfig resilience;
  spec.resilience = resilience;
  auto tenants = spec.BuildTenants(3);
  ASSERT_TRUE(tenants.ok());
  ASSERT_TRUE(tenants.value()[0].resilience.has_value());
  auto fleet = RunFleetWorld(SmallWorld(), tenants.value());
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_TRUE(fleet.value().CheckConsistent().ok());
}

}  // namespace
}  // namespace wsq::fleet
