// Fairness / convergence / oscillation analytics over fleet traces,
// plus their obs export (metric names, per-tenant labels, escaping).

#include "wsq/fleet/analytics.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/fleet/fleet_spec.h"
#include "wsq/fleet/fleet_world.h"
#include "wsq/obs/metrics.h"

namespace wsq::fleet {
namespace {

TEST(JainIndexTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 0.0);
  EXPECT_DOUBLE_EQ(JainIndex({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({1.0, 1.0, 1.0, 1.0}), 1.0);
  // One tenant got everything: index collapses to 1/n.
  EXPECT_DOUBLE_EQ(JainIndex({1.0, 0.0, 0.0, 0.0}), 0.25);
  // All-zero counts as perfectly fair (everyone equally starved).
  EXPECT_DOUBLE_EQ(JainIndex({0.0, 0.0}), 1.0);
}

TEST(ConvergenceStepTest, DetectsSettling) {
  // Ramp then settle: the last 4 of 16 elements define the settled mean
  // (1000); the ramp leaves the ±20% band well before the tail.
  std::vector<int64_t> sizes;
  for (int i = 0; i < 8; ++i) sizes.push_back(100 + i * 120);
  for (int i = 0; i < 8; ++i) sizes.push_back(1000);
  const int64_t step = ConvergenceStep(sizes);
  ASSERT_GE(step, 0);
  // Everything from the reported step onward is inside the band.
  const double settled = 1000.0;
  for (size_t i = static_cast<size_t>(step); i < sizes.size(); ++i) {
    EXPECT_GE(static_cast<double>(sizes[i]), settled * 0.8);
    EXPECT_LE(static_cast<double>(sizes[i]), settled * 1.2);
  }
}

TEST(ConvergenceStepTest, NeverSettlingSeriesReportsMinusOne) {
  // Alternating 100/2000 never stays inside any ±20% band.
  std::vector<int64_t> sizes;
  for (int i = 0; i < 20; ++i) sizes.push_back(i % 2 == 0 ? 100 : 2000);
  EXPECT_EQ(ConvergenceStep(sizes), -1);
  // Too-short series cannot settle either.
  EXPECT_EQ(ConvergenceStep({500, 500}), -1);
}

TEST(ConvergenceStepTest, ConstantSeriesConvergesImmediately) {
  EXPECT_EQ(ConvergenceStep({700, 700, 700, 700, 700}), 0);
}

TEST(PearsonCorrelationTest, KnownValues) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0);
  // Constant series and too-short series report 0, not NaN.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({5, 5, 5, 5}, {1, 2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {1, 2, 3}), 0.0);
}

FleetTrace RunSmallFleet() {
  FleetWorldConfig config;
  config.seed = 11;
  FleetSpec spec;
  spec.mix = {{"hybrid", 2}, {"mimd", 1}};
  // Long enough that every block-size series clears the 4-step floor
  // the correlation pass requires.
  spec.tuples_per_tenant = 20000;
  auto tenants = spec.BuildTenants(11);
  EXPECT_TRUE(tenants.ok());
  auto fleet = RunFleetWorld(config, tenants.value());
  EXPECT_TRUE(fleet.ok());
  return fleet.value();
}

TEST(AnalyzeFleetTest, DistillsARealFleetRun) {
  const FleetTrace fleet = RunSmallFleet();
  const FleetAnalytics analytics = AnalyzeFleet(fleet);

  ASSERT_EQ(analytics.tenants.size(), 3u);
  EXPECT_DOUBLE_EQ(analytics.makespan_ms, fleet.makespan_ms);
  EXPECT_GT(analytics.jain_index, 0.0);
  EXPECT_LE(analytics.jain_index, 1.0 + 1e-12);
  EXPECT_GE(analytics.p99_spread_ms, 0.0);
  EXPECT_DOUBLE_EQ(analytics.p99_spread_ms,
                   analytics.p99_max_ms - analytics.p99_min_ms);
  for (const TenantAnalytics& tenant : analytics.tenants) {
    EXPECT_EQ(tenant.tuples, 20000);
    EXPECT_GT(tenant.blocks, 0);
    EXPECT_GT(tenant.throughput_tps, 0.0);
    EXPECT_GT(tenant.p99_block_ms, 0.0);
    EXPECT_GE(tenant.oscillation, 0.0);
  }
  EXPECT_GE(analytics.converged_fraction, 0.0);
  EXPECT_LE(analytics.converged_fraction, 1.0);
  // 3 tenants with full-length series: all 3 pairs must correlate.
  EXPECT_EQ(analytics.correlation_pairs, 3);
}

TEST(AnalyzeFleetTest, EmptyFleetIsHarmless) {
  FleetTrace empty;
  const FleetAnalytics analytics = AnalyzeFleet(empty);
  EXPECT_TRUE(analytics.tenants.empty());
  EXPECT_DOUBLE_EQ(analytics.jain_index, 0.0);
  EXPECT_EQ(analytics.correlation_pairs, 0);
}

TEST(PublishFleetMetricsTest, ExportsLabeledTenantAndFleetSeries) {
  const FleetTrace fleet = RunSmallFleet();
  const FleetAnalytics analytics = AnalyzeFleet(fleet);

  MetricsRegistry registry;
  PublishFleetMetrics(analytics, &registry);

  // Fleet-level gauges.
  EXPECT_GT(registry.GetGauge("wsq.fleet.jain_index")->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("wsq.fleet.makespan_ms")->value(),
                   fleet.makespan_ms);
  EXPECT_EQ(registry.GetCounter("wsq.fleet.tenants_total")->value(), 3);

  // Per-tenant labeled series, rollable with the label-aware
  // SumCounters.
  for (const TenantAnalytics& tenant : analytics.tenants) {
    const std::string name =
        LabeledName("wsq.fleet.tenant.throughput_tps", "tenant",
                    tenant.tenant);
    EXPECT_DOUBLE_EQ(registry.GetGauge(name)->value(), tenant.throughput_tps);
  }
  int64_t total_blocks = 0;
  for (const TenantAnalytics& tenant : analytics.tenants) {
    total_blocks += tenant.blocks;
  }
  EXPECT_EQ(registry.SumCounters("wsq.fleet.tenant.blocks"), total_blocks);
}

TEST(PublishFleetMetricsTest, HostileTenantNamesCannotCollide) {
  // Two distinct hostile tenant names that would collide without label
  // escaping must land in distinct series.
  FleetAnalytics analytics;
  TenantAnalytics a;
  a.tenant = "t,x=1";
  a.blocks = 5;
  TenantAnalytics b;
  b.tenant = "t";
  b.blocks = 7;
  analytics.tenants = {a, b};

  MetricsRegistry registry;
  PublishFleetMetrics(analytics, &registry);
  EXPECT_EQ(registry.SumCounters("wsq.fleet.tenant.blocks"), 12);
  EXPECT_EQ(
      registry
          .GetCounter(LabeledName("wsq.fleet.tenant.blocks", "tenant", "t"))
          ->value(),
      7);
  EXPECT_EQ(
      registry
          .GetCounter(
              LabeledName("wsq.fleet.tenant.blocks", "tenant", "t,x=1"))
          ->value(),
      5);
}

}  // namespace
}  // namespace wsq::fleet
