#include "wsq/linalg/matrix.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), 0.0);
  }
}

TEST(MatrixTest, InitializerListConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, IdentityAndColumnVector) {
  Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
  Matrix v = Matrix::ColumnVector({5.0, 6.0});
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_EQ(v(1, 0), 6.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0}, {6.0}};
  Result<Matrix> p = a.Multiply(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()(0, 0), 17.0);
  EXPECT_EQ(p.value()(1, 0), 39.0);
}

TEST(MatrixTest, MultiplyDimensionMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_EQ(a.Multiply(b).status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a{{1.5, -2.0}, {0.0, 7.0}};
  Result<Matrix> p = a.Multiply(Matrix::Identity(2));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().ApproxEquals(a, 1e-12));
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 5.0}};
  EXPECT_TRUE(a.Add(b).value().ApproxEquals(Matrix{{4.0, 7.0}}, 1e-12));
  EXPECT_TRUE(b.Subtract(a).value().ApproxEquals(Matrix{{2.0, 3.0}}, 1e-12));
  EXPECT_TRUE(a.Scaled(2.0).ApproxEquals(Matrix{{2.0, 4.0}}, 1e-12));
  EXPECT_EQ(a.Add(Matrix(2, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a.Subtract(Matrix(2, 2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MatrixTest, Norms) {
  Matrix m{{3.0, -4.0}};
  EXPECT_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_EQ(Matrix(0, 0).MaxAbs(), 0.0);
}

TEST(MatrixTest, ApproxEqualsTolerance) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-9}};
  EXPECT_TRUE(a.ApproxEquals(b, 1e-8));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-10));
  EXPECT_FALSE(a.ApproxEquals(Matrix(1, 2), 1.0));
}

TEST(MatrixTest, ColumnExtraction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<double> col = m.Column(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0], 2.0);
  EXPECT_EQ(col[1], 4.0);
}

TEST(MatrixTest, ToStringContainsEntries) {
  Matrix m{{1.5, 2.0}};
  const std::string s = m.ToString(1);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

TEST(MatrixDeathTest, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

}  // namespace
}  // namespace wsq
