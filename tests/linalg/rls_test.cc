#include "wsq/linalg/rls.h"

#include <cmath>

#include <gtest/gtest.h>

#include "wsq/common/random.h"

namespace wsq {
namespace {

TEST(RlsTest, ConvergesToLinearModel) {
  // y = 3 a + 2 b - 1, regressors phi = (a, b, 1).
  RecursiveLeastSquares rls(3, /*forgetting=*/1.0);
  Random rng(5);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-5, 5);
    const double b = rng.Uniform(-5, 5);
    ASSERT_TRUE(rls.Update({a, b, 1.0}, 3.0 * a + 2.0 * b - 1.0).ok());
  }
  EXPECT_NEAR(rls.params()[0], 3.0, 1e-6);
  EXPECT_NEAR(rls.params()[1], 2.0, 1e-6);
  EXPECT_NEAR(rls.params()[2], -1.0, 1e-6);
  EXPECT_EQ(rls.num_updates(), 200u);
}

TEST(RlsTest, PredictMatchesParams) {
  RecursiveLeastSquares rls(2, 1.0);
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.1;
    ASSERT_TRUE(rls.Update({x, 1.0}, 4.0 * x + 2.0).ok());
  }
  Result<double> p = rls.Predict({10.0, 1.0});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 42.0, 1e-4);
}

TEST(RlsTest, ForgettingTracksDriftingModel) {
  // Model switches slope halfway; the forgetting learner must track,
  // the non-forgetting one lags.
  RecursiveLeastSquares forgetting(2, 0.9);
  RecursiveLeastSquares remembering(2, 1.0);
  Random rng(7);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0, 10);
    const double slope = i < 150 ? 1.0 : 5.0;
    const double y = slope * x;
    ASSERT_TRUE(forgetting.Update({x, 1.0}, y).ok());
    ASSERT_TRUE(remembering.Update({x, 1.0}, y).ok());
  }
  const double err_forgetting = std::fabs(forgetting.params()[0] - 5.0);
  const double err_remembering = std::fabs(remembering.params()[0] - 5.0);
  EXPECT_LT(err_forgetting, err_remembering);
  EXPECT_LT(err_forgetting, 0.1);
}

TEST(RlsTest, ArityMismatchRejected) {
  RecursiveLeastSquares rls(3, 1.0);
  EXPECT_EQ(rls.Update({1.0, 2.0}, 3.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rls.Predict({1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RlsTest, ResetRestoresPrior) {
  RecursiveLeastSquares rls(2, 1.0);
  ASSERT_TRUE(rls.Update({1.0, 1.0}, 10.0).ok());
  EXPECT_GT(std::fabs(rls.params()[0]), 0.0);
  rls.Reset();
  EXPECT_EQ(rls.params()[0], 0.0);
  EXPECT_EQ(rls.params()[1], 0.0);
  EXPECT_EQ(rls.num_updates(), 0u);
}

TEST(RlsTest, ForgettingFactorClamped) {
  RecursiveLeastSquares rls(1, -5.0);  // clamped to a small positive value
  EXPECT_GT(rls.forgetting(), 0.0);
  RecursiveLeastSquares rls2(1, 2.0);  // clamped to 1
  EXPECT_LE(rls2.forgetting(), 1.0);
}

TEST(RlsTest, QuadraticBasisIdentifiesProfileModel) {
  // Identify y = a x^2 + b x + c online, paper Eq. (8) with RLS.
  RecursiveLeastSquares rls(3, 1.0);
  Random rng(11);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(100, 20000) / 1000.0;  // scaled for conditioning
    const double y = 0.7 * x * x - 9.0 * x + 50.0;
    ASSERT_TRUE(rls.Update({x * x, x, 1.0}, y).ok());
  }
  EXPECT_NEAR(rls.params()[0], 0.7, 1e-5);
  EXPECT_NEAR(rls.params()[1], -9.0, 1e-4);
  EXPECT_NEAR(rls.params()[2], 50.0, 1e-3);
}

}  // namespace
}  // namespace wsq
