#include "wsq/linalg/least_squares.h"

#include <cmath>

#include <gtest/gtest.h>

#include "wsq/common/random.h"

namespace wsq {
namespace {

TEST(SolveLinearSystemTest, Solves2x2) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Matrix b{{5.0}, {10.0}};
  Result<Matrix> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.value()(1, 0), 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  Matrix b{{2.0}, {3.0}};
  Result<Matrix> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x.value()(1, 0), 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  Matrix b{{1.0}, {2.0}};
  EXPECT_EQ(SolveLinearSystem(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SolveLinearSystemTest, DimensionChecks) {
  EXPECT_EQ(SolveLinearSystem(Matrix(2, 3), Matrix(2, 1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLinearSystem(Matrix(2, 2), Matrix(3, 1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLinearSystem(Matrix(2, 2), Matrix(2, 2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LeastSquaresTest, ExactFitWhenSquare) {
  // y = 2x + 1 through two points.
  Matrix x{{1.0, 1.0}, {2.0, 1.0}};
  Matrix y{{3.0}, {5.0}};
  Result<Matrix> d = LeastSquares(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(d.value()(1, 0), 1.0, 1e-12);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
  // Line through noisy points; LS must recover slope/intercept closely.
  Matrix x(5, 2);
  Matrix y(5, 1);
  const double xs[] = {0.0, 1.0, 2.0, 3.0, 4.0};
  const double ys[] = {1.1, 2.9, 5.2, 6.8, 9.1};
  for (int i = 0; i < 5; ++i) {
    x.At(i, 0) = xs[i];
    x.At(i, 1) = 1.0;
    y.At(i, 0) = ys[i];
  }
  Result<Matrix> d = LeastSquares(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value()(0, 0), 2.0, 0.1);
  EXPECT_NEAR(d.value()(1, 0), 1.0, 0.3);
}

TEST(LeastSquaresTest, UnderdeterminedRejected) {
  EXPECT_EQ(LeastSquares(Matrix(2, 3), Matrix(2, 1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FitQuadraticTest, RecoversExactCoefficients) {
  // y = 0.5 x^2 - 3x + 7
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(0.5 * v * v - 3.0 * v + 7.0);
  Result<FitResult> fit = FitQuadratic(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().params[0], 0.5, 1e-9);
  EXPECT_NEAR(fit.value().params[1], -3.0, 1e-8);
  EXPECT_NEAR(fit.value().params[2], 7.0, 1e-8);
  EXPECT_NEAR(fit.value().rmse, 0.0, 1e-9);
  EXPECT_NEAR(fit.value().r_squared, 1.0, 1e-12);
}

TEST(FitParabolicTest, RecoversExactCoefficients) {
  // y = 100/x + 0.002 x + 5  — the paper's Eq. (9) family.
  std::vector<double> x = {100, 2000, 5000, 10000, 15000, 20000};
  std::vector<double> y;
  for (double v : x) y.push_back(100.0 / v + 0.002 * v + 5.0);
  Result<FitResult> fit = FitParabolic(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().params[0], 100.0, 1e-6);
  EXPECT_NEAR(fit.value().params[1], 0.002, 1e-9);
  EXPECT_NEAR(fit.value().params[2], 5.0, 1e-6);
}

TEST(FitQuadraticTest, NoisyFitStillConcave) {
  Random rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 100; v <= 20000; v += 2000) {
    x.push_back(v);
    const double clean = 1e-6 * (v - 9000) * (v - 9000) + 40.0;
    y.push_back(clean * rng.Uniform(0.9, 1.1));
  }
  Result<FitResult> fit = FitQuadratic(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit.value().params[0], 0.0);
  // Vertex near 9000.
  const double vertex =
      -fit.value().params[1] / (2.0 * fit.value().params[0]);
  EXPECT_NEAR(vertex, 9000.0, 2500.0);
}

TEST(FitTest, InputValidation) {
  EXPECT_EQ(FitQuadratic({1, 2}, {1, 2}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitQuadratic({1, 2, 3}, {1, 2}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitParabolic({0, 2, 3}, {1, 2, 3}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitWithBasis(Matrix(3, 3), {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FitTest, RSquaredDropsWithNoise) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> clean;
  std::vector<double> noisy;
  Random rng(17);
  for (double v : x) {
    const double base = v * v;
    clean.push_back(base);
    noisy.push_back(base + rng.Uniform(-10.0, 10.0));
  }
  const double r2_clean = FitQuadratic(x, clean).value().r_squared;
  const double r2_noisy = FitQuadratic(x, noisy).value().r_squared;
  EXPECT_GT(r2_clean, r2_noisy);
  EXPECT_GT(r2_noisy, 0.5);
}

}  // namespace
}  // namespace wsq
