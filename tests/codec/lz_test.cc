#include "wsq/codec/lz.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "wsq/common/random.h"

namespace wsq::codec {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  LzCompress(input, &compressed);
  Result<std::string> back = LzDecompress(compressed, input.size());
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return back.ok() ? back.value() : std::string("<decompress failed>");
}

TEST(LzTest, EmptyInputRoundTrips) { EXPECT_EQ(RoundTrip(""), ""); }

TEST(LzTest, SingleByteRoundTrips) { EXPECT_EQ(RoundTrip("x"), "x"); }

TEST(LzTest, ShortIncompressibleInputRoundTrips) {
  EXPECT_EQ(RoundTrip("abcd"), "abcd");
}

TEST(LzTest, HighlyRepetitiveInputCompressesAndRoundTrips) {
  std::string input;
  for (int i = 0; i < 500; ++i) input += "customer block ";
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 4);
  Result<std::string> back = LzDecompress(compressed, input.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(LzTest, RunLengthOverlapCopiesDecodeCorrectly) {
  // A long single-char run forces matches whose source overlaps the
  // destination — the byte-at-a-time copy path.
  const std::string input(10000, 'a');
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, RandomBytesRoundTripUncompressed) {
  Random rng(42);
  std::string input;
  input.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    input.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, MixedStructuredPayloadRoundTrips) {
  // Shape of a real binary block body: varint runs, doubles, strings.
  Random rng(7);
  std::string input;
  for (int i = 0; i < 2000; ++i) {
    input += "Customer#";
    input += std::to_string(rng.UniformInt(0, 999999));
    input.push_back('\0');
    input.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, WrongExpectedSizeIsRejected) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_FALSE(LzDecompress(compressed, input.size() + 1).ok());
  EXPECT_FALSE(LzDecompress(compressed, input.size() - 1).ok());
}

TEST(LzTest, TruncatedStreamNeverYieldsWrongOutput) {
  std::string input;
  for (int i = 0; i < 100; ++i) input += "repeat me ";
  std::string compressed;
  LzCompress(input, &compressed);
  // One truncation is benign: dropping a trailing empty-literals
  // terminal token leaves a stream that still decodes to the full
  // output. Every other cut must be rejected — and no cut may ever
  // produce output that differs from the original.
  for (size_t cut = 0; cut < compressed.size(); ++cut) {
    Result<std::string> back =
        LzDecompress(compressed.substr(0, cut), input.size());
    if (back.ok()) {
      EXPECT_EQ(back.value(), input) << "cut=" << cut;
    }
  }
  EXPECT_FALSE(LzDecompress("", input.size()).ok());
  EXPECT_FALSE(
      LzDecompress(compressed.substr(0, compressed.size() / 2), input.size())
          .ok());
}

TEST(LzTest, CorruptOffsetIsRejectedNotCrashed) {
  std::string input;
  for (int i = 0; i < 64; ++i) input += "abcdefgh";
  std::string compressed;
  LzCompress(input, &compressed);
  // Flip every byte in turn; decompression must either fail cleanly or
  // produce *some* output of the expected size — never crash or hang.
  for (size_t i = 0; i < compressed.size(); ++i) {
    std::string corrupt = compressed;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xff);
    Result<std::string> back = LzDecompress(corrupt, input.size());
    if (back.ok()) {
      EXPECT_EQ(back.value().size(), input.size());
    }
  }
}

TEST(LzTest, GarbageInputIsRejected) {
  Random rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.UniformInt(1, 64));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    Result<std::string> back = LzDecompress(garbage, 1000);
    if (back.ok()) {
      EXPECT_EQ(back.value().size(), 1000u);
    }
  }
}

}  // namespace
}  // namespace wsq::codec
