#include "wsq/codec/varint.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace wsq::codec {
namespace {

TEST(VarintTest, UVarintRoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             uint64_t{1} << 32,
                             std::numeric_limits<uint64_t>::max() - 1,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutUVarint(&buf, v);
    ByteCursor cursor(buf);
    Result<uint64_t> got = cursor.ReadUVarint();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), v);
    EXPECT_TRUE(cursor.exhausted());
  }
}

TEST(VarintTest, UVarintWidthsMatchTheFormat) {
  std::string one, two;
  PutUVarint(&one, 127);
  PutUVarint(&two, 128);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
  std::string max;
  PutUVarint(&max, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(max.size(), 10u);
}

TEST(VarintTest, SignedVarintRoundTripsViaZigZag) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            63,
                            -65,
                            64,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    std::string buf;
    PutVarint(&buf, v);
    ByteCursor cursor(buf);
    Result<int64_t> got = cursor.ReadVarint();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), v);
  }
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  // Small negatives must stay one byte — sequence=-1 rides in every
  // binary RequestBlock.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-12345)), -12345);
}

TEST(VarintTest, TruncatedUVarintIsError) {
  std::string buf;
  PutUVarint(&buf, uint64_t{1} << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string truncated = buf.substr(0, cut);
    ByteCursor cursor(truncated);
    EXPECT_FALSE(cursor.ReadUVarint().ok()) << "cut=" << cut;
  }
}

TEST(VarintTest, OverlongUVarintIsRejected) {
  // Eleven continuation bytes can't be a valid 64-bit varint.
  std::string buf(11, '\x80');
  ByteCursor cursor(buf);
  EXPECT_FALSE(cursor.ReadUVarint().ok());
}

TEST(VarintTest, ByteCursorBoundsChecksEveryRead) {
  const std::string data = "abc";
  ByteCursor cursor(data);
  EXPECT_EQ(cursor.remaining(), 3u);
  Result<const char*> bytes = cursor.ReadBytes(2);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(std::string(bytes.value(), 2), "ab");
  EXPECT_FALSE(cursor.ReadBytes(2).ok());  // only one byte left
  Result<uint8_t> last = cursor.ReadByte();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value(), 'c');
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_FALSE(cursor.ReadByte().ok());
}

}  // namespace
}  // namespace wsq::codec
