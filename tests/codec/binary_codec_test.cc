#include "wsq/codec/binary_codec.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/codec/codec.h"
#include "wsq/codec/soap_codec.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"
#include "wsq/relation/tuple_serializer.h"

namespace wsq::codec {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"balance", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
}

std::vector<Tuple> MixedRows(int n) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.emplace_back(Tuple({Value(static_cast<int64_t>(i * 1000 - 5)),
                             Value(static_cast<double>(i) + 0.125),
                             Value("row-" + std::to_string(i))}));
  }
  return rows;
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(BinaryCodecTest, RequestBlockRoundTrips) {
  BinaryCodec codec;
  RequestBlockRequest request;
  request.session_id = 77;
  request.block_size = 2500;
  request.sequence = 12;
  Result<std::string> encoded = codec.EncodeRequestBlock(request);
  ASSERT_TRUE(encoded.ok());
  Result<RequestBlockRequest> back = codec.DecodeRequestBlock(encoded.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().session_id, 77);
  EXPECT_EQ(back.value().block_size, 2500);
  EXPECT_EQ(back.value().sequence, 12);
}

TEST(BinaryCodecTest, RequestBlockCarriesUnsequencedMarker) {
  BinaryCodec codec;
  RequestBlockRequest request;
  request.session_id = 1;
  request.block_size = 10;
  // sequence stays -1: must survive the zigzag round-trip.
  Result<std::string> encoded = codec.EncodeRequestBlock(request);
  ASSERT_TRUE(encoded.ok());
  Result<RequestBlockRequest> back = codec.DecodeRequestBlock(encoded.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().sequence, -1);
}

TEST(BinaryCodecTest, RequestBlockRejectsTruncationAtEveryCut) {
  BinaryCodec codec;
  RequestBlockRequest request;
  request.session_id = 123456789;
  request.block_size = 987654321;
  request.sequence = 5;
  const std::string encoded = codec.EncodeRequestBlock(request).value();
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(codec.DecodeRequestBlock(encoded.substr(0, cut)).ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(codec.DecodeRequestBlock(encoded + "x").ok())
      << "trailing bytes accepted";
}

TEST(BinaryCodecTest, BlockResponseRoundTripsAllColumnTypes) {
  BinaryCodec codec;
  const Schema schema = MixedSchema();
  const std::vector<Tuple> rows = MixedRows(10);
  Result<std::string> encoded =
      codec.EncodeBlockResponse(42, /*end_of_results=*/true, schema, rows);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded.value());
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().session_id, 42);
  EXPECT_TRUE(block.value().end_of_results);
  EXPECT_EQ(block.value().num_tuples, 10);

  const WireRows& wire = block.value().rows;
  ASSERT_FALSE(wire.text_mode());
  ASSERT_EQ(wire.num_rows(), 10u);
  ASSERT_EQ(wire.num_columns(), 3u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(wire.Int64At(i, 0), static_cast<int64_t>(i) * 1000 - 5);
    EXPECT_EQ(wire.DoubleAt(i, 1), static_cast<double>(i) + 0.125);
    EXPECT_EQ(wire.StringAt(i, 2), "row-" + std::to_string(i));
    EXPECT_FALSE(wire.IsNull(i, 0));
  }

  // Materialize must agree with the accessors.
  Result<std::vector<Tuple>> tuples = wire.Materialize(nullptr);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples.value(), rows);
}

TEST(BinaryCodecTest, SpecialDoublesAreBitExact) {
  BinaryCodec codec;
  const Schema schema({{"v", ColumnType::kDouble}});
  const double specials[] = {0.0,
                             -0.0,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             -123456.789012345678};
  std::vector<Tuple> rows;
  for (double v : specials) rows.emplace_back(Tuple({Value(v)}));

  const std::string encoded =
      codec.EncodeBlockResponse(1, false, schema, rows).value();
  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
  ASSERT_TRUE(block.ok());
  for (size_t i = 0; i < std::size(specials); ++i) {
    EXPECT_EQ(Bits(block.value().rows.DoubleAt(i, 0)), Bits(specials[i]))
        << "row " << i;
  }
  // -0.0 keeps its sign bit, NaN stays NaN.
  EXPECT_TRUE(std::signbit(block.value().rows.DoubleAt(1, 0)));
  EXPECT_TRUE(std::isnan(block.value().rows.DoubleAt(2, 0)));
}

TEST(BinaryCodecTest, EmptyBlockRoundTrips) {
  BinaryCodec codec;
  const Schema schema = MixedSchema();
  const std::string encoded =
      codec.EncodeBlockResponse(9, /*end_of_results=*/true, schema, {})
          .value();
  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().num_tuples, 0);
  EXPECT_TRUE(block.value().end_of_results);
  EXPECT_EQ(block.value().rows.num_rows(), 0u);
  Result<std::vector<Tuple>> tuples = block.value().rows.Materialize(nullptr);
  ASSERT_TRUE(tuples.ok());
  EXPECT_TRUE(tuples.value().empty());
}

TEST(BinaryCodecTest, RaggedBlockSizesRoundTrip) {
  // Row counts around the bitmap byte boundary (the ragged last block
  // of a pull loop can be any size).
  BinaryCodec codec;
  const Schema schema = MixedSchema();
  for (int n : {1, 7, 8, 9, 15, 16, 17, 100}) {
    const std::vector<Tuple> rows = MixedRows(n);
    const std::string encoded =
        codec.EncodeBlockResponse(3, false, schema, rows).value();
    Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
    ASSERT_TRUE(block.ok()) << "n=" << n << ": " << block.status().ToString();
    Result<std::vector<Tuple>> tuples =
        block.value().rows.Materialize(nullptr);
    ASSERT_TRUE(tuples.ok()) << "n=" << n;
    EXPECT_EQ(tuples.value(), rows) << "n=" << n;
  }
}

TEST(BinaryCodecTest, EmptyStringsAndEmbeddedDelimitersSurvive) {
  BinaryCodec codec;
  const Schema schema({{"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  rows.emplace_back(Tuple({Value(std::string())}));
  rows.emplace_back(Tuple({Value(std::string("a|b\\c\nd"))}));
  rows.emplace_back(Tuple({Value(std::string("\0binary\xff", 8))}));
  rows.emplace_back(Tuple({Value(std::string("<soap>&amp;</soap>"))}));
  const std::string encoded =
      codec.EncodeBlockResponse(1, false, schema, rows).value();
  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
  ASSERT_TRUE(block.ok());
  Result<std::vector<Tuple>> tuples = block.value().rows.Materialize(nullptr);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples.value(), rows);
}

TEST(BinaryCodecTest, SchemaMismatchedRowIsRejectedOnEncode) {
  BinaryCodec codec;
  const Schema schema({{"id", ColumnType::kInt64}});
  std::vector<Tuple> rows;
  rows.emplace_back(Tuple({Value(std::string("not an int"))}));
  EXPECT_FALSE(codec.EncodeBlockResponse(1, false, schema, rows).ok());
}

TEST(BinaryCodecTest, CompressionRoundTripsAndShrinksRedundantBlocks) {
  BinaryCodecOptions options;
  options.compress_blocks = true;
  BinaryCodec compressing(options);
  BinaryCodec plain;

  const Schema schema({{"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    rows.emplace_back(Tuple({Value(std::string("the same market segment"))}));
  }
  const std::string packed =
      compressing.EncodeBlockResponse(5, false, schema, rows).value();
  const std::string flat =
      plain.EncodeBlockResponse(5, false, schema, rows).value();
  EXPECT_LT(packed.size(), flat.size() / 2);
  EXPECT_EQ(static_cast<uint8_t>(packed[6]), kBinaryFlagCompressedBody);

  // Either codec instance decodes either wire form — the flag, not the
  // options, drives the decoder.
  for (const BinaryCodec* codec : {&compressing, &plain}) {
    Result<DecodedBlock> block = codec->DecodeBlockResponse(packed);
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    Result<std::vector<Tuple>> tuples =
        block.value().rows.Materialize(nullptr);
    ASSERT_TRUE(tuples.ok());
    EXPECT_EQ(tuples.value(), rows);
  }
}

TEST(BinaryCodecTest, IncompressibleBlockStaysUncompressed) {
  BinaryCodecOptions options;
  options.compress_blocks = true;
  BinaryCodec codec(options);
  const Schema schema({{"v", ColumnType::kDouble}});
  std::vector<Tuple> rows;
  double v = 0.7310586;
  for (int i = 0; i < 100; ++i) {
    v = v * 3.999 * (1.0 - v);  // chaotic: incompressible mantissas
    rows.emplace_back(Tuple({Value(v)}));
  }
  const std::string encoded =
      codec.EncodeBlockResponse(1, false, schema, rows).value();
  EXPECT_EQ(encoded[6], 0) << "incompressible block was flagged compressed";
  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().rows.DoubleAt(99, 0), v);
}

TEST(BinaryCodecTest, ResponseTortureTruncationAtEveryCut) {
  BinaryCodec codec;
  const Schema schema = MixedSchema();
  const std::string encoded =
      codec.EncodeBlockResponse(7, true, schema, MixedRows(9)).value();
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Result<DecodedBlock> block =
        codec.DecodeBlockResponse(encoded.substr(0, cut));
    EXPECT_FALSE(block.ok()) << "cut=" << cut;
  }
  EXPECT_FALSE(codec.DecodeBlockResponse(encoded + std::string(1, '\0')).ok())
      << "trailing bytes accepted";
}

TEST(BinaryCodecTest, CompressedResponseTortureTruncationAtEveryCut) {
  BinaryCodecOptions options;
  options.compress_blocks = true;
  BinaryCodec codec(options);
  const Schema schema({{"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.emplace_back(Tuple({Value(std::string("repetitive payload data"))}));
  }
  const std::string encoded =
      codec.EncodeBlockResponse(2, false, schema, rows).value();
  ASSERT_EQ(static_cast<uint8_t>(encoded[6]), kBinaryFlagCompressedBody);
  // A cut that drops only the LZ stream's empty terminal token still
  // decompresses to the full body; any cut that decodes must therefore
  // yield exactly the original rows — everything else must fail.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Result<DecodedBlock> block =
        codec.DecodeBlockResponse(encoded.substr(0, cut));
    if (block.ok()) {
      Result<std::vector<Tuple>> tuples =
          block.value().rows.Materialize(nullptr);
      ASSERT_TRUE(tuples.ok()) << "cut=" << cut;
      EXPECT_EQ(tuples.value(), rows) << "cut=" << cut;
    }
  }
  EXPECT_FALSE(codec.DecodeBlockResponse(encoded.substr(0, 8)).ok());
  EXPECT_FALSE(
      codec.DecodeBlockResponse(encoded.substr(0, encoded.size() / 2)).ok());
}

TEST(BinaryCodecTest, HeaderCorruptionIsRejected) {
  BinaryCodec codec;
  const Schema schema = MixedSchema();
  const std::string good =
      codec.EncodeBlockResponse(1, false, schema, MixedRows(3)).value();

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(codec.DecodeBlockResponse(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_FALSE(codec.DecodeBlockResponse(bad_version).ok());

  std::string bad_kind = good;
  bad_kind[5] = 3;
  EXPECT_FALSE(codec.DecodeBlockResponse(bad_kind).ok());

  std::string bad_flags = good;
  bad_flags[6] = 0x40;
  EXPECT_FALSE(codec.DecodeBlockResponse(bad_flags).ok());

  std::string bad_reserved = good;
  bad_reserved[7] = 1;
  EXPECT_FALSE(codec.DecodeBlockResponse(bad_reserved).ok());
}

TEST(BinaryCodecTest, HostileBodiesAreRejectedWithoutOveralloc) {
  BinaryCodec codec;
  const Schema schema({{"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  rows.emplace_back(Tuple({Value(std::string("abc"))}));
  const std::string good =
      codec.EncodeBlockResponse(1, false, schema, rows).value();

  // Non-zero null bitmap: the Value model has no nulls.
  {
    std::string bad = good;
    // Prelude 8 + session varint 1 + eof 1 + numRows 1 + numCols 1 +
    // type byte 1 = offset 13 is the bitmap byte for a 1-row column.
    bad[13] = '\x01';
    EXPECT_FALSE(codec.DecodeBlockResponse(bad).ok());
  }
  // Unknown column type byte.
  {
    std::string bad = good;
    bad[12] = 7;
    EXPECT_FALSE(codec.DecodeBlockResponse(bad).ok());
  }
  // Bit-flip fuzz over the whole message: decode must fail cleanly or
  // produce a well-formed block — never crash.
  for (size_t i = 0; i < good.size(); ++i) {
    std::string fuzzed = good;
    fuzzed[i] = static_cast<char>(fuzzed[i] ^ 0x5a);
    Result<DecodedBlock> block = codec.DecodeBlockResponse(fuzzed);
    if (block.ok()) {
      Result<std::vector<Tuple>> tuples =
          block.value().rows.Materialize(nullptr);
      (void)tuples;
    }
  }
}

TEST(BinaryCodecTest, LyingRowCountIsRejected) {
  BinaryCodec codec;
  // Hand-build: header claiming 2^20 rows with a one-column int body
  // containing a single varint. Decode must fail on exhaustion, not
  // allocate gigabytes.
  std::string msg;
  msg += "WSQB";
  msg.push_back(1);  // version
  msg.push_back(2);  // BlockResponse
  msg.push_back(0);  // flags
  msg.push_back(0);  // reserved
  msg.push_back(2);  // session id varint (=1)
  msg.push_back(0);  // end_of_results
  PutUVarint(&msg, uint64_t{1} << 20);  // num rows (lie)
  PutUVarint(&msg, 1);                  // num cols
  msg.push_back(0);                     // int64 column type
  // Bitmap for 2^20 rows would be 128 KiB; supply nothing.
  EXPECT_FALSE(codec.DecodeBlockResponse(msg).ok());
}

TEST(BinaryCodecTest, ImplausibleCountsAreRejected) {
  BinaryCodec codec;
  std::string msg;
  msg += "WSQB";
  msg.push_back(1);
  msg.push_back(2);
  msg.push_back(0);
  msg.push_back(0);
  msg.push_back(2);  // session
  msg.push_back(0);  // eof
  PutUVarint(&msg, uint64_t{1} << 40);  // rows beyond kMaxRows
  PutUVarint(&msg, 1);
  EXPECT_FALSE(codec.DecodeBlockResponse(msg).ok());

  std::string msg2;
  msg2 += "WSQB";
  msg2.push_back(1);
  msg2.push_back(2);
  msg2.push_back(0);
  msg2.push_back(0);
  msg2.push_back(2);
  msg2.push_back(0);
  PutUVarint(&msg2, 1);                  // one row
  PutUVarint(&msg2, uint64_t{1} << 20);  // columns beyond kMaxColumns
  EXPECT_FALSE(codec.DecodeBlockResponse(msg2).ok());
}

TEST(BinaryCodecTest, StringLengthSumWraparoundIsRejected) {
  // Regression: two string lengths chosen so their uint64 sum wraps —
  // 30 + (2^64 - 10) == 20 — with exactly 20 data bytes supplied, so
  // every pre-fix check passed (30 <= 30 remaining at row 0, wrapped 20
  // <= 20 remaining at row 1, cursor exhausted). The raw 2^64 - 10
  // length then went into the offset table, and StringAt would hand out
  // a view wrapping ~4 GiB past the buffer. Decode must fail cleanly on
  // the per-length guard instead.
  BinaryCodec codec;
  std::string msg;
  msg += "WSQB";
  msg.push_back(1);  // version
  msg.push_back(2);  // BlockResponse
  msg.push_back(0);  // flags
  msg.push_back(0);  // reserved
  msg.push_back(2);  // session id varint (=1)
  msg.push_back(0);  // end_of_results
  PutUVarint(&msg, 2);  // num rows
  PutUVarint(&msg, 1);  // num cols
  msg.push_back(static_cast<char>(ColumnType::kString));
  msg.push_back(0);  // null bitmap (2 rows -> 1 byte)
  PutUVarint(&msg, 30);                          // row 0 length
  PutUVarint(&msg, uint64_t{0} - uint64_t{10});  // row 1: wraps the sum
  msg.append(20, 'x');  // exactly the wrapped "total"
  EXPECT_FALSE(codec.DecodeBlockResponse(msg).ok());

  // The single-length overflow without wrap: one row claiming more
  // bytes than the payload holds must fail on the per-length guard.
  std::string msg2;
  msg2 += "WSQB";
  msg2.push_back(1);
  msg2.push_back(2);
  msg2.push_back(0);
  msg2.push_back(0);
  msg2.push_back(2);
  msg2.push_back(0);
  PutUVarint(&msg2, 1);  // one row
  PutUVarint(&msg2, 1);  // one col
  msg2.push_back(static_cast<char>(ColumnType::kString));
  msg2.push_back(0);
  PutUVarint(&msg2, uint64_t{1} << 62);  // length far beyond the payload
  msg2.append(16, 'x');
  EXPECT_FALSE(codec.DecodeBlockResponse(msg2).ok());
}

TEST(BinaryCodecTest, CompressedBodySizeLies) {
  BinaryCodecOptions options;
  options.compress_blocks = true;
  options.min_compress_bytes = 1;
  BinaryCodec codec(options);
  const Schema schema({{"s", ColumnType::kString}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 50; ++i) {
    rows.emplace_back(Tuple({Value(std::string("all the same all the same"))}));
  }
  std::string encoded =
      codec.EncodeBlockResponse(1, false, schema, rows).value();
  ASSERT_EQ(static_cast<uint8_t>(encoded[6]), kBinaryFlagCompressedBody);

  // Implausibly large claimed raw size: rejected before allocation.
  std::string huge;
  huge.append(encoded, 0, 8);
  {
    // Rebuild: session, eof, rows, then a lying raw-size varint.
    ByteCursor cursor(encoded);
    (void)cursor.ReadBytes(8);
    (void)cursor.ReadVarint();   // session
    (void)cursor.ReadByte();     // eof
    (void)cursor.ReadUVarint();  // rows
    (void)cursor.ReadUVarint();  // raw size
    huge.push_back(2);           // session=1
    huge.push_back(0);           // eof
    PutUVarint(&huge, rows.size());
    PutUVarint(&huge, uint64_t{1} << 40);  // claimed raw size: 1 TiB
    huge.append(encoded.substr(encoded.size() - cursor.remaining()));
  }
  EXPECT_FALSE(codec.DecodeBlockResponse(huge).ok());
}

TEST(SniffTest, DistinguishesBinarySoapAndGarbage) {
  BinaryCodec binary;
  SoapCodec soap;
  RequestBlockRequest request;
  request.session_id = 1;
  request.block_size = 10;

  EXPECT_EQ(SniffPayloadCodec(binary.EncodeRequestBlock(request).value()),
            CodecKind::kBinary);
  EXPECT_EQ(SniffPayloadCodec(soap.EncodeRequestBlock(request).value()),
            CodecKind::kSoap);
  // Unknown bytes default to SOAP — the legacy parser owns the error.
  EXPECT_EQ(SniffPayloadCodec("garbage"), CodecKind::kSoap);
  EXPECT_EQ(SniffPayloadCodec(""), CodecKind::kSoap);
  EXPECT_EQ(SniffPayloadCodec("WSQ"), CodecKind::kSoap);
}

TEST(NegotiationTest, AdvertisedListsArePreferenceOrdered) {
  EXPECT_EQ(AdvertisedCodecs(CodecKind::kBinary), "binary,soap");
  EXPECT_EQ(AdvertisedCodecs(CodecKind::kSoap), "soap");
}

TEST(NegotiationTest, ServerPicksClientsBestAllowedCodec) {
  EXPECT_EQ(NegotiateCodec("binary,soap", CodecKind::kBinary),
            CodecKind::kBinary);
  EXPECT_EQ(NegotiateCodec("binary,soap", CodecKind::kSoap),
            CodecKind::kSoap);
  EXPECT_EQ(NegotiateCodec("soap", CodecKind::kBinary), CodecKind::kSoap);
}

TEST(NegotiationTest, UnknownAdvertisementsDegradeToSoap) {
  EXPECT_EQ(NegotiateCodec("quantum,alien", CodecKind::kBinary),
            CodecKind::kSoap);
  EXPECT_EQ(NegotiateCodec("", CodecKind::kBinary), CodecKind::kSoap);
  EXPECT_EQ(NegotiateCodec("alien,binary", CodecKind::kBinary),
            CodecKind::kBinary);
}

TEST(CodecChoiceTest, ParsesTheFlagVocabulary) {
  Result<CodecChoice> soap = CodecChoice::FromName("soap");
  ASSERT_TRUE(soap.ok());
  EXPECT_EQ(soap.value().kind, CodecKind::kSoap);
  EXPECT_FALSE(soap.value().compress_blocks);

  Result<CodecChoice> binary = CodecChoice::FromName("binary");
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary.value().kind, CodecKind::kBinary);
  EXPECT_FALSE(binary.value().compress_blocks);

  Result<CodecChoice> lz = CodecChoice::FromName("binary+lz");
  ASSERT_TRUE(lz.ok());
  EXPECT_EQ(lz.value().kind, CodecKind::kBinary);
  EXPECT_TRUE(lz.value().compress_blocks);

  EXPECT_FALSE(CodecChoice::FromName("xml").ok());
  EXPECT_FALSE(CodecChoice::FromName("").ok());

  EXPECT_EQ(soap.value().ToString(), "soap");
  EXPECT_EQ(binary.value().ToString(), "binary");
  EXPECT_EQ(lz.value().ToString(), "binary+lz");
}

TEST(CodecChoiceTest, MakeBlockCodecHonorsTheChoice) {
  std::unique_ptr<BlockCodec> soap =
      MakeBlockCodec(CodecChoice{CodecKind::kSoap, false});
  EXPECT_EQ(soap->kind(), CodecKind::kSoap);
  std::unique_ptr<BlockCodec> binary =
      MakeBlockCodec(CodecChoice{CodecKind::kBinary, false});
  EXPECT_EQ(binary->kind(), CodecKind::kBinary);
}

}  // namespace
}  // namespace wsq::codec
