// Cross-codec conformance: the same query over the same table must
// deliver the same rows whichever wire codec carries the blocks. SOAP
// is held to its historical contract (doubles truncated to 2 decimals
// by the text serializer); binary is held to the stricter one the
// codec was built for (bit-exact, byte-for-byte equal to the table).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "wsq/backend/empirical_backend.h"
#include "wsq/codec/codec.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tpch_gen.h"

namespace wsq {
namespace {

EmpiricalSetup ConformanceSetup(codec::CodecChoice codec) {
  TpchGenOptions gen;
  gen.scale = 0.01;  // 1500 customers
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 23;
  setup.codec = codec;
  return setup;
}

std::vector<Tuple> RunWith(codec::CodecChoice codec) {
  EmpiricalBackend backend(ConformanceSetup(codec));
  FixedController controller(400);  // 4 blocks: 400+400+400+300
  std::vector<Tuple> rows;
  Result<RunTrace> trace =
      backend.RunQueryKeepingTuples(&controller, RunSpec{}, &rows);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return rows;
}

/// Renders a tuple with doubles at SOAP's 2-decimal precision — the
/// common denominator both codecs must agree at.
std::string TwoDecimalKey(const Tuple& tuple) {
  std::string key;
  for (const Value& value : tuple.values()) {
    key += ValueToString(value);  // doubles render with 2 fraction digits
    key.push_back('|');
  }
  return key;
}

TEST(CodecConformanceTest, BinaryDeliversTheTableBitExactly) {
  const std::vector<Tuple> rows =
      RunWith(codec::CodecChoice{codec::CodecKind::kBinary, false});
  const std::shared_ptr<Table> table =
      ConformanceSetup(codec::CodecChoice{}).table;
  ASSERT_EQ(rows.size(), table->num_rows());
  // Tuple::operator== compares doubles exactly — under the binary codec
  // the delivered rows are the generated rows, full precision included.
  EXPECT_EQ(rows, table->rows());
}

TEST(CodecConformanceTest, SoapAndBinaryAgreeAtSoapPrecision) {
  const std::vector<Tuple> via_soap =
      RunWith(codec::CodecChoice{codec::CodecKind::kSoap, false});
  const std::vector<Tuple> via_binary =
      RunWith(codec::CodecChoice{codec::CodecKind::kBinary, false});
  ASSERT_EQ(via_soap.size(), via_binary.size());
  ASSERT_FALSE(via_soap.empty());

  size_t exact_matches = 0;
  for (size_t i = 0; i < via_soap.size(); ++i) {
    EXPECT_EQ(TwoDecimalKey(via_soap[i]), TwoDecimalKey(via_binary[i]))
        << "row " << i;
    if (via_soap[i] == via_binary[i]) ++exact_matches;
  }
  // And the difference is real: customer acctbal is generated at full
  // precision, so SOAP's text truncation must have changed *some* rows.
  EXPECT_LT(exact_matches, via_soap.size());
}

TEST(CodecConformanceTest, CompressedBinaryMatchesPlainBinary) {
  const std::vector<Tuple> plain =
      RunWith(codec::CodecChoice{codec::CodecKind::kBinary, false});
  const std::vector<Tuple> packed =
      RunWith(codec::CodecChoice{codec::CodecKind::kBinary, true});
  EXPECT_EQ(plain, packed);
}

}  // namespace
}  // namespace wsq
