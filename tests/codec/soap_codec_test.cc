#include "wsq/codec/soap_codec.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wsq/codec/codec.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq::codec {
namespace {

Schema CustomerishSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"balance", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
}

std::vector<Tuple> SomeRows(int n) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.emplace_back(Tuple({Value(static_cast<int64_t>(i + 1)),
                             Value(100.0 + i + 0.25),
                             Value("cust-" + std::to_string(i))}));
  }
  return rows;
}

TEST(SoapCodecTest, RequestEncodingIsByteIdenticalToTheLegacyPath) {
  // The codec refactor must not change a single wire byte for SOAP —
  // every simulated payload size in the paper reproduction depends on
  // the historical documents.
  SoapCodec codec;
  RequestBlockRequest request;
  request.session_id = 7;
  request.block_size = 1234;
  Result<std::string> via_codec = codec.EncodeRequestBlock(request);
  ASSERT_TRUE(via_codec.ok());
  EXPECT_EQ(via_codec.value(), wsq::EncodeRequestBlock(request));
}

TEST(SoapCodecTest, UnsequencedRequestOmitsTheBlockSeqElement) {
  SoapCodec codec;
  RequestBlockRequest request;
  request.session_id = 7;
  request.block_size = 1234;
  ASSERT_EQ(request.sequence, -1);
  const std::string unsequenced = codec.EncodeRequestBlock(request).value();
  EXPECT_EQ(unsequenced.find("blockSeq"), std::string::npos)
      << "legacy request document grew a new element";

  request.sequence = 3;
  const std::string sequenced = codec.EncodeRequestBlock(request).value();
  EXPECT_NE(sequenced.find("blockSeq"), std::string::npos);

  Result<RequestBlockRequest> back = codec.DecodeRequestBlock(sequenced);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().sequence, 3);
  Result<RequestBlockRequest> back_unseq =
      codec.DecodeRequestBlock(unsequenced);
  ASSERT_TRUE(back_unseq.ok());
  EXPECT_EQ(back_unseq.value().sequence, -1);
}

TEST(SoapCodecTest, ResponseEncodingIsByteIdenticalToTheLegacyPath) {
  SoapCodec codec;
  const Schema schema = CustomerishSchema();
  const std::vector<Tuple> rows = SomeRows(5);

  Result<std::string> via_codec =
      codec.EncodeBlockResponse(42, /*end_of_results=*/false, schema, rows);
  ASSERT_TRUE(via_codec.ok());

  TupleSerializer serializer(schema);
  BlockResponse legacy;
  legacy.session_id = 42;
  legacy.end_of_results = false;
  legacy.num_tuples = static_cast<int64_t>(rows.size());
  legacy.payload = serializer.SerializeBlock(rows).value();
  EXPECT_EQ(via_codec.value(), wsq::EncodeBlockResponse(legacy));
}

TEST(SoapCodecTest, DecodedBlockCarriesTextModeRows) {
  SoapCodec codec;
  const Schema schema = CustomerishSchema();
  const std::vector<Tuple> rows = SomeRows(4);
  const std::string encoded =
      codec.EncodeBlockResponse(9, /*end_of_results=*/true, schema, rows)
          .value();

  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block.value().session_id, 9);
  EXPECT_TRUE(block.value().end_of_results);
  EXPECT_EQ(block.value().num_tuples, 4);
  ASSERT_TRUE(block.value().rows.text_mode());
  EXPECT_EQ(block.value().rows.num_rows(), 4u);

  // Text mode needs the serializer; the round-trip keeps SOAP's
  // historical 2-decimal double behaviour.
  TupleSerializer serializer(schema);
  Result<std::vector<Tuple>> tuples =
      block.value().rows.Materialize(&serializer);
  ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
  ASSERT_EQ(tuples.value().size(), rows.size());
  EXPECT_EQ(tuples.value(), rows);  // .25 survives 2-decimal text
}

TEST(SoapCodecTest, TextModeMaterializeWithoutSerializerIsAnError) {
  SoapCodec codec;
  const Schema schema = CustomerishSchema();
  const std::string encoded =
      codec.EncodeBlockResponse(1, false, schema, SomeRows(2)).value();
  Result<DecodedBlock> block = codec.DecodeBlockResponse(encoded);
  ASSERT_TRUE(block.ok());
  EXPECT_FALSE(block.value().rows.Materialize(nullptr).ok());
}

TEST(SoapCodecTest, GarbagePayloadIsRejected) {
  SoapCodec codec;
  EXPECT_FALSE(codec.DecodeBlockResponse("not xml at all").ok());
  EXPECT_FALSE(codec.DecodeRequestBlock("WSQB\x01\x01").ok());
}

}  // namespace
}  // namespace wsq::codec
