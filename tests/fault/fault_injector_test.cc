#include "wsq/fault/fault_injector.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

FaultPlan BurstPlan() {
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kUnavailability;
  spec.first_block = 1;
  spec.last_block = 2;
  spec.faults_per_block = 2;
  plan.specs = {spec};
  return plan;
}

TEST(FaultInjectorTest, EmptyPlanNeverFaults) {
  FaultInjector injector(FaultPlan{}, /*run_seed=*/1);
  for (int64_t block = 0; block < 5; ++block) {
    EXPECT_FALSE(injector.NextAttempt(block, 0.0).faulted);
    EXPECT_FALSE(injector.OnSuccess(block, 0.0).active());
  }
  EXPECT_TRUE(injector.log().empty());
  EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjectorTest, BlockWindowAndPerBlockBudget) {
  FaultInjector injector(BurstPlan(), 1);
  // Block 0: outside the window.
  EXPECT_FALSE(injector.NextAttempt(0, 0.0).faulted);
  // Block 1: exactly two faulted attempts, then clean.
  AttemptFault first = injector.NextAttempt(1, 0.0);
  EXPECT_TRUE(first.faulted);
  EXPECT_EQ(first.kind, FaultKind::kUnavailability);
  EXPECT_DOUBLE_EQ(first.cost_ms, FaultPlan{}.timeout_ms);
  EXPECT_TRUE(injector.NextAttempt(1, 0.0).faulted);
  EXPECT_FALSE(injector.NextAttempt(1, 0.0).faulted);
  // Block 2: budget refills per block.
  EXPECT_TRUE(injector.NextAttempt(2, 0.0).faulted);
  EXPECT_TRUE(injector.NextAttempt(2, 0.0).faulted);
  EXPECT_FALSE(injector.NextAttempt(2, 0.0).faulted);
  // Block 3: past the window.
  EXPECT_FALSE(injector.NextAttempt(3, 0.0).faulted);

  ASSERT_EQ(injector.log().size(), 4u);
  EXPECT_EQ(injector.log()[0], (InjectedFault{1, FaultKind::kUnavailability}));
  EXPECT_EQ(injector.log()[3], (InjectedFault{2, FaultKind::kUnavailability}));
}

TEST(FaultInjectorTest, SessionCallsAreNeverFaulted) {
  FaultPlan plan = BurstPlan();
  plan.specs[0].first_block = 0;
  plan.specs[0].last_block = -1;
  FaultInjector injector(plan, 1);
  EXPECT_FALSE(
      injector.NextAttempt(FaultInjector::kSessionCall, 0.0).faulted);
  EXPECT_FALSE(
      injector.OnSuccess(FaultInjector::kSessionCall, 0.0).active());
  EXPECT_TRUE(injector.log().empty());
}

TEST(FaultInjectorTest, TimeWindowGatesInjection) {
  FaultPlan plan;
  FaultSpec outage;
  outage.kind = FaultKind::kConnectionReset;
  outage.start_ms = 100.0;
  outage.end_ms = 200.0;
  outage.faults_per_block = 10;
  plan.specs = {outage};
  FaultInjector injector(plan, 1);
  EXPECT_FALSE(injector.NextAttempt(0, 50.0).faulted);
  EXPECT_TRUE(injector.NextAttempt(0, 100.0).faulted);
  EXPECT_TRUE(injector.NextAttempt(0, 199.9).faulted);
  // end_ms is exclusive.
  EXPECT_FALSE(injector.NextAttempt(0, 200.0).faulted);
}

TEST(FaultInjectorTest, PerturbationsCombineAndFireOncePerBlock) {
  FaultPlan plan;
  FaultSpec spike;
  spike.kind = FaultKind::kLatencySpike;
  spike.last_block = -1;
  spike.latency_multiplier = 2.0;
  spike.latency_add_ms = 10.0;
  FaultSpec stall;
  stall.kind = FaultKind::kServerStall;
  stall.last_block = -1;
  stall.stall_ms = 50.0;
  plan.specs = {spike, stall};

  FaultInjector injector(plan, 1);
  SuccessPerturbation perturbation = injector.OnSuccess(0, 0.0);
  EXPECT_TRUE(perturbation.active());
  EXPECT_DOUBLE_EQ(perturbation.latency_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(perturbation.latency_add_ms, 10.0);
  EXPECT_DOUBLE_EQ(perturbation.stall_ms, 50.0);
  // 100ms exchange -> 100 * 2 + 10 + 50.
  EXPECT_DOUBLE_EQ(perturbation.Apply(100.0), 260.0);
  // Same block again: the budget is spent.
  EXPECT_FALSE(injector.OnSuccess(0, 0.0).active());
  // Next block: fires again.
  EXPECT_TRUE(injector.OnSuccess(1, 0.0).active());
  EXPECT_EQ(injector.faults_injected(), 4);
}

TEST(FaultInjectorTest, ProbabilisticPlanIsDeterministicPerSeed) {
  FaultPlan plan;
  FaultSpec drop;
  drop.kind = FaultKind::kUnavailability;
  drop.last_block = -1;
  drop.probability = 0.3;
  drop.faults_per_block = 3;
  plan.specs = {drop};

  auto replay = [&plan](uint64_t seed) {
    FaultInjector injector(plan, seed);
    std::vector<InjectedFault> log;
    for (int64_t block = 0; block < 50; ++block) {
      while (injector.NextAttempt(block, 0.0).faulted) {
      }
      injector.OnSuccess(block, 0.0);
    }
    return injector.log();
  };

  EXPECT_EQ(replay(1), replay(1));
  EXPECT_NE(replay(1), replay(2));
  EXPECT_FALSE(replay(1).empty());
}

TEST(FaultInjectorTest, FirstMatchingSpecWinsPerAttempt) {
  FaultPlan plan;
  FaultSpec reset;
  reset.kind = FaultKind::kConnectionReset;
  reset.last_block = -1;
  reset.faults_per_block = 1;
  FaultSpec drop;
  drop.kind = FaultKind::kUnavailability;
  drop.last_block = -1;
  drop.faults_per_block = 1;
  plan.specs = {reset, drop};

  FaultInjector injector(plan, 1);
  // Attempt 1 draws the first spec (reset); attempt 2 falls through to
  // the drop once the reset's per-block budget is spent.
  EXPECT_EQ(injector.NextAttempt(0, 0.0).kind, FaultKind::kConnectionReset);
  EXPECT_EQ(injector.NextAttempt(0, 0.0).kind, FaultKind::kUnavailability);
  EXPECT_FALSE(injector.NextAttempt(0, 0.0).faulted);
}

}  // namespace
}  // namespace wsq
