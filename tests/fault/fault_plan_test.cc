#include "wsq/fault/fault_plan.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(FaultKindTest, NamesAndFailureClassification) {
  EXPECT_EQ(FaultKindName(FaultKind::kUnavailability), "unavailability");
  EXPECT_EQ(FaultKindName(FaultKind::kConnectionReset), "connection_reset");
  EXPECT_EQ(FaultKindName(FaultKind::kSoapFaultBurst), "soap_fault");
  EXPECT_EQ(FaultKindName(FaultKind::kLatencySpike), "latency_spike");
  EXPECT_EQ(FaultKindName(FaultKind::kServerStall), "server_stall");

  EXPECT_TRUE(IsFailureKind(FaultKind::kUnavailability));
  EXPECT_TRUE(IsFailureKind(FaultKind::kConnectionReset));
  EXPECT_TRUE(IsFailureKind(FaultKind::kSoapFaultBurst));
  EXPECT_FALSE(IsFailureKind(FaultKind::kLatencySpike));
  EXPECT_FALSE(IsFailureKind(FaultKind::kServerStall));
}

TEST(FaultPlanTest, FailureCostsComeFromThePlan) {
  FaultPlan plan;
  plan.timeout_ms = 400.0;
  plan.reset_cost_ms = 15.0;
  plan.fault_response_ms = 60.0;
  EXPECT_DOUBLE_EQ(plan.FailureCostMs(FaultKind::kUnavailability), 400.0);
  EXPECT_DOUBLE_EQ(plan.FailureCostMs(FaultKind::kConnectionReset), 15.0);
  EXPECT_DOUBLE_EQ(plan.FailureCostMs(FaultKind::kSoapFaultBurst), 60.0);
  // Perturbation kinds never fail an attempt, so they carry no dead time.
  EXPECT_DOUBLE_EQ(plan.FailureCostMs(FaultKind::kLatencySpike), 0.0);
  EXPECT_DOUBLE_EQ(plan.FailureCostMs(FaultKind::kServerStall), 0.0);
}

TEST(FaultPlanTest, ValidateAcceptsDefaultsAndPresets) {
  EXPECT_TRUE(FaultPlan{}.Validate().ok());
  for (const std::string& name : FaultPlan::KnownNames()) {
    Result<FaultPlan> plan = FaultPlan::FromName(name);
    ASSERT_TRUE(plan.ok()) << name;
    EXPECT_TRUE(plan.value().Validate().ok()) << name;
    EXPECT_EQ(plan.value().name, name);
  }
}

TEST(FaultPlanTest, ValidateRejectsBadRanges) {
  FaultPlan plan;
  plan.timeout_ms = 0.0;
  EXPECT_FALSE(plan.Validate().ok());

  plan = FaultPlan{};
  FaultSpec spec;
  spec.probability = 1.5;
  plan.specs = {spec};
  EXPECT_FALSE(plan.Validate().ok());

  spec = FaultSpec{};
  spec.first_block = 5;
  spec.last_block = 3;
  plan.specs = {spec};
  EXPECT_FALSE(plan.Validate().ok());

  spec = FaultSpec{};
  spec.start_ms = 100.0;
  spec.end_ms = 50.0;
  plan.specs = {spec};
  EXPECT_FALSE(plan.Validate().ok());

  spec = FaultSpec{};
  spec.latency_multiplier = 0.0;
  plan.specs = {spec};
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(FaultPlanTest, FromNameRejectsUnknown) {
  Result<FaultPlan> plan = FaultPlan::FromName("nope");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(FaultPlanTest, NonePresetIsEmpty) {
  Result<FaultPlan> plan = FaultPlan::FromName("none");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlanTest, BurstPresetExhaustsLegacyRetryBudget) {
  // The burst preset exists to kill the pre-PR fixed 2-retry policy:
  // each burst block fails 3 attempts in a row, one more than the legacy
  // budget survives.
  Result<FaultPlan> plan = FaultPlan::FromName("burst");
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan.value().specs.empty());
  for (const FaultSpec& spec : plan.value().specs) {
    EXPECT_EQ(spec.kind, FaultKind::kUnavailability);
    EXPECT_GT(spec.faults_per_block, 2);
    EXPECT_DOUBLE_EQ(spec.probability, 1.0);
  }
}

TEST(FaultStreamSeedTest, DistinctRunsGetDistinctStreams) {
  FaultPlan plan;
  const uint64_t a = FaultStreamSeed(plan, 1);
  const uint64_t b = FaultStreamSeed(plan, 1 + 104729);
  EXPECT_NE(a, b);
  // Same (plan, run seed) must derive the same stream on every lane.
  EXPECT_EQ(a, FaultStreamSeed(plan, 1));

  FaultPlan other;
  other.seed = 7;
  EXPECT_NE(FaultStreamSeed(other, 1), a);
}

TEST(InjectedFaultTest, Equality) {
  InjectedFault a{3, FaultKind::kConnectionReset};
  InjectedFault b{3, FaultKind::kConnectionReset};
  InjectedFault c{3, FaultKind::kUnavailability};
  InjectedFault d{4, FaultKind::kConnectionReset};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

}  // namespace
}  // namespace wsq
