// Chaos conformance suite — the cross-backend contract of the
// fault-injection layer:
//
//  1. For a shared deterministic FaultPlan, all three backends log the
//     IDENTICAL fault event sequence (the plan, not the stack, owns the
//     faults).
//  2. With the legacy fixed-retry policy, the "burst" plan kills the
//     fetch outright; with the Chaos resilience policy (deep budget +
//     backoff + breaker) the same run completes with bounded
//     degradation — normalized time <= 3x the no-fault baseline.
//  3. The full controller matrix survives chaos on every backend, with
//     consistent traces and attributed retry accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/eventsim_backend.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/control/controller_factory.h"
#include "wsq/control/factories.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"

namespace wsq {
namespace {

ParametricProfile::Params SmallProfile() {
  ParametricProfile::Params p;
  p.name = "small";
  p.dataset_tuples = 20000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  return p;
}

std::shared_ptr<const ResponseProfile> SharedSmallProfile() {
  return std::make_shared<ParametricProfile>(SmallProfile());
}

EventSimConfig SmallEventConfig() {
  EventSimConfig config;
  config.seed = 3;
  return config;
}

EmpiricalSetup SmallEmpiricalSetup() {
  TpchGenOptions gen;
  gen.scale = 0.02;  // 3000 customers
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 5;
  return setup;
}

std::vector<std::unique_ptr<QueryBackend>> AllBackends() {
  std::vector<std::unique_ptr<QueryBackend>> backends;
  backends.push_back(
      std::make_unique<ProfileBackend>(SharedSmallProfile(), SimOptions{}));
  backends.push_back(std::make_unique<EventSimBackend>(
      SmallEventConfig(), /*dataset_tuples=*/10000));
  backends.push_back(
      std::make_unique<EmpiricalBackend>(SmallEmpiricalSetup()));
  return backends;
}

/// A deterministic plan every backend's run reaches: two burst blocks
/// early, a latency spike, a reset. FixedController(700) produces >= 5
/// blocks on all three datasets.
FaultPlan SharedPlan() {
  FaultPlan plan;
  plan.name = "conformance";
  FaultSpec burst;
  burst.kind = FaultKind::kUnavailability;
  burst.first_block = 1;
  burst.last_block = 2;
  burst.faults_per_block = 2;
  plan.specs.push_back(burst);
  FaultSpec reset;
  reset.kind = FaultKind::kConnectionReset;
  reset.first_block = 3;
  reset.last_block = 3;
  plan.specs.push_back(reset);
  FaultSpec spike;
  spike.kind = FaultKind::kLatencySpike;
  spike.first_block = 2;
  spike.last_block = 4;
  spike.latency_multiplier = 2.0;
  plan.specs.push_back(spike);
  return plan;
}

TEST(ChaosConformanceTest, IdenticalFaultLogAcrossBackends) {
  const FaultPlan plan = SharedPlan();
  const ResilienceConfig resilience = ResilienceConfig::Chaos();

  std::vector<RunTrace> traces;
  for (const auto& backend : AllBackends()) {
    FixedController controller(700);
    RunSpec spec;
    spec.seed = 11;
    spec.fault_plan = &plan;
    spec.resilience = &resilience;
    Result<RunTrace> trace = backend->RunQuery(&controller, spec);
    ASSERT_TRUE(trace.ok()) << backend->name() << ": "
                            << trace.status().ToString();
    EXPECT_TRUE(trace.value().CheckConsistent().ok()) << backend->name();
    EXPECT_FALSE(trace.value().fault_log.empty()) << backend->name();
    traces.push_back(std::move(trace).value());
  }

  // The acceptance artifact: one plan, one seed -> one fault sequence,
  // whichever stack replays it.
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].fault_log, traces[0].fault_log)
        << traces[i].backend_name << " diverged from "
        << traces[0].backend_name;
  }
  // 2 + 2 unavailability, 1 reset, 3 spikes (blocks 2-4).
  EXPECT_EQ(traces[0].fault_log.size(), 8u);
  // Retries are attributed: 5 failed exchanges were all retried.
  for (const RunTrace& trace : traces) {
    EXPECT_EQ(trace.total_retries, 5) << trace.backend_name;
    EXPECT_EQ(trace.session_retries, 0) << trace.backend_name;
    EXPECT_GT(trace.total_retry_time_ms, 0.0) << trace.backend_name;
  }
}

TEST(ChaosConformanceTest, FaultLogIsSeedStableAcrossRepeats) {
  const FaultPlan plan = SharedPlan();
  const ResilienceConfig resilience = ResilienceConfig::Chaos();
  ProfileBackend backend(SharedSmallProfile(), SimOptions{});
  std::vector<InjectedFault> first;
  for (int repeat = 0; repeat < 2; ++repeat) {
    FixedController controller(700);
    RunSpec spec;
    spec.seed = 23;
    spec.fault_plan = &plan;
    spec.resilience = &resilience;
    Result<RunTrace> trace = backend.RunQuery(&controller, spec);
    ASSERT_TRUE(trace.ok());
    if (repeat == 0) {
      first = trace.value().fault_log;
    } else {
      EXPECT_EQ(trace.value().fault_log, first);
    }
  }
}

TEST(ChaosConformanceTest, LegacyPolicyDiesOnBurstChaosPolicySurvives) {
  const FaultPlan burst = FaultPlan::FromName("burst").value();

  for (const auto& backend : AllBackends()) {
    // Pre-PR behavior: 2 retries cannot drain a 3-fault burst block.
    {
      FixedController controller(700);
      RunSpec spec;
      spec.seed = 7;
      spec.fault_plan = &burst;
      // No resilience config: the legacy default policy applies.
      Result<RunTrace> trace = backend->RunQuery(&controller, spec);
      ASSERT_FALSE(trace.ok()) << backend->name();
      EXPECT_EQ(trace.status().code(), StatusCode::kUnavailable)
          << backend->name();
    }
    // With the chaos policy the same plan completes.
    {
      FixedController controller(700);
      const ResilienceConfig resilience = ResilienceConfig::Chaos();
      RunSpec spec;
      spec.seed = 7;
      spec.fault_plan = &burst;
      spec.resilience = &resilience;
      Result<RunTrace> trace = backend->RunQuery(&controller, spec);
      ASSERT_TRUE(trace.ok()) << backend->name() << ": "
                              << trace.status().ToString();
      EXPECT_TRUE(trace.value().CheckConsistent().ok()) << backend->name();
    }
  }
}

TEST(ChaosConformanceTest, DegradationIsBoundedUnderBurst) {
  // The acceptance criterion end to end: a deterministic burst deep
  // enough to kill the pre-PR fixed-retry policy outright, on every
  // backend, with the fault costs scaled to the backend's own no-fault
  // baseline (chaos is relative — a 500 ms timeout is an outage for a
  // fast LAN run and a hiccup for a WAN one). With the Chaos policy and
  // the watchdog engaged, the run must complete within 3x the baseline.
  for (const auto& backend : AllBackends()) {
    ControllerFactoryFn factory = WithWatchdog(NamedFactory("hybrid"));

    std::unique_ptr<Controller> baseline_controller = factory();
    RunSpec baseline_spec;
    baseline_spec.seed = 13;
    Result<RunTrace> baseline =
        backend->RunQuery(baseline_controller.get(), baseline_spec);
    ASSERT_TRUE(baseline.ok()) << backend->name();
    const double baseline_ms = baseline.value().total_time_ms;

    FaultPlan burst;
    burst.name = "scaled_burst";
    FaultSpec storm;
    storm.kind = FaultKind::kUnavailability;
    storm.first_block = 1;
    storm.last_block = 3;
    storm.faults_per_block = 3;  // one more than the legacy budget
    burst.specs.push_back(storm);
    burst.timeout_ms = std::max(1.0, 0.04 * baseline_ms);

    // Pre-PR behavior dies on the first burst block.
    {
      std::unique_ptr<Controller> legacy_controller = factory();
      RunSpec legacy_spec;
      legacy_spec.seed = 13;
      legacy_spec.fault_plan = &burst;
      Result<RunTrace> legacy =
          backend->RunQuery(legacy_controller.get(), legacy_spec);
      ASSERT_FALSE(legacy.ok()) << backend->name();
      EXPECT_EQ(legacy.status().code(), StatusCode::kUnavailable)
          << backend->name();
    }

    const ResilienceConfig resilience = ResilienceConfig::Chaos();
    std::unique_ptr<Controller> chaos_controller = factory();
    RunSpec chaos_spec;
    chaos_spec.seed = 13;
    chaos_spec.fault_plan = &burst;
    chaos_spec.resilience = &resilience;
    Result<RunTrace> chaos =
        backend->RunQuery(chaos_controller.get(), chaos_spec);
    ASSERT_TRUE(chaos.ok()) << backend->name() << ": "
                            << chaos.status().ToString();

    EXPECT_FALSE(chaos.value().fault_log.empty()) << backend->name();
    EXPECT_LE(chaos.value().total_time_ms, 3.0 * baseline_ms)
        << backend->name();
    EXPECT_EQ(chaos.value().total_tuples, baseline.value().total_tuples)
        << backend->name();
  }
}

TEST(ChaosConformanceTest, ControllerMatrixSurvivesChaosEverywhere) {
  // The 7-controller matrix of bench_table3_degradation, under the
  // burst and latency plans, on all three backends.
  const std::vector<std::string> controllers = {
      "constant",        "adaptive",   "hybrid",     "hybrid_s",
      "mimd",            "model_quadratic",          "self_tuning"};
  const ResilienceConfig resilience = ResilienceConfig::Chaos();

  for (const std::string plan_name : {"burst", "latency"}) {
    const FaultPlan plan = FaultPlan::FromName(plan_name).value();
    for (const auto& backend : AllBackends()) {
      for (const std::string& name : controllers) {
        std::unique_ptr<Controller> controller =
            ControllerFactory::FromName(name).value();
        RunSpec spec;
        spec.seed = 29;
        spec.fault_plan = &plan;
        spec.resilience = &resilience;
        Result<RunTrace> trace = backend->RunQuery(controller.get(), spec);
        ASSERT_TRUE(trace.ok())
            << plan_name << "/" << backend->name() << "/" << name << ": "
            << trace.status().ToString();
        Status consistent = trace.value().CheckConsistent();
        EXPECT_TRUE(consistent.ok())
            << plan_name << "/" << backend->name() << "/" << name << ": "
            << consistent.ToString();
        // Only the profile backend's dataset is long enough that every
        // controller is guaranteed to reach the plans' block windows
        // (fast-growing controllers drain the small empirical dataset
        // in two blocks).
        if (backend->name() == "profile") {
          EXPECT_FALSE(trace.value().fault_log.empty())
              << plan_name << "/" << name;
        }
      }
    }
  }
}

TEST(ChaosConformanceTest, BreakerTripsAreReportedInTrace) {
  // A plan violent enough to trip the breaker (3 consecutive failures)
  // must surface breaker_trips in the trace.
  FaultPlan plan;
  FaultSpec storm;
  storm.kind = FaultKind::kUnavailability;
  storm.first_block = 1;
  storm.last_block = 2;
  storm.faults_per_block = 4;
  plan.specs.push_back(storm);

  ResilienceConfig resilience = ResilienceConfig::Chaos();
  resilience.breaker_threshold = 3;

  ProfileBackend backend(SharedSmallProfile(), SimOptions{});
  FixedController controller(700);
  RunSpec spec;
  spec.seed = 31;
  spec.fault_plan = &plan;
  spec.resilience = &resilience;
  Result<RunTrace> trace = backend.RunQuery(&controller, spec);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_GE(trace.value().breaker_trips, 1);
}

TEST(ChaosConformanceTest, NullPlanMatchesHistoricBehaviorByteForByte) {
  // RunSpec without a fault plan must reproduce the pre-chaos trace
  // exactly — no extra RNG draws, no accounting drift.
  ProfileBackend backend(SharedSmallProfile(), SimOptions{});

  std::unique_ptr<Controller> with_chaos_fields =
      ControllerFactory::FromName("hybrid").value();
  RunSpec plain;
  plain.seed = 17;
  Result<RunTrace> a = backend.RunQuery(with_chaos_fields.get(), plain);
  ASSERT_TRUE(a.ok());

  // An empty plan plus the legacy policy is the same thing.
  std::unique_ptr<Controller> with_legacy_policy =
      ControllerFactory::FromName("hybrid").value();
  const ResilienceConfig legacy = ResilienceConfig::Legacy();
  RunSpec with_policy;
  with_policy.seed = 17;
  with_policy.resilience = &legacy;
  Result<RunTrace> b = backend.RunQuery(with_legacy_policy.get(), with_policy);
  ASSERT_TRUE(b.ok());

  ASSERT_EQ(a.value().steps.size(), b.value().steps.size());
  EXPECT_DOUBLE_EQ(a.value().total_time_ms, b.value().total_time_ms);
  for (size_t i = 0; i < a.value().steps.size(); ++i) {
    EXPECT_EQ(a.value().steps[i].requested_size,
              b.value().steps[i].requested_size);
    EXPECT_DOUBLE_EQ(a.value().steps[i].per_tuple_ms,
                     b.value().steps[i].per_tuple_ms);
  }
}

}  // namespace
}  // namespace wsq
