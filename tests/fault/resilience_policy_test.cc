#include "wsq/fault/resilience_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace wsq {
namespace {

TEST(ResilienceConfigTest, DefaultsAreLegacyAndValid) {
  const ResilienceConfig legacy = ResilienceConfig::Legacy();
  EXPECT_TRUE(legacy.Validate().ok());
  EXPECT_EQ(legacy.max_retries_per_call, 2);
  EXPECT_DOUBLE_EQ(legacy.backoff_initial_ms, 0.0);
  EXPECT_EQ(legacy.breaker_threshold, 0);
  EXPECT_TRUE(ResilienceConfig::Chaos().Validate().ok());
}

TEST(ResilienceConfigTest, ValidateRejectsBadRanges) {
  ResilienceConfig config;
  config.max_retries_per_call = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = ResilienceConfig{};
  config.backoff_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = ResilienceConfig{};
  config.backoff_jitter = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = ResilienceConfig{};
  config.breaker_fallback_size = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ResiliencePolicyTest, LegacyBackoffIsZeroWithoutRngDraws) {
  ResiliencePolicy policy(ResilienceConfig::Legacy(), 1);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 0.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 0.0);
  EXPECT_DOUBLE_EQ(policy.CapCostMs(500.0, 1000), 500.0);
  EXPECT_FALSE(policy.HasDeadline());
}

TEST(ResiliencePolicyTest, ExponentialBackoffWithCap) {
  ResilienceConfig config;
  config.backoff_initial_ms = 10.0;
  config.backoff_multiplier = 2.0;
  config.backoff_max_ms = 50.0;
  ResiliencePolicy policy(config, 1);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3), 40.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4), 50.0);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffMs(5), 50.0);
}

TEST(ResiliencePolicyTest, JitteredBackoffIsDeterministicPerSeed) {
  ResilienceConfig config;
  config.backoff_initial_ms = 100.0;
  config.backoff_jitter = 0.25;

  auto schedule = [&config](uint64_t run_seed) {
    ResiliencePolicy policy(config, run_seed);
    std::vector<double> backoffs;
    for (int k = 1; k <= 8; ++k) backoffs.push_back(policy.BackoffMs(k));
    return backoffs;
  };

  const std::vector<double> a = schedule(1);
  EXPECT_EQ(a, schedule(1));       // same seed, same schedule
  EXPECT_NE(a, schedule(2));       // seed changes the jitter stream
  for (double backoff : a) {
    EXPECT_GE(backoff, 75.0);
    // Base is capped at backoff_max_ms (5000); jitter adds at most 25%.
    EXPECT_LT(backoff, 6250.0);
  }
}

TEST(ResiliencePolicyTest, DeadlineScalesWithBlockSize) {
  ResilienceConfig config;
  config.deadline_base_ms = 100.0;
  config.deadline_per_tuple_ms = 0.5;
  ResiliencePolicy policy(config, 1);
  EXPECT_TRUE(policy.HasDeadline());
  EXPECT_DOUBLE_EQ(policy.DeadlineMs(1000), 600.0);
  // Costs past the deadline are capped; cheaper ones pass through.
  EXPECT_DOUBLE_EQ(policy.CapCostMs(5000.0, 1000), 600.0);
  EXPECT_DOUBLE_EQ(policy.CapCostMs(200.0, 1000), 200.0);
  // Bigger blocks buy a longer deadline.
  EXPECT_DOUBLE_EQ(policy.CapCostMs(5000.0, 8000), 4100.0);
}

TEST(ResiliencePolicyTest, BreakerOpensAfterThresholdAndDegrades) {
  ResilienceConfig config;
  config.breaker_threshold = 3;
  config.breaker_fallback_size = 250;
  config.breaker_cooldown_blocks = 2;
  ResiliencePolicy policy(config, 1);

  EXPECT_EQ(policy.breaker_state(), BreakerState::kClosed);
  policy.OnExchangeFailure();
  policy.OnExchangeFailure();
  EXPECT_EQ(policy.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(policy.consecutive_failures(), 2);
  policy.OnExchangeFailure();
  EXPECT_EQ(policy.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(policy.breaker_trips(), 1);

  // Open: the controller's command is overridden with the fallback for
  // cooldown blocks, then one half-open probe at the controller's size.
  EXPECT_EQ(policy.GovernNextSize(9000), 250);
  EXPECT_EQ(policy.GovernNextSize(9000), 250);
  EXPECT_EQ(policy.GovernNextSize(9000), 9000);
  EXPECT_EQ(policy.breaker_state(), BreakerState::kHalfOpen);

  // Probe succeeds: breaker closes.
  policy.OnExchangeSuccess();
  EXPECT_EQ(policy.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(policy.GovernNextSize(9000), 9000);
  EXPECT_EQ(policy.breaker_trips(), 1);
}

TEST(ResiliencePolicyTest, FailedProbeReopensBreaker) {
  ResilienceConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_blocks = 1;
  ResiliencePolicy policy(config, 1);

  policy.OnExchangeFailure();
  EXPECT_EQ(policy.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(policy.GovernNextSize(4000), config.breaker_fallback_size);
  EXPECT_EQ(policy.GovernNextSize(4000), 4000);  // half-open probe
  policy.OnExchangeFailure();                    // probe fails
  EXPECT_EQ(policy.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(policy.breaker_trips(), 2);
}

TEST(ResiliencePolicyTest, SuccessResetsConsecutiveFailures) {
  ResilienceConfig config;
  config.breaker_threshold = 3;
  ResiliencePolicy policy(config, 1);
  policy.OnExchangeFailure();
  policy.OnExchangeFailure();
  policy.OnExchangeSuccess();
  EXPECT_EQ(policy.consecutive_failures(), 0);
  policy.OnExchangeFailure();
  policy.OnExchangeFailure();
  EXPECT_EQ(policy.breaker_state(), BreakerState::kClosed);
}

TEST(ResiliencePolicyTest, BreakerOffNeverGoverns) {
  ResiliencePolicy policy(ResilienceConfig::Legacy(), 1);
  for (int i = 0; i < 10; ++i) policy.OnExchangeFailure();
  EXPECT_EQ(policy.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(policy.GovernNextSize(7777), 7777);
  EXPECT_EQ(policy.breaker_trips(), 0);
}

TEST(ResiliencePolicyTest, TransitionsAreLatchedInOrder) {
  ResilienceConfig config;
  config.breaker_threshold = 1;
  config.breaker_cooldown_blocks = 0;
  ResiliencePolicy policy(config, 1);

  policy.OnExchangeFailure();        // closed -> open
  policy.GovernNextSize(1000);       // open -> half-open (cooldown 0)
  policy.OnExchangeSuccess();        // half-open -> closed

  BreakerState from, to;
  ASSERT_TRUE(policy.ConsumeTransition(&from, &to));
  EXPECT_EQ(from, BreakerState::kClosed);
  EXPECT_EQ(to, BreakerState::kOpen);
  ASSERT_TRUE(policy.ConsumeTransition(&from, &to));
  EXPECT_EQ(from, BreakerState::kOpen);
  EXPECT_EQ(to, BreakerState::kHalfOpen);
  ASSERT_TRUE(policy.ConsumeTransition(&from, &to));
  EXPECT_EQ(from, BreakerState::kHalfOpen);
  EXPECT_EQ(to, BreakerState::kClosed);
  EXPECT_FALSE(policy.ConsumeTransition(&from, &to));
}

TEST(BreakerStateTest, Names) {
  EXPECT_EQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_EQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_EQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace wsq
