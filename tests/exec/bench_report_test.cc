#include "wsq/exec/bench_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "wsq/obs/json_lite.h"

namespace wsq::exec {
namespace {

TEST(RunTimingsTest, ExactNearestRankPercentiles) {
  RunTimings timings;
  for (int i = 100; i >= 1; --i) {  // 1..100 ms, recorded unsorted
    timings.RecordRunMs(static_cast<double>(i));
  }
  EXPECT_EQ(timings.runs(), 100u);
  EXPECT_DOUBLE_EQ(timings.MinMs(), 1.0);
  EXPECT_DOUBLE_EQ(timings.MaxMs(), 100.0);
  EXPECT_DOUBLE_EQ(timings.MeanMs(), 50.5);
  EXPECT_DOUBLE_EQ(timings.PercentileMs(0.50), 50.0);
  EXPECT_DOUBLE_EQ(timings.PercentileMs(0.99), 99.0);
  EXPECT_DOUBLE_EQ(timings.PercentileMs(0.0), 1.0);
  EXPECT_DOUBLE_EQ(timings.PercentileMs(1.0), 100.0);

  timings.Reset();
  EXPECT_EQ(timings.runs(), 0u);
  EXPECT_TRUE(std::isnan(timings.PercentileMs(0.5)));
}

TEST(RunTimingsTest, SingleSampleEveryPercentile) {
  RunTimings timings;
  timings.RecordRunMs(42.0);
  EXPECT_DOUBLE_EQ(timings.PercentileMs(0.50), 42.0);
  EXPECT_DOUBLE_EQ(timings.PercentileMs(0.99), 42.0);
  EXPECT_DOUBLE_EQ(timings.MeanMs(), 42.0);
}

TEST(RunTimingsTest, ConcurrentRecordsAllLand) {
  RunTimings timings;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timings] {
      for (int i = 0; i < kPerThread; ++i) timings.RecordRunMs(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(timings.runs(), size_t{kThreads} * kPerThread);
}

TEST(GlobalRunTimingsTest, NullByDefaultAndInstallable) {
  EXPECT_EQ(GlobalRunTimings(), nullptr);
  RunTimings timings;
  SetGlobalRunTimings(&timings);
  EXPECT_EQ(GlobalRunTimings(), &timings);
  SetGlobalRunTimings(nullptr);
  EXPECT_EQ(GlobalRunTimings(), nullptr);
}

TEST(BenchReportTest, JsonIsValidAndCarriesEveryField) {
  RunTimings timings;
  timings.RecordRunMs(10.0);
  timings.RecordRunMs(20.0);
  BenchReport report;
  report.bench = "bench_fig4_wan_decisions";
  report.jobs = 8;
  report.hardware_concurrency = 8;
  report.wall_time_s = 0.5;

  const std::string json = BenchReportJson(report, timings);
  EXPECT_TRUE(CheckJson(json).ok()) << json;
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"bench_fig4_wan_decisions\""),
            std::string::npos);
  EXPECT_NE(json.find("\"jobs\":8"), std::string::npos);
  EXPECT_NE(json.find("\"hardware_concurrency\":8"), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"runs_per_sec\":"), std::string::npos);
  EXPECT_NE(json.find("\"run_ms\":{"), std::string::npos);
  for (const char* field : {"\"mean\":", "\"min\":", "\"max\":", "\"p50\":",
                            "\"p99\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(BenchReportTest, CompositeJoinsPhaseReports) {
  // Multi-phase benches emit one {"reports":[...]} document whose
  // entries are ordinary flat rows named "<bench>/<phase>" — the shape
  // the regression gate matches to baselines by bench name.
  RunTimings sim;
  sim.RecordRunMs(5.0);
  sim.RecordRunMs(7.0);
  RunTimings live;
  live.RecordRunMs(42.0);

  BenchReport sim_report;
  sim_report.bench = "bench_fleet_tenancy/sim";
  sim_report.jobs = 4;
  sim_report.wall_time_s = 0.1;
  BenchReport live_report;
  live_report.bench = "bench_fleet_tenancy/live";
  live_report.jobs = 1;
  live_report.wall_time_s = 0.2;

  const std::string json = CompositeBenchReportJson(
      {{sim_report, &sim}, {live_report, &live}});
  EXPECT_TRUE(CheckJson(json).ok()) << json;
  EXPECT_NE(json.find("\"schema_version\":1,\"reports\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"bench_fleet_tenancy/sim\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"bench_fleet_tenancy/live\""),
            std::string::npos);
  // Both phase rows carry their own run counts.
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"runs\":1"), std::string::npos);
}

TEST(BenchReportTest, CompositeSkipsNullTimingsAndStaysValidWhenEmpty) {
  BenchReport report;
  report.bench = "phase_without_timings";
  const std::string skipped =
      CompositeBenchReportJson({{report, nullptr}});
  EXPECT_TRUE(CheckJson(skipped).ok()) << skipped;
  EXPECT_EQ(skipped.find("phase_without_timings"), std::string::npos);

  const std::string empty = CompositeBenchReportJson({});
  EXPECT_TRUE(CheckJson(empty).ok()) << empty;
  EXPECT_NE(empty.find("\"reports\":[]"), std::string::npos);
}

TEST(BenchReportTest, EmptyTimingsStillValidJson) {
  // No runs recorded (a bench that never hit the harness): percentiles
  // are NaN, which must serialize as null, not as bare NaN (RFC 8259).
  RunTimings timings;
  BenchReport report;
  report.bench = "empty";
  const std::string json = BenchReportJson(report, timings);
  EXPECT_TRUE(CheckJson(json).ok()) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
}

}  // namespace
}  // namespace wsq::exec
