// Fault plans compose with the parallel experiment engine: every lane
// derives its fault RNG stream from the same per-run seed
// (base + run * stride) as the serial path, so chaos fan-out stays
// byte-identical to --jobs=1 — including the fault event logs and the
// resilience accounting.

#include "wsq/exec/parallel_runner.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/eventsim_backend.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/control/factories.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/sim/profile.h"

namespace wsq::exec {
namespace {

/// Trace fingerprint including every chaos field; "%a" renders doubles
/// bit-exactly.
std::string ChaosFingerprint(const std::vector<RunTrace>& traces) {
  std::string out;
  char buf[200];
  for (const RunTrace& trace : traces) {
    std::snprintf(buf, sizeof(buf),
                  "%s|%a|%" PRId64 "|%" PRId64 "|%" PRId64 "|%" PRId64
                  "|%a|%" PRId64 "\n",
                  trace.controller_name.c_str(), trace.total_time_ms,
                  trace.total_blocks, trace.total_tuples, trace.total_retries,
                  trace.session_retries, trace.total_retry_time_ms,
                  trace.breaker_trips);
    out += buf;
    for (const InjectedFault& fault : trace.fault_log) {
      std::snprintf(buf, sizeof(buf), "  f %" PRId64 " %d\n",
                    fault.block_index, static_cast<int>(fault.kind));
      out += buf;
    }
    for (const RunStep& s : trace.steps) {
      std::snprintf(buf, sizeof(buf), "  s %" PRId64 "|%" PRId64 "|%a|%" PRId64
                                      "\n",
                    s.step, s.requested_size, s.block_time_ms, s.retries);
      out += buf;
    }
  }
  return out;
}

std::shared_ptr<const ResponseProfile> NoisyProfile() {
  ParametricProfile::Params p;
  p.name = "chaos_parallel";
  p.dataset_tuples = 20000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  return std::make_shared<ParametricProfile>(p);
}

SimOptions NoisyOptions() {
  SimOptions options;
  options.noise_amplitude = 0.2;
  options.seed = 11;
  return options;
}

void ExpectChaosParallelMatchesSerial(QueryBackend& backend, int runs,
                                      const FaultPlan& plan) {
  const ResilienceConfig resilience = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.fault_plan = &plan;
  spec.resilience = &resilience;
  const ControllerFactoryFn factory = NamedFactory("hybrid");

  Result<std::vector<RunTrace>> serial = RunTraces(
      factory, backend, spec, runs, /*base_seed=*/17,
      /*seed_stride=*/104729, /*jobs=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  Result<std::vector<RunTrace>> parallel = RunTraces(
      factory, backend, spec, runs, /*base_seed=*/17,
      /*seed_stride=*/104729, /*jobs=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial.value().size(), static_cast<size_t>(runs));
  EXPECT_EQ(ChaosFingerprint(serial.value()),
            ChaosFingerprint(parallel.value()));

  // The chaos machinery genuinely engaged on every run.
  for (const RunTrace& trace : serial.value()) {
    EXPECT_FALSE(trace.fault_log.empty());
    EXPECT_TRUE(trace.CheckConsistent().ok());
  }
}

TEST(ChaosParallelTest, ProfileBackendBurstMatchesSerial) {
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  ExpectChaosParallelMatchesSerial(backend, 8,
                                   FaultPlan::FromName("burst").value());
}

TEST(ChaosParallelTest, ProfileBackendFlakyMatchesSerial) {
  // "flaky" is probabilistic: this is the test that per-lane fault RNG
  // streams derive from the run seed, not from lane identity or order.
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  ExpectChaosParallelMatchesSerial(backend, 8,
                                   FaultPlan::FromName("flaky").value());
}

TEST(ChaosParallelTest, EventSimBackendFlakyMatchesSerial) {
  EventSimConfig config;
  config.jitter_sigma = 0.08;
  config.seed = 3;
  EventSimBackend backend(config, /*dataset_tuples=*/20000);
  ExpectChaosParallelMatchesSerial(backend, 6,
                                   FaultPlan::FromName("flaky").value());
}

TEST(ChaosParallelTest, EmpiricalBackendResetsMatchesSerial) {
  TpchGenOptions gen;
  gen.scale = 0.02;
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 5;
  EmpiricalBackend backend(setup);
  // "resets" starts at block 1 — the small empirical dataset is drained
  // in two hybrid-controller blocks, so a plan addressing later blocks
  // would never fire.
  ExpectChaosParallelMatchesSerial(backend, 4,
                                   FaultPlan::FromName("resets").value());
}

TEST(ChaosParallelTest, FaultStreamsDifferAcrossRuns) {
  // Probabilistic plans must not replay the same fault sequence on every
  // run of a repeated experiment — the per-run seed feeds the stream.
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  const FaultPlan plan = FaultPlan::FromName("flaky").value();
  const ResilienceConfig resilience = ResilienceConfig::Chaos();
  RunSpec spec;
  spec.fault_plan = &plan;
  spec.resilience = &resilience;

  Result<std::vector<RunTrace>> traces = RunTraces(
      NamedFactory("hybrid"), backend, spec, 6, /*base_seed=*/17, 104729,
      /*jobs=*/4);
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  bool any_differ = false;
  for (size_t r = 1; r < traces.value().size(); ++r) {
    if (traces.value()[r].fault_log != traces.value()[0].fault_log) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ) << "per-run seeds had no effect on the fault stream";
}

}  // namespace
}  // namespace wsq::exec
