#include "wsq/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "wsq/exec/exec_context.h"

namespace wsq::exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      const int now = inside.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      inside.fetch_sub(1);
    });
  }
  pool.Wait();
  // Even on a single-core host the sleeps overlap, so more than one
  // task must have been inside the critical region at once.
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ExecContextTest, DefaultJobsStartsAtOneAndClamps) {
  EXPECT_EQ(DefaultJobs(), 1);
  SetDefaultJobs(0);
  EXPECT_EQ(DefaultJobs(), 1);
  SetDefaultJobs(8);
  EXPECT_EQ(DefaultJobs(), 8);
  SetDefaultJobs(1);
}

TEST(ExecContextTest, ScopedDefaultJobsRestores) {
  ASSERT_EQ(DefaultJobs(), 1);
  {
    ScopedDefaultJobs scoped(6);
    EXPECT_EQ(DefaultJobs(), 6);
    {
      ScopedDefaultJobs inner(2);
      EXPECT_EQ(DefaultJobs(), 2);
    }
    EXPECT_EQ(DefaultJobs(), 6);
  }
  EXPECT_EQ(DefaultJobs(), 1);
}

TEST(ExecContextTest, EffectiveJobsResolvesDefaultAndRunCap) {
  ScopedDefaultJobs scoped(4);
  EXPECT_EQ(EffectiveJobs(0, 100), 4);   // 0 -> default
  EXPECT_EQ(EffectiveJobs(-3, 100), 4);  // negative -> default
  EXPECT_EQ(EffectiveJobs(8, 100), 8);   // explicit wins
  EXPECT_EQ(EffectiveJobs(8, 3), 3);     // never more lanes than runs
  EXPECT_EQ(EffectiveJobs(0, 2), 2);
  EXPECT_EQ(EffectiveJobs(1, 100), 1);
}

}  // namespace
}  // namespace wsq::exec
