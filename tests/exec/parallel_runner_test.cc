// Determinism contract of the parallel experiment engine: the RunTrace
// stream and every repeated-run summary are a pure function of
// (backend config, controller factory, seeds) — never of the lane
// count. Serial (--jobs=1, the historical path) and parallel fan-out
// must agree byte for byte on all three backends.

#include "wsq/exec/parallel_runner.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/eventsim_backend.h"
#include "wsq/backend/experiment.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/control/factories.h"
#include "wsq/exec/exec_context.h"
#include "wsq/netsim/presets.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/sim/profile.h"

namespace wsq::exec {
namespace {

/// Exact textual image of a trace stream: doubles rendered as hex
/// floats ("%a"), so two fingerprints match iff every field matches to
/// the last bit. This is the "byte-identical" half of the acceptance
/// criterion, applied to the in-memory traces the figure code folds.
std::string Fingerprint(const std::vector<RunTrace>& traces) {
  std::string out;
  char buf[160];
  for (const RunTrace& trace : traces) {
    std::snprintf(buf, sizeof(buf), "%s|%s|%a|%" PRId64 "|%" PRId64
                                    "|%" PRId64 "\n",
                  trace.backend_name.c_str(), trace.controller_name.c_str(),
                  trace.total_time_ms, trace.total_blocks, trace.total_tuples,
                  trace.total_retries);
    out += buf;
    for (const RunStep& s : trace.steps) {
      std::snprintf(buf, sizeof(buf),
                    "  %" PRId64 "|%" PRId64 "|%" PRId64 "|%a|%a|%" PRId64
                    "|%" PRId64 "\n",
                    s.step, s.requested_size, s.received_tuples,
                    s.per_tuple_ms, s.block_time_ms, s.retries,
                    s.adaptivity_step);
      out += buf;
    }
  }
  return out;
}

std::string SummaryFingerprint(const RepeatedRunSummary& s) {
  std::string out = s.controller_name;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "|%a|%a|%a|%a|%a|%a", s.total_time_ms.mean(),
                s.total_time_ms.stddev(), s.total_time_ms.min(),
                s.total_time_ms.max(), s.final_block_size.mean(),
                s.final_block_size.stddev());
  out += buf;
  for (double d : s.mean_decision_per_step) {
    std::snprintf(buf, sizeof(buf), "|%a", d);
    out += buf;
  }
  return out;
}

std::shared_ptr<const ResponseProfile> NoisyProfile() {
  ParametricProfile::Params p;
  p.name = "parallel_test";
  p.dataset_tuples = 20000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  return std::make_shared<ParametricProfile>(p);
}

SimOptions NoisyOptions() {
  SimOptions options;
  options.noise_amplitude = 0.2;  // per-run seeds must matter
  options.seed = 11;
  return options;
}

EventSimConfig JitteryEventConfig() {
  EventSimConfig config;
  config.jitter_sigma = 0.08;
  config.seed = 3;
  return config;
}

EmpiricalSetup SmallEmpiricalSetup() {
  TpchGenOptions gen;
  gen.scale = 0.02;  // 3000 customers
  EmpiricalSetup setup;
  setup.table = GenerateCustomer(gen).value();
  setup.query.table_name = "customer";
  setup.link = Lan1Gbps();
  setup.seed = 5;
  return setup;
}

/// Shared check: serial and 4-lane runs of an adaptive controller yield
/// bit-identical trace streams.
void ExpectParallelMatchesSerial(QueryBackend& backend, int runs) {
  const ControllerFactoryFn factory = NamedFactory("hybrid");
  Result<std::vector<RunTrace>> serial = RunTraces(
      factory, backend, RunSpec{}, runs, /*base_seed=*/17,
      /*seed_stride=*/104729, /*jobs=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  Result<std::vector<RunTrace>> parallel = RunTraces(
      factory, backend, RunSpec{}, runs, /*base_seed=*/17,
      /*seed_stride=*/104729, /*jobs=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial.value().size(), static_cast<size_t>(runs));
  ASSERT_EQ(parallel.value().size(), static_cast<size_t>(runs));
  EXPECT_EQ(Fingerprint(serial.value()), Fingerprint(parallel.value()));

  // The seeds genuinely vary across runs: with noise/jitter on, at
  // least two runs must differ (guards against a fingerprint that
  // passes because the backend ignored the seed entirely).
  bool any_differ = false;
  for (int r = 1; r < runs; ++r) {
    if (serial.value()[r].total_time_ms !=
        serial.value()[0].total_time_ms) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ) << "per-run seeds had no effect";
}

TEST(ParallelRunnerTest, ProfileBackendParallelMatchesSerial) {
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  ExpectParallelMatchesSerial(backend, 8);
}

TEST(ParallelRunnerTest, EventSimBackendParallelMatchesSerial) {
  EventSimBackend backend(JitteryEventConfig(), /*dataset_tuples=*/20000);
  ExpectParallelMatchesSerial(backend, 6);
}

TEST(ParallelRunnerTest, EmpiricalBackendParallelMatchesSerial) {
  EmpiricalBackend backend(SmallEmpiricalSetup());
  ExpectParallelMatchesSerial(backend, 4);
}

TEST(ParallelRunnerTest, SeedOverrideReproducibleUnderManyLanes) {
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  const ControllerFactoryFn factory = NamedFactory("adaptive");

  Result<std::vector<RunTrace>> first = RunTraces(
      factory, backend, RunSpec{}, 8, /*base_seed=*/99, 104729, /*jobs=*/8);
  Result<std::vector<RunTrace>> second = RunTraces(
      factory, backend, RunSpec{}, 8, /*base_seed=*/99, 104729, /*jobs=*/8);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Fingerprint(first.value()), Fingerprint(second.value()));

  // A different base seed shifts every run's seed; the stream changes.
  Result<std::vector<RunTrace>> other = RunTraces(
      factory, backend, RunSpec{}, 8, /*base_seed=*/100, 104729, /*jobs=*/8);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(Fingerprint(first.value()), Fingerprint(other.value()));
}

TEST(ParallelRunnerTest, MoreLanesThanRunsIsFine) {
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  Result<std::vector<RunTrace>> traces = RunTraces(
      FixedFactory(700), backend, RunSpec{}, 2, 1, 104729, /*jobs=*/16);
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  EXPECT_EQ(traces.value().size(), 2u);
  for (const RunTrace& t : traces.value()) {
    EXPECT_TRUE(t.CheckConsistent().ok());
  }
}

TEST(ParallelRunnerTest, NullFactoryFailsOnEveryLaneCount) {
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  const ControllerFactoryFn broken = [] {
    return std::unique_ptr<Controller>();
  };
  for (int jobs : {1, 4}) {
    Result<std::vector<RunTrace>> traces =
        RunTraces(broken, backend, RunSpec{}, 4, 1, 104729, jobs);
    ASSERT_FALSE(traces.ok()) << "jobs=" << jobs;
    EXPECT_EQ(traces.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParallelRunnerTest, ZeroRunsRejected) {
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  Result<std::vector<RunTrace>> traces =
      RunTraces(FixedFactory(700), backend, RunSpec{}, 0, 1, 104729, 4);
  EXPECT_FALSE(traces.ok());
}

TEST(ParallelRunnerTest, RunRepeatedSummaryInvariantUnderDefaultJobs) {
  // The figure-level check: the whole RunRepeated harness — traces plus
  // all folds — is invariant under exec::DefaultJobs(), which is what
  // --jobs wires through in the bench binaries.
  ProfileBackend backend(NoisyProfile(), NoisyOptions());
  const ControllerFactoryFn factory = NamedFactory("hybrid");

  Result<RepeatedRunSummary> serial =
      RunRepeated(factory, backend, /*runs=*/6, /*base_seed=*/11);
  ASSERT_TRUE(serial.ok());

  Result<RepeatedRunSummary> parallel = [&] {
    ScopedDefaultJobs scoped(8);
    return RunRepeated(factory, backend, /*runs=*/6, /*base_seed=*/11);
  }();
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(SummaryFingerprint(serial.value()),
            SummaryFingerprint(parallel.value()));
  EXPECT_EQ(serial.value().total_time_ms.count(),
            parallel.value().total_time_ms.count());
}

TEST(ParallelRunnerTest, ScheduleRunsMatchSerialUnderDefaultJobs) {
  // Schedules exercise the profile-switching path (paper Fig. 8); the
  // compatibility overload builds its own ProfileBackend internally, so
  // this also covers the profile clone path end to end.
  ParametricProfile::Params a = {};
  a.name = "sched_a";
  a.dataset_tuples = 20000;
  a.overhead_ms = 40.0;
  a.per_tuple_ms = 0.4;
  ParametricProfile pa(a);
  ParametricProfile::Params b = a;
  b.name = "sched_b";
  b.per_tuple_ms = 0.9;
  ParametricProfile pb(b);
  std::vector<const ResponseProfile*> schedule = {&pa, &pb};

  SimOptions options = NoisyOptions();
  Result<RepeatedRunSummary> serial = RunRepeatedSchedule(
      NamedFactory("hybrid"), schedule, /*steps_per_profile=*/20,
      /*total_steps=*/60, /*runs=*/5, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  Result<RepeatedRunSummary> parallel = [&] {
    ScopedDefaultJobs scoped(4);
    return RunRepeatedSchedule(NamedFactory("hybrid"), schedule, 20, 60, 5,
                               options);
  }();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(SummaryFingerprint(serial.value()),
            SummaryFingerprint(parallel.value()));
}

TEST(ParallelRunnerTest, CloneIsIndependentOfOriginal) {
  // A clone must replay the original's runs exactly (shared immutable
  // inputs, private mutable state) — the property the lane fan-out
  // relies on.
  ProfileBackend original(NoisyProfile(), NoisyOptions());
  std::unique_ptr<QueryBackend> clone = original.Clone();
  ASSERT_NE(clone, nullptr);

  RunSpec spec;
  spec.seed = 123;
  std::unique_ptr<Controller> c1 = NamedFactory("hybrid")();
  std::unique_ptr<Controller> c2 = NamedFactory("hybrid")();
  Result<RunTrace> from_original = original.RunQuery(c1.get(), spec);
  Result<RunTrace> from_clone = clone->RunQuery(c2.get(), spec);
  ASSERT_TRUE(from_original.ok());
  ASSERT_TRUE(from_clone.ok());
  EXPECT_EQ(Fingerprint({from_original.value()}),
            Fingerprint({from_clone.value()}));
}

}  // namespace
}  // namespace wsq::exec
