// Observability under concurrent run lanes: shard merges must equal
// the single-threaded totals, trace event counts must not depend on
// the lane count, and the thread-local observer override must layer
// correctly under the process-global fallback.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "wsq/backend/profile_backend.h"
#include "wsq/control/factories.h"
#include "wsq/exec/parallel_runner.h"
#include "wsq/exec/thread_pool.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/run_observer.h"
#include "wsq/obs/thread_shard.h"
#include "wsq/obs/trace.h"
#include "wsq/sim/profile.h"

namespace wsq {
namespace {

TEST(ThreadShardTest, StableWithinAThreadAndInRange) {
  const int here = ThreadShardIndex();
  EXPECT_EQ(here, ThreadShardIndex());
  EXPECT_GE(here, 0);
  EXPECT_LT(here, kMetricShards);

  int other = -1;
  std::thread t([&other] { other = ThreadShardIndex(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_LT(other, kMetricShards);
}

TEST(ShardedCounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(ShardedHistogramTest, ConcurrentRecordsMergeToSingleThreadedTotals) {
  // Reference: every sample recorded from one thread.
  Histogram reference(Histogram::LatencyBucketsMs());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 2000;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      reference.Record(0.5 + (i % 400) * 0.75);
    }
  }

  // Same samples, fanned over threads (each thread lands on some shard).
  Histogram sharded(Histogram::LatencyBucketsMs());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded.Record(0.5 + (i % 400) * 0.75);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(sharded.count(), reference.count());
  EXPECT_EQ(sharded.bucket_counts(), reference.bucket_counts());
  EXPECT_DOUBLE_EQ(sharded.min(), reference.min());
  EXPECT_DOUBLE_EQ(sharded.max(), reference.max());
  EXPECT_NEAR(sharded.mean(), reference.mean(), 1e-9);
  // Quantiles depend only on bucket counts, which match exactly.
  EXPECT_DOUBLE_EQ(sharded.p50(), reference.p50());
  EXPECT_DOUBLE_EQ(sharded.p99(), reference.p99());
}

TEST(ShardedTracerTest, EventCountInvariantUnderThreads) {
  Tracer tracer;
  constexpr int kThreads = 5;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.AddInstant("tick", "test", i, TraceLane::kPullLoop);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(tracer.events().size(), size_t{kThreads} * kPerThread);

  // Lane offsetting: every tid is kPullLoop plus a whole number of lane
  // strides, within the shard range.
  for (const TraceEvent& event : tracer.events()) {
    const int offset = event.tid - TraceLane::kPullLoop;
    EXPECT_EQ(offset % TraceLane::kLaneStride, 0);
    EXPECT_GE(offset / TraceLane::kLaneStride, 0);
    EXPECT_LT(offset / TraceLane::kLaneStride, kMetricShards);
  }
}

TEST(ShardedTracerTest, MainThreadKeepsBaseLanes) {
  // Shard 0 is the first-registered thread; in a test binary that is
  // the main thread, whose events must keep the historical tids so
  // single-threaded trace output is byte-identical to the unsharded
  // tracer. (Guard: only meaningful when we really are shard 0.)
  if (ThreadShardIndex() != 0) GTEST_SKIP() << "main thread not shard 0";
  Tracer tracer;
  tracer.AddInstant("tick", "test", 1, TraceLane::kController);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].tid, TraceLane::kController);
}

TEST(RunObserverOverrideTest, ThreadLocalOverrideLayersUnderGlobal) {
  ASSERT_EQ(GlobalRunObserver(), nullptr);
  MetricsRegistry metrics;
  Tracer tracer;
  RunObserver global_observer(&metrics, &tracer);
  RunObserver thread_observer(&metrics, &tracer);

  SetGlobalRunObserver(&global_observer);
  EXPECT_EQ(GlobalRunObserver(), &global_observer);
  {
    ScopedThreadRunObserver scoped(&thread_observer);
    EXPECT_EQ(GlobalRunObserver(), &thread_observer);
    EXPECT_EQ(ThreadRunObserver(), &thread_observer);
  }
  EXPECT_EQ(GlobalRunObserver(), &global_observer);
  EXPECT_EQ(ThreadRunObserver(), nullptr);

  // The override is per thread: another thread still sees the global.
  RunObserver* seen_on_other_thread = nullptr;
  {
    ScopedThreadRunObserver scoped(&thread_observer);
    std::thread t([&seen_on_other_thread] {
      seen_on_other_thread = GlobalRunObserver();
    });
    t.join();
  }
  EXPECT_EQ(seen_on_other_thread, &global_observer);
  SetGlobalRunObserver(nullptr);
  EXPECT_EQ(GlobalRunObserver(), nullptr);
}

TEST(ParallelObservabilityTest, MetricsTotalsInvariantUnderLaneCount) {
  // End to end: the same repeated-run experiment observed at one lane
  // and at four lanes must register identical counter totals (blocks,
  // tuples, decisions are exact counts; they cannot depend on which
  // thread emitted them).
  ParametricProfile::Params p;
  p.name = "obs_test";
  p.dataset_tuples = 20000;
  p.overhead_ms = 50.0;
  p.per_tuple_ms = 0.5;
  auto profile = std::make_shared<ParametricProfile>(p);
  SimOptions options;
  options.noise_amplitude = 0.2;
  options.seed = 7;

  auto run_observed = [&](int jobs, MetricsRegistry* metrics,
                          Tracer* tracer) {
    RunObserver observer(metrics, tracer);
    SetGlobalRunObserver(&observer);
    ProfileBackend backend(profile, options);
    Result<std::vector<RunTrace>> traces =
        exec::RunTraces(NamedFactory("hybrid"), backend, RunSpec{},
                        /*runs=*/6, /*base_seed=*/5, 104729, jobs);
    SetGlobalRunObserver(nullptr);
    ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  };

  MetricsRegistry serial_metrics;
  Tracer serial_tracer;
  run_observed(1, &serial_metrics, &serial_tracer);

  MetricsRegistry parallel_metrics;
  Tracer parallel_tracer;
  run_observed(4, &parallel_metrics, &parallel_tracer);

  for (const char* name :
       {"wsq.pull.blocks_total", "wsq.pull.tuples_total",
        "wsq.controller.decisions_total"}) {
    EXPECT_EQ(parallel_metrics.GetCounter(name)->value(),
              serial_metrics.GetCounter(name)->value())
        << name;
  }
  EXPECT_EQ(parallel_tracer.size(), serial_tracer.size());
}

}  // namespace
}  // namespace wsq
