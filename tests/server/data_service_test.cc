#include "wsq/server/data_service.h"

#include <gtest/gtest.h>

#include "wsq/codec/binary_codec.h"
#include "wsq/soap/envelope.h"

namespace wsq {
namespace {

class DataServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = std::make_shared<Table>(
        "nums", Schema({{"id", ColumnType::kInt64},
                        {"label", ColumnType::kString}}));
    for (int i = 0; i < 10; ++i) {
      table->AppendUnchecked(Tuple(
          {Value(static_cast<int64_t>(i)), Value("r" + std::to_string(i))}));
    }
    ASSERT_TRUE(dbms_.RegisterTable(table).ok());
    service_ = std::make_unique<DataService>(&dbms_);
  }

  int64_t OpenSession() {
    OpenSessionRequest request;
    request.table = "nums";
    ServiceResult result = service_->Handle(EncodeOpenSession(request));
    EXPECT_FALSE(result.is_fault);
    auto payload = ParseEnvelope(result.response);
    EXPECT_TRUE(payload.ok());
    return DecodeOpenSessionResponse(payload.value()).value().session_id;
  }

  Dbms dbms_;
  std::unique_ptr<DataService> service_;
};

TEST_F(DataServiceTest, FullSessionLifecycle) {
  const int64_t session = OpenSession();
  EXPECT_EQ(service_->open_sessions(), 1u);

  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 4;

  ServiceResult r1 = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(r1.is_fault);
  EXPECT_EQ(r1.tuples_produced, 4);
  auto b1 = DecodeBlockResponse(ParseEnvelope(r1.response).value());
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1.value().num_tuples, 4);
  EXPECT_FALSE(b1.value().end_of_results);

  ServiceResult r2 = service_->Handle(EncodeRequestBlock(request));
  ServiceResult r3 = service_->Handle(EncodeRequestBlock(request));
  auto b3 = DecodeBlockResponse(ParseEnvelope(r3.response).value());
  ASSERT_TRUE(b3.ok());
  EXPECT_EQ(b3.value().num_tuples, 2);
  EXPECT_TRUE(b3.value().end_of_results);

  CloseSessionRequest close;
  close.session_id = session;
  ServiceResult r4 = service_->Handle(EncodeCloseSession(close));
  EXPECT_FALSE(r4.is_fault);
  EXPECT_EQ(service_->open_sessions(), 0u);
  (void)r2;
}

TEST_F(DataServiceTest, OpenSessionReportsTotalRows) {
  OpenSessionRequest request;
  request.table = "nums";
  ServiceResult result = service_->Handle(EncodeOpenSession(request));
  auto response =
      DecodeOpenSessionResponse(ParseEnvelope(result.response).value());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().total_rows, 10);
}

TEST_F(DataServiceTest, UnknownTableYieldsFault) {
  OpenSessionRequest request;
  request.table = "ghost";
  ServiceResult result = service_->Handle(EncodeOpenSession(request));
  EXPECT_TRUE(result.is_fault);
  EXPECT_EQ(ParseEnvelope(result.response).status().code(),
            StatusCode::kRemoteFault);
}

TEST_F(DataServiceTest, UnknownSessionYieldsFault) {
  RequestBlockRequest request;
  request.session_id = 999;
  request.block_size = 5;
  ServiceResult result = service_->Handle(EncodeRequestBlock(request));
  EXPECT_TRUE(result.is_fault);

  CloseSessionRequest close;
  close.session_id = 999;
  EXPECT_TRUE(service_->Handle(EncodeCloseSession(close)).is_fault);
}

TEST_F(DataServiceTest, BadBlockSizeYieldsFault) {
  const int64_t session = OpenSession();
  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 0;
  EXPECT_TRUE(service_->Handle(EncodeRequestBlock(request)).is_fault);
}

TEST_F(DataServiceTest, MalformedDocumentYieldsFault) {
  EXPECT_TRUE(service_->Handle("this is not xml").is_fault);
  EXPECT_TRUE(service_->Handle("<a/>").is_fault);
}

TEST_F(DataServiceTest, UnknownOperationYieldsFault) {
  XmlNode op("Frobnicate");
  EXPECT_TRUE(service_->Handle(BuildEnvelope(op)).is_fault);
}

TEST_F(DataServiceTest, ProjectionRespectedInPayload) {
  OpenSessionRequest request;
  request.table = "nums";
  request.columns = {"label"};
  ServiceResult opened = service_->Handle(EncodeOpenSession(request));
  ASSERT_FALSE(opened.is_fault);
  const int64_t session =
      DecodeOpenSessionResponse(ParseEnvelope(opened.response).value())
          .value()
          .session_id;

  RequestBlockRequest block_request;
  block_request.session_id = session;
  block_request.block_size = 2;
  ServiceResult result = service_->Handle(EncodeRequestBlock(block_request));
  auto block = DecodeBlockResponse(ParseEnvelope(result.response).value());
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().payload, "r0\nr1\n");
}

TEST_F(DataServiceTest, SequencedRetryReplaysTheCachedBlock) {
  const int64_t session = OpenSession();
  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 4;
  request.sequence = 0;

  ServiceResult first = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(first.is_fault);
  EXPECT_EQ(first.tuples_produced, 4);

  // The retry of an already-served sequence replays the exact same
  // bytes without touching the cursor — and does no tuple work.
  ServiceResult retry = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(retry.is_fault);
  EXPECT_EQ(retry.response, first.response);
  EXPECT_EQ(retry.tuples_produced, 0);

  // The next sequence continues where the first delivery left off: the
  // replay really did not advance the cursor.
  request.sequence = 1;
  ServiceResult second = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(second.is_fault);
  auto block = DecodeBlockResponse(ParseEnvelope(second.response).value());
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().num_tuples, 4);
  EXPECT_EQ(block.value().payload, "4|r4\n5|r5\n6|r6\n7|r7\n");
}

TEST_F(DataServiceTest, ReplayCacheHoldsOnlyTheLastSequence) {
  const int64_t session = OpenSession();
  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 2;

  request.sequence = 0;
  ServiceResult r0 = service_->Handle(EncodeRequestBlock(request));
  request.sequence = 1;
  ServiceResult r1 = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(r0.is_fault);
  ASSERT_FALSE(r1.is_fault);

  // Re-asking for sequence 0 after sequence 1 shipped is not a retry of
  // the in-flight block; the single-entry cache misses and the cursor
  // serves the *next* rows. The client protocol never does this —
  // BlockFetcher retries only the outstanding sequence.
  request.sequence = 0;
  ServiceResult stale = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(stale.is_fault);
  EXPECT_NE(stale.response, r0.response);
}

TEST_F(DataServiceTest, UnsequencedRequestsBypassTheReplayCache) {
  const int64_t session = OpenSession();
  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 4;
  ASSERT_EQ(request.sequence, -1);

  // Two identical legacy (unsequenced) requests advance the cursor
  // twice — exactly the seed-era at-most-once behaviour.
  ServiceResult a = service_->Handle(EncodeRequestBlock(request));
  ServiceResult b = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(a.is_fault);
  ASSERT_FALSE(b.is_fault);
  EXPECT_NE(a.response, b.response);
  auto block_b = DecodeBlockResponse(ParseEnvelope(b.response).value());
  ASSERT_TRUE(block_b.ok());
  EXPECT_EQ(block_b.value().payload, "4|r4\n5|r5\n6|r6\n7|r7\n");
}

TEST_F(DataServiceTest, BinaryRequestsHitTheSameReplayCache) {
  const int64_t session = OpenSession();
  codec::BinaryCodec binary;

  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 6;
  request.sequence = 0;
  const std::string wire = binary.EncodeRequestBlock(request).value();

  ServiceResult first = service_->Handle(wire, &binary);
  ASSERT_FALSE(first.is_fault);
  EXPECT_EQ(first.tuples_produced, 6);
  ServiceResult retry = service_->Handle(wire, &binary);
  ASSERT_FALSE(retry.is_fault);
  EXPECT_EQ(retry.response, first.response);
  EXPECT_EQ(retry.tuples_produced, 0);

  // The replayed bytes decode to the same block the first delivery
  // carried, and the cursor still sits at row 6.
  auto replayed = binary.DecodeBlockResponse(retry.response);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().num_tuples, 6);
  EXPECT_EQ(replayed.value().rows.Int64At(0, 0), 0);

  request.sequence = 1;
  ServiceResult second =
      service_->Handle(binary.EncodeRequestBlock(request).value(), &binary);
  ASSERT_FALSE(second.is_fault);
  auto block = binary.DecodeBlockResponse(second.response);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().num_tuples, 4);
  EXPECT_TRUE(block.value().end_of_results);
  EXPECT_EQ(block.value().rows.Int64At(0, 0), 6);
  EXPECT_EQ(block.value().rows.StringAt(3, 1), "r9");
}

TEST_F(DataServiceTest, ReplaySurvivesTheEndOfResultsBlock) {
  const int64_t session = OpenSession();
  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 10;
  request.sequence = 0;

  ServiceResult last = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(last.is_fault);
  auto block = DecodeBlockResponse(ParseEnvelope(last.response).value());
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(block.value().end_of_results);

  // A retry of the final block replays it, end-of-results flag and all
  // — the client can lose the last response too.
  ServiceResult retry = service_->Handle(EncodeRequestBlock(request));
  ASSERT_FALSE(retry.is_fault);
  EXPECT_EQ(retry.response, last.response);
}

TEST_F(DataServiceTest, MultipleConcurrentSessions) {
  const int64_t s1 = OpenSession();
  const int64_t s2 = OpenSession();
  EXPECT_NE(s1, s2);
  EXPECT_EQ(service_->open_sessions(), 2u);

  RequestBlockRequest r;
  r.session_id = s1;
  r.block_size = 10;
  auto b1 = DecodeBlockResponse(
      ParseEnvelope(service_->Handle(EncodeRequestBlock(r)).response)
          .value());
  ASSERT_TRUE(b1.ok());
  EXPECT_TRUE(b1.value().end_of_results);

  // Session 2 still at the start.
  r.session_id = s2;
  r.block_size = 3;
  auto b2 = DecodeBlockResponse(
      ParseEnvelope(service_->Handle(EncodeRequestBlock(r)).response)
          .value());
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2.value().num_tuples, 3);
  EXPECT_FALSE(b2.value().end_of_results);
}

}  // namespace
}  // namespace wsq
