#include "wsq/server/container.h"

#include <set>

#include <gtest/gtest.h>

#include "wsq/server/data_service.h"

#include "wsq/soap/envelope.h"

namespace wsq {
namespace {

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = std::make_shared<Table>(
        "t", Schema({{"id", ColumnType::kInt64}}));
    for (int i = 0; i < 1000; ++i) {
      table->AppendUnchecked(Tuple({Value(static_cast<int64_t>(i))}));
    }
    ASSERT_TRUE(dbms_.RegisterTable(table).ok());
    service_ = std::make_unique<DataService>(&dbms_);
  }

  LoadModelConfig QuietLoad() {
    LoadModelConfig config;
    config.noise_sigma = 0.0;
    return config;
  }

  int64_t OpenSessionVia(ServiceContainer& container) {
    OpenSessionRequest request;
    request.table = "t";
    DispatchResult result = container.Dispatch(EncodeOpenSession(request));
    EXPECT_FALSE(result.is_fault);
    return DecodeOpenSessionResponse(ParseEnvelope(result.response).value())
        .value()
        .session_id;
  }

  Dbms dbms_;
  std::unique_ptr<DataService> service_;
};

TEST_F(ContainerTest, ChargesServiceTime) {
  ServiceContainer container(service_.get(), QuietLoad(), 1);
  const int64_t session = OpenSessionVia(container);

  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 500;
  DispatchResult result = container.Dispatch(EncodeRequestBlock(request));
  EXPECT_FALSE(result.is_fault);
  // 500 tuples at default per-tuple cost + request cost.
  LoadModel expected(QuietLoad());
  EXPECT_NEAR(result.service_time_ms, expected.NominalServiceTimeMs(500),
              1e-9);
  EXPECT_EQ(container.requests_served(), 2);
  EXPECT_GT(container.total_busy_ms(), 0.0);
}

TEST_F(ContainerTest, SessionOpsPayOnlyRequestCost) {
  ServiceContainer container(service_.get(), QuietLoad(), 1);
  OpenSessionRequest request;
  request.table = "t";
  DispatchResult result = container.Dispatch(EncodeOpenSession(request));
  LoadModel expected(QuietLoad());
  EXPECT_NEAR(result.service_time_ms, expected.NominalServiceTimeMs(0), 1e-9);
}

TEST_F(ContainerTest, FaultsStillCostTime) {
  ServiceContainer container(service_.get(), QuietLoad(), 1);
  DispatchResult result = container.Dispatch("garbage");
  EXPECT_TRUE(result.is_fault);
  EXPECT_GT(result.service_time_ms, 0.0);
}

TEST_F(ContainerTest, LoadReconfigurationTakesEffect) {
  ServiceContainer container(service_.get(), QuietLoad(), 1);
  const int64_t session = OpenSessionVia(container);

  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 100;
  const double quiet_time =
      container.Dispatch(EncodeRequestBlock(request)).service_time_ms;

  LoadModelConfig loaded = QuietLoad();
  loaded.concurrent_queries = 3;
  container.load_model().set_config(loaded);
  const double loaded_time =
      container.Dispatch(EncodeRequestBlock(request)).service_time_ms;
  EXPECT_GT(loaded_time, quiet_time);
}

TEST_F(ContainerTest, NoiseMakesTimesVary) {
  LoadModelConfig noisy = QuietLoad();
  noisy.noise_sigma = 0.2;
  ServiceContainer container(service_.get(), noisy, 7);
  const int64_t session = OpenSessionVia(container);

  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = 10;
  std::set<double> seen;
  for (int i = 0; i < 10; ++i) {
    seen.insert(container.Dispatch(EncodeRequestBlock(request))
                    .service_time_ms);
  }
  EXPECT_GT(seen.size(), 5u);
}

}  // namespace
}  // namespace wsq
