#include "wsq/server/processing_service.h"

#include <gtest/gtest.h>

#include "wsq/soap/envelope.h"

namespace wsq {
namespace {

Schema InSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"v", ColumnType::kDouble}});
}

Schema OutSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"v", ColumnType::kDouble},
                 {"score", ColumnType::kDouble}});
}

ProcessingFunction ScoreFunction() {
  ProcessingFunction function;
  function.input_schema = InSchema();
  function.output_schema = OutSchema();
  function.transform = [](const Tuple& input) -> Result<Tuple> {
    const double v = std::get<double>(input.value(1));
    return Tuple({input.value(0), input.value(1), Value(v * 2.0)});
  };
  return function;
}

std::string MakeRequest(const std::string& function, int64_t sequence,
                        const std::vector<Tuple>& block) {
  TupleSerializer serializer(InSchema());
  ProcessBlockRequest request;
  request.function = function;
  request.sequence = sequence;
  request.num_tuples = static_cast<int64_t>(block.size());
  request.payload = serializer.SerializeBlock(block).value();
  return EncodeProcessBlock(request);
}

std::vector<Tuple> MakeBlock(int n) {
  std::vector<Tuple> block;
  for (int i = 0; i < n; ++i) {
    block.push_back(
        Tuple({Value(static_cast<int64_t>(i)), Value(i * 1.25)}));
  }
  return block;
}

TEST(ProcessingServiceTest, RegistrationRules) {
  ProcessingService service;
  EXPECT_TRUE(service.RegisterFunction("score", ScoreFunction()).ok());
  EXPECT_EQ(service.RegisterFunction("score", ScoreFunction()).code(),
            StatusCode::kInvalidArgument);
  ProcessingFunction null_fn;
  EXPECT_EQ(service.RegisterFunction("null", null_fn).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(service.GetFunction("score").ok());
  EXPECT_EQ(service.GetFunction("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ProcessingServiceTest, ProcessesABlock) {
  ProcessingService service;
  ASSERT_TRUE(service.RegisterFunction("score", ScoreFunction()).ok());

  ServiceResult result = service.Handle(MakeRequest("score", 7, MakeBlock(4)));
  ASSERT_FALSE(result.is_fault);
  EXPECT_EQ(result.tuples_produced, 4);
  EXPECT_EQ(service.tuples_processed(), 4);

  auto payload = ParseEnvelope(result.response);
  ASSERT_TRUE(payload.ok());
  auto response = DecodeProcessBlockResponse(payload.value());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().sequence, 7);
  EXPECT_EQ(response.value().num_tuples, 4);

  TupleSerializer out(OutSchema());
  auto tuples = out.DeserializeBlock(response.value().payload);
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples.value().size(), 4u);
  EXPECT_DOUBLE_EQ(std::get<double>(tuples.value()[2].value(2)), 5.0);
}

TEST(ProcessingServiceTest, EmptyBlockIsFine) {
  ProcessingService service;
  ASSERT_TRUE(service.RegisterFunction("score", ScoreFunction()).ok());
  ServiceResult result = service.Handle(MakeRequest("score", 0, {}));
  EXPECT_FALSE(result.is_fault);
  EXPECT_EQ(result.tuples_produced, 0);
}

TEST(ProcessingServiceTest, UnknownFunctionFaults) {
  ProcessingService service;
  ServiceResult result = service.Handle(MakeRequest("ghost", 0, MakeBlock(1)));
  EXPECT_TRUE(result.is_fault);
}

TEST(ProcessingServiceTest, CountMismatchFaults) {
  ProcessingService service;
  ASSERT_TRUE(service.RegisterFunction("score", ScoreFunction()).ok());
  TupleSerializer serializer(InSchema());
  ProcessBlockRequest request;
  request.function = "score";
  request.num_tuples = 5;  // lies: payload has 2
  request.payload = serializer.SerializeBlock(MakeBlock(2)).value();
  EXPECT_TRUE(service.Handle(EncodeProcessBlock(request)).is_fault);
}

TEST(ProcessingServiceTest, TransformErrorFaults) {
  ProcessingService service;
  ProcessingFunction failing = ScoreFunction();
  failing.transform = [](const Tuple&) -> Result<Tuple> {
    return Status::Internal("cannot compute");
  };
  ASSERT_TRUE(service.RegisterFunction("fail", failing).ok());
  ServiceResult result = service.Handle(MakeRequest("fail", 0, MakeBlock(2)));
  EXPECT_TRUE(result.is_fault);
  EXPECT_EQ(service.tuples_processed(), 0);
}

TEST(ProcessingServiceTest, NonconformingOutputFaults) {
  ProcessingService service;
  ProcessingFunction bad = ScoreFunction();
  bad.transform = [](const Tuple& input) -> Result<Tuple> {
    return Tuple({input.value(0)});  // wrong arity for OutSchema
  };
  ASSERT_TRUE(service.RegisterFunction("bad", bad).ok());
  EXPECT_TRUE(service.Handle(MakeRequest("bad", 0, MakeBlock(1))).is_fault);
}

TEST(ProcessingServiceTest, RejectsDataServiceOperations) {
  ProcessingService service;
  OpenSessionRequest open;
  open.table = "t";
  EXPECT_TRUE(service.Handle(EncodeOpenSession(open)).is_fault);
  EXPECT_TRUE(service.Handle("garbage").is_fault);
}

TEST(ProcessBlockMessageTest, RoundTrip) {
  ProcessBlockRequest request;
  request.function = "score";
  request.sequence = 12;
  request.num_tuples = 2;
  request.payload = "1|2.50\n2|3.75\n";
  auto payload = ParseEnvelope(EncodeProcessBlock(request));
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(ClassifyRequest(payload.value()).value(),
            RequestKind::kProcessBlock);
  auto back = DecodeProcessBlock(payload.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().function, "score");
  EXPECT_EQ(back.value().sequence, 12);
  EXPECT_EQ(back.value().payload, request.payload);

  ProcessBlockResponse response;
  response.sequence = 12;
  response.num_tuples = 2;
  response.payload = "x\ny\n";
  auto response_payload = ParseEnvelope(EncodeProcessBlockResponse(response));
  ASSERT_TRUE(response_payload.ok());
  auto response_back = DecodeProcessBlockResponse(response_payload.value());
  ASSERT_TRUE(response_back.ok());
  EXPECT_EQ(response_back.value().payload, "x\ny\n");
}

}  // namespace
}  // namespace wsq
