#include "wsq/server/dbms.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

std::shared_ptr<Table> SmallTable(const std::string& name, int rows) {
  auto table = std::make_shared<Table>(
      name, Schema({{"id", ColumnType::kInt64}}));
  for (int i = 0; i < rows; ++i) {
    table->AppendUnchecked(Tuple({Value(static_cast<int64_t>(i))}));
  }
  return table;
}

TEST(DbmsTest, RegisterAndLookup) {
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(SmallTable("t1", 3)).ok());
  ASSERT_TRUE(dbms.RegisterTable(SmallTable("t2", 5)).ok());
  EXPECT_EQ(dbms.num_tables(), 2u);
  EXPECT_EQ(dbms.GetTable("t1").value()->num_rows(), 3u);
  EXPECT_EQ(dbms.GetTable("missing").status().code(), StatusCode::kNotFound);
}

TEST(DbmsTest, DuplicateRegistrationRejected) {
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(SmallTable("t", 1)).ok());
  EXPECT_EQ(dbms.RegisterTable(SmallTable("t", 2)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dbms.GetTable("t").value()->num_rows(), 1u);
}

TEST(DbmsTest, NullTableRejected) {
  Dbms dbms;
  EXPECT_EQ(dbms.RegisterTable(nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(DbmsTest, OpenCursorExecutesQuery) {
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(SmallTable("t", 7)).ok());
  ScanProjectQuery query;
  query.table_name = "t";
  auto cursor = dbms.OpenCursor(query);
  ASSERT_TRUE(cursor.ok());
  auto block = cursor.value()->FetchBlock(100);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().size(), 7u);
}

TEST(DbmsTest, OpenCursorUnknownTable) {
  Dbms dbms;
  ScanProjectQuery query;
  query.table_name = "ghost";
  EXPECT_EQ(dbms.OpenCursor(query).status().code(), StatusCode::kNotFound);
}

TEST(DbmsTest, ConcurrentCursorsAreIndependent) {
  Dbms dbms;
  ASSERT_TRUE(dbms.RegisterTable(SmallTable("t", 10)).ok());
  ScanProjectQuery query;
  query.table_name = "t";
  auto c1 = dbms.OpenCursor(query);
  auto c2 = dbms.OpenCursor(query);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(c1.value()->FetchBlock(4).ok());
  // c2 is unaffected by c1's progress.
  auto block = c2.value()->FetchBlock(100);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().size(), 10u);
}

}  // namespace
}  // namespace wsq
