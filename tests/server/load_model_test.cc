#include "wsq/server/load_model.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

LoadModelConfig Quiet() {
  LoadModelConfig config;
  config.noise_sigma = 0.0;
  return config;
}

TEST(LoadModelConfigTest, Validation) {
  EXPECT_TRUE(Quiet().Validate().ok());

  LoadModelConfig bad = Quiet();
  bad.concurrent_jobs = -1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = Quiet();
  bad.concurrent_queries = 0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = Quiet();
  bad.memory_pressure = 1.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = Quiet();
  bad.buffer_capacity_tuples = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = Quiet();
  bad.per_tuple_cpu_ms = -0.1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = Quiet();
  bad.query_buffer_shrink = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(LoadModelTest, CpuMultiplierGrowsWithLoad) {
  LoadModelConfig config = Quiet();
  LoadModel unloaded(config);
  EXPECT_DOUBLE_EQ(unloaded.CpuMultiplier(), 1.0);

  config.concurrent_jobs = 5;
  LoadModel jobs(config);
  EXPECT_GT(jobs.CpuMultiplier(), unloaded.CpuMultiplier());

  config.concurrent_queries = 3;
  LoadModel queries(config);
  EXPECT_GT(queries.CpuMultiplier(), jobs.CpuMultiplier());
}

TEST(LoadModelTest, BufferShrinksWithLoad) {
  LoadModelConfig config = Quiet();
  const double base = LoadModel(config).EffectiveBufferTuples();
  EXPECT_DOUBLE_EQ(base, config.buffer_capacity_tuples);

  config.concurrent_jobs = 10;
  const double with_jobs = LoadModel(config).EffectiveBufferTuples();
  EXPECT_LT(with_jobs, base);

  config.concurrent_queries = 3;
  const double with_queries = LoadModel(config).EffectiveBufferTuples();
  EXPECT_LT(with_queries, with_jobs);

  config.memory_pressure = 0.5;
  const double with_memory = LoadModel(config).EffectiveBufferTuples();
  EXPECT_NEAR(with_memory, with_queries * 0.5, 1e-9);
}

TEST(LoadModelTest, ServiceTimeLinearBelowBuffer) {
  LoadModel model(Quiet());
  const double t1 = model.NominalServiceTimeMs(1000);
  const double t2 = model.NominalServiceTimeMs(2000);
  const double t0 = model.NominalServiceTimeMs(0);
  EXPECT_NEAR(t2 - t1, t1 - t0, 1e-9);  // constant marginal cost
  EXPECT_GT(t0, 0.0);                   // per-request floor
}

TEST(LoadModelTest, PagingPenaltyKicksInPastBuffer) {
  LoadModelConfig config = Quiet();
  config.buffer_capacity_tuples = 5000.0;
  LoadModel model(config);
  const double just_below = model.NominalServiceTimeMs(5000);
  const double above = model.NominalServiceTimeMs(10000);
  const double way_above = model.NominalServiceTimeMs(20000);
  // Superlinear: the marginal cost of the second 5000 tuples past the
  // buffer exceeds the first.
  const double linear_extrapolation =
      just_below + (above - just_below) * 2.0 +
      config.per_tuple_cpu_ms * 10000;
  EXPECT_GT(way_above, linear_extrapolation);
}

TEST(LoadModelTest, MemoryPressureShiftsOptimumLeft) {
  // The per-tuple-optimal block size must shrink when memory pressure
  // rises — the core claim of the paper's Fig. 2(b).
  auto optimum_for = [](double pressure) {
    LoadModelConfig config;
    config.noise_sigma = 0.0;
    config.memory_pressure = pressure;
    LoadModel model(config);
    int64_t best_x = 0;
    double best = 1e300;
    for (int64_t x = 500; x <= 20000; x += 250) {
      const double per_tuple =
          model.NominalServiceTimeMs(x) / static_cast<double>(x);
      if (per_tuple < best) {
        best = per_tuple;
        best_x = x;
      }
    }
    return best_x;
  };
  EXPECT_GT(optimum_for(0.0), optimum_for(0.4));
}

TEST(LoadModelTest, NoiseMultiplicative) {
  LoadModelConfig config = Quiet();
  config.noise_sigma = 0.2;
  LoadModel model(config);
  Random rng(3);
  const double nominal = model.NominalServiceTimeMs(5000);
  double min_seen = 1e300;
  double max_seen = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = model.ServiceTimeMs(5000, rng);
    min_seen = std::min(min_seen, t);
    max_seen = std::max(max_seen, t);
    EXPECT_GT(t, 0.0);
  }
  EXPECT_LT(min_seen, nominal);
  EXPECT_GT(max_seen, nominal);
}

TEST(LoadModelTest, LiveReconfiguration) {
  LoadModel model(Quiet());
  const double before = model.NominalServiceTimeMs(1000);
  LoadModelConfig loaded = Quiet();
  loaded.concurrent_queries = 3;
  model.set_config(loaded);
  EXPECT_GT(model.NominalServiceTimeMs(1000), before);
}

TEST(LoadModelTest, NegativeTuplesTreatedAsZero) {
  LoadModel model(Quiet());
  EXPECT_DOUBLE_EQ(model.NominalServiceTimeMs(-5),
                   model.NominalServiceTimeMs(0));
}

}  // namespace
}  // namespace wsq
