#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json perf summary against a committed baseline.

Usage:
    check_bench_regression.py --fresh NEW.json --baseline BENCH_prN.json \
        [--bench NAME] [--jobs N] [--max-slowdown X]

Both files carry the schema bench binaries emit via --bench-json
(schema_version 1): either a flat report

    {"schema_version": 1, "bench": ..., "runs": ..., "runs_per_sec": ...,
     "run_ms": {"mean": ..., "p50": ..., "p99": ...}}

or a composite document {"schema_version": 1, "reports": [<flat>, ...]}
(multi-phase benches emit the composite form on BOTH sides; every fresh
report is gated against the baseline reports sharing its bench name).

The gate is a tolerance band, not an equality check: committed baselines
come from whatever machine cut the PR, CI runners are slower and noisy,
and sanitized builds pay instrumentation overhead. A fresh run fails
only when it is more than --max-slowdown times worse than the most
lenient matching baseline report on BOTH throughput (runs/sec) and tail
latency (run_ms.p99). Exit status: 0 pass, 1 regression, 2 bad input.
"""

import argparse
import json
import sys


def load_reports(path):
    """Returns the list of flat reports in `path` (one for flat files)."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a JSON object")
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: unsupported schema_version "
                         f"{doc.get('schema_version')!r}")
    reports = doc["reports"] if "reports" in doc else [doc]
    if not isinstance(reports, list) or not reports:
        raise ValueError(f"{path}: no reports")
    return reports


def validate(report, path):
    for key in ("bench", "runs", "runs_per_sec", "run_ms"):
        if key not in report:
            raise ValueError(f"{path}: report missing {key!r}: {report}")
    if report["runs"] <= 0 or report["runs_per_sec"] <= 0:
        raise ValueError(f"{path}: degenerate report: {report}")
    for field in ("mean", "min", "max", "p50", "p99"):
        value = report["run_ms"].get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"{path}: run_ms.{field} invalid: {value!r}")
    ms = report["run_ms"]
    if not ms["min"] <= ms["p50"] <= ms["p99"] <= ms["max"]:
        raise ValueError(f"{path}: run_ms percentiles out of order: {ms}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="bench JSON produced by this CI run")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_pr*.json to gate against")
    parser.add_argument("--bench", default=None,
                        help="bench name to select (default: the fresh "
                             "report's own name)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="only match baseline reports with this --jobs")
    parser.add_argument("--max-slowdown", type=float, default=3.0,
                        help="tolerated worsening factor on runs/sec and "
                             "p99 (default 3.0; raise for sanitized jobs)")
    args = parser.parse_args()

    try:
        fresh_reports = load_reports(args.fresh)
        baseline_reports = load_reports(args.baseline)
    except (OSError, ValueError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    try:
        if args.bench is not None:
            fresh_reports = [r for r in fresh_reports
                             if r.get("bench") == args.bench]
            if not fresh_reports:
                raise ValueError(f"{args.fresh}: no fresh report for bench "
                                 f"{args.bench!r}")
        matched = []  # (fresh report, its matching baseline reports)
        for fresh in fresh_reports:
            validate(fresh, args.fresh)
            bench = fresh["bench"]
            matches = [r for r in baseline_reports if r.get("bench") == bench]
            if args.jobs is not None:
                matches = [r for r in matches if r.get("jobs") == args.jobs]
            if not matches:
                raise ValueError(f"{args.baseline}: no baseline report for "
                                 f"bench {bench!r}"
                                 + (f" with jobs={args.jobs}"
                                    if args.jobs is not None else ""))
            for r in matches:
                validate(r, args.baseline)
            matched.append((fresh, matches))
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    failures = []
    for fresh, matches in matched:
        bench = fresh["bench"]
        # The most lenient matching baseline: cross-machine comparisons
        # gate on order-of-magnitude health, not same-host variance.
        base_rps = min(r["runs_per_sec"] for r in matches)
        base_p99 = max(r["run_ms"]["p99"] for r in matches)
        fresh_rps = fresh["runs_per_sec"]
        fresh_p99 = fresh["run_ms"]["p99"]

        bench_failures = []
        if fresh_rps * args.max_slowdown < base_rps:
            bench_failures.append(
                f"throughput regressed: {fresh_rps:.2f} runs/s vs baseline "
                f"{base_rps:.2f} (> {args.max_slowdown:g}x slower)")
        if fresh_p99 > base_p99 * args.max_slowdown:
            bench_failures.append(
                f"tail latency regressed: p99 {fresh_p99:.2f} ms vs baseline "
                f"{base_p99:.2f} ms (> {args.max_slowdown:g}x slower)")
        if bench_failures:
            failures.extend(f"REGRESSION [{bench}]: {f}"
                            for f in bench_failures)
        else:
            print(f"ok [{bench}]: {fresh_rps:.2f} runs/s "
                  f"(baseline {base_rps:.2f}), p99 {fresh_p99:.2f} ms "
                  f"(baseline {base_p99:.2f} ms), "
                  f"within {args.max_slowdown:g}x")

    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
