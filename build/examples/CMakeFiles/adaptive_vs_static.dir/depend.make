# Empty dependencies file for adaptive_vs_static.
# This may be replaced when dependencies are built.
