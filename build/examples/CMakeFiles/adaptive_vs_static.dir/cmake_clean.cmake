file(REMOVE_RECURSE
  "CMakeFiles/adaptive_vs_static.dir/adaptive_vs_static.cpp.o"
  "CMakeFiles/adaptive_vs_static.dir/adaptive_vs_static.cpp.o.d"
  "adaptive_vs_static"
  "adaptive_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
