file(REMOVE_RECURSE
  "CMakeFiles/ws_enrichment.dir/ws_enrichment.cpp.o"
  "CMakeFiles/ws_enrichment.dir/ws_enrichment.cpp.o.d"
  "ws_enrichment"
  "ws_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
