# Empty compiler generated dependencies file for ws_enrichment.
# This may be replaced when dependencies are built.
