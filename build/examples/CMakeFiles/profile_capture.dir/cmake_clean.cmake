file(REMOVE_RECURSE
  "CMakeFiles/profile_capture.dir/profile_capture.cpp.o"
  "CMakeFiles/profile_capture.dir/profile_capture.cpp.o.d"
  "profile_capture"
  "profile_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
