# Empty compiler generated dependencies file for profile_capture.
# This may be replaced when dependencies are built.
