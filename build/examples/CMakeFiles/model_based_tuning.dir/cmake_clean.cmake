file(REMOVE_RECURSE
  "CMakeFiles/model_based_tuning.dir/model_based_tuning.cpp.o"
  "CMakeFiles/model_based_tuning.dir/model_based_tuning.cpp.o.d"
  "model_based_tuning"
  "model_based_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_based_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
