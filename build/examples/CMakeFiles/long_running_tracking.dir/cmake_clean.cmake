file(REMOVE_RECURSE
  "CMakeFiles/long_running_tracking.dir/long_running_tracking.cpp.o"
  "CMakeFiles/long_running_tracking.dir/long_running_tracking.cpp.o.d"
  "long_running_tracking"
  "long_running_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_running_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
