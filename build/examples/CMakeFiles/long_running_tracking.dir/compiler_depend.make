# Empty compiler generated dependencies file for long_running_tracking.
# This may be replaced when dependencies are built.
