
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/relation/predicate.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/predicate.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/predicate.cc.o.d"
  "/root/repo/src/wsq/relation/query.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/query.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/query.cc.o.d"
  "/root/repo/src/wsq/relation/schema.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/schema.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/schema.cc.o.d"
  "/root/repo/src/wsq/relation/table.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/table.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/table.cc.o.d"
  "/root/repo/src/wsq/relation/tpch_gen.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/tpch_gen.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/tpch_gen.cc.o.d"
  "/root/repo/src/wsq/relation/tuple.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/tuple.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/tuple.cc.o.d"
  "/root/repo/src/wsq/relation/tuple_serializer.cc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/tuple_serializer.cc.o" "gcc" "src/CMakeFiles/wsq_relation.dir/wsq/relation/tuple_serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
