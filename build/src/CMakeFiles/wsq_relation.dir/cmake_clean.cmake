file(REMOVE_RECURSE
  "CMakeFiles/wsq_relation.dir/wsq/relation/predicate.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/predicate.cc.o.d"
  "CMakeFiles/wsq_relation.dir/wsq/relation/query.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/query.cc.o.d"
  "CMakeFiles/wsq_relation.dir/wsq/relation/schema.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/schema.cc.o.d"
  "CMakeFiles/wsq_relation.dir/wsq/relation/table.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/table.cc.o.d"
  "CMakeFiles/wsq_relation.dir/wsq/relation/tpch_gen.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/tpch_gen.cc.o.d"
  "CMakeFiles/wsq_relation.dir/wsq/relation/tuple.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/tuple.cc.o.d"
  "CMakeFiles/wsq_relation.dir/wsq/relation/tuple_serializer.cc.o"
  "CMakeFiles/wsq_relation.dir/wsq/relation/tuple_serializer.cc.o.d"
  "libwsq_relation.a"
  "libwsq_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
