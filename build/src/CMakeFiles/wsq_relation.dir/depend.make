# Empty dependencies file for wsq_relation.
# This may be replaced when dependencies are built.
