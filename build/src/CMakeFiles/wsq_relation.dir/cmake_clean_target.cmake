file(REMOVE_RECURSE
  "libwsq_relation.a"
)
