file(REMOVE_RECURSE
  "libwsq_control.a"
)
