file(REMOVE_RECURSE
  "CMakeFiles/wsq_control.dir/wsq/control/controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/controller.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/controller_factory.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/controller_factory.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/fixed_controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/fixed_controller.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/hybrid_controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/hybrid_controller.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/mimd_controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/mimd_controller.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/model_based_controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/model_based_controller.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/self_tuning_controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/self_tuning_controller.cc.o.d"
  "CMakeFiles/wsq_control.dir/wsq/control/switching_controller.cc.o"
  "CMakeFiles/wsq_control.dir/wsq/control/switching_controller.cc.o.d"
  "libwsq_control.a"
  "libwsq_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
