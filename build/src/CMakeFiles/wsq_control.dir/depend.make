# Empty dependencies file for wsq_control.
# This may be replaced when dependencies are built.
