
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/control/controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/controller.cc.o.d"
  "/root/repo/src/wsq/control/controller_factory.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/controller_factory.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/controller_factory.cc.o.d"
  "/root/repo/src/wsq/control/fixed_controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/fixed_controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/fixed_controller.cc.o.d"
  "/root/repo/src/wsq/control/hybrid_controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/hybrid_controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/hybrid_controller.cc.o.d"
  "/root/repo/src/wsq/control/mimd_controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/mimd_controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/mimd_controller.cc.o.d"
  "/root/repo/src/wsq/control/model_based_controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/model_based_controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/model_based_controller.cc.o.d"
  "/root/repo/src/wsq/control/self_tuning_controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/self_tuning_controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/self_tuning_controller.cc.o.d"
  "/root/repo/src/wsq/control/switching_controller.cc" "src/CMakeFiles/wsq_control.dir/wsq/control/switching_controller.cc.o" "gcc" "src/CMakeFiles/wsq_control.dir/wsq/control/switching_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
