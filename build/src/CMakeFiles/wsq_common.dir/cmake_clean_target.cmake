file(REMOVE_RECURSE
  "libwsq_common.a"
)
