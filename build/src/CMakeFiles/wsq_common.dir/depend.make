# Empty dependencies file for wsq_common.
# This may be replaced when dependencies are built.
