
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/common/clock.cc" "src/CMakeFiles/wsq_common.dir/wsq/common/clock.cc.o" "gcc" "src/CMakeFiles/wsq_common.dir/wsq/common/clock.cc.o.d"
  "/root/repo/src/wsq/common/csv_writer.cc" "src/CMakeFiles/wsq_common.dir/wsq/common/csv_writer.cc.o" "gcc" "src/CMakeFiles/wsq_common.dir/wsq/common/csv_writer.cc.o.d"
  "/root/repo/src/wsq/common/logging.cc" "src/CMakeFiles/wsq_common.dir/wsq/common/logging.cc.o" "gcc" "src/CMakeFiles/wsq_common.dir/wsq/common/logging.cc.o.d"
  "/root/repo/src/wsq/common/random.cc" "src/CMakeFiles/wsq_common.dir/wsq/common/random.cc.o" "gcc" "src/CMakeFiles/wsq_common.dir/wsq/common/random.cc.o.d"
  "/root/repo/src/wsq/common/status.cc" "src/CMakeFiles/wsq_common.dir/wsq/common/status.cc.o" "gcc" "src/CMakeFiles/wsq_common.dir/wsq/common/status.cc.o.d"
  "/root/repo/src/wsq/common/text_table.cc" "src/CMakeFiles/wsq_common.dir/wsq/common/text_table.cc.o" "gcc" "src/CMakeFiles/wsq_common.dir/wsq/common/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
