file(REMOVE_RECURSE
  "CMakeFiles/wsq_common.dir/wsq/common/clock.cc.o"
  "CMakeFiles/wsq_common.dir/wsq/common/clock.cc.o.d"
  "CMakeFiles/wsq_common.dir/wsq/common/csv_writer.cc.o"
  "CMakeFiles/wsq_common.dir/wsq/common/csv_writer.cc.o.d"
  "CMakeFiles/wsq_common.dir/wsq/common/logging.cc.o"
  "CMakeFiles/wsq_common.dir/wsq/common/logging.cc.o.d"
  "CMakeFiles/wsq_common.dir/wsq/common/random.cc.o"
  "CMakeFiles/wsq_common.dir/wsq/common/random.cc.o.d"
  "CMakeFiles/wsq_common.dir/wsq/common/status.cc.o"
  "CMakeFiles/wsq_common.dir/wsq/common/status.cc.o.d"
  "CMakeFiles/wsq_common.dir/wsq/common/text_table.cc.o"
  "CMakeFiles/wsq_common.dir/wsq/common/text_table.cc.o.d"
  "libwsq_common.a"
  "libwsq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
