file(REMOVE_RECURSE
  "CMakeFiles/wsq_server.dir/wsq/server/container.cc.o"
  "CMakeFiles/wsq_server.dir/wsq/server/container.cc.o.d"
  "CMakeFiles/wsq_server.dir/wsq/server/data_service.cc.o"
  "CMakeFiles/wsq_server.dir/wsq/server/data_service.cc.o.d"
  "CMakeFiles/wsq_server.dir/wsq/server/dbms.cc.o"
  "CMakeFiles/wsq_server.dir/wsq/server/dbms.cc.o.d"
  "CMakeFiles/wsq_server.dir/wsq/server/load_model.cc.o"
  "CMakeFiles/wsq_server.dir/wsq/server/load_model.cc.o.d"
  "CMakeFiles/wsq_server.dir/wsq/server/processing_service.cc.o"
  "CMakeFiles/wsq_server.dir/wsq/server/processing_service.cc.o.d"
  "libwsq_server.a"
  "libwsq_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
