# Empty dependencies file for wsq_server.
# This may be replaced when dependencies are built.
