
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/server/container.cc" "src/CMakeFiles/wsq_server.dir/wsq/server/container.cc.o" "gcc" "src/CMakeFiles/wsq_server.dir/wsq/server/container.cc.o.d"
  "/root/repo/src/wsq/server/data_service.cc" "src/CMakeFiles/wsq_server.dir/wsq/server/data_service.cc.o" "gcc" "src/CMakeFiles/wsq_server.dir/wsq/server/data_service.cc.o.d"
  "/root/repo/src/wsq/server/dbms.cc" "src/CMakeFiles/wsq_server.dir/wsq/server/dbms.cc.o" "gcc" "src/CMakeFiles/wsq_server.dir/wsq/server/dbms.cc.o.d"
  "/root/repo/src/wsq/server/load_model.cc" "src/CMakeFiles/wsq_server.dir/wsq/server/load_model.cc.o" "gcc" "src/CMakeFiles/wsq_server.dir/wsq/server/load_model.cc.o.d"
  "/root/repo/src/wsq/server/processing_service.cc" "src/CMakeFiles/wsq_server.dir/wsq/server/processing_service.cc.o" "gcc" "src/CMakeFiles/wsq_server.dir/wsq/server/processing_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
