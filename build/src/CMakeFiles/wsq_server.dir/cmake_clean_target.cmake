file(REMOVE_RECURSE
  "libwsq_server.a"
)
