file(REMOVE_RECURSE
  "libwsq_soap.a"
)
