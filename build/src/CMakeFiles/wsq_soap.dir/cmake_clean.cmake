file(REMOVE_RECURSE
  "CMakeFiles/wsq_soap.dir/wsq/soap/envelope.cc.o"
  "CMakeFiles/wsq_soap.dir/wsq/soap/envelope.cc.o.d"
  "CMakeFiles/wsq_soap.dir/wsq/soap/message.cc.o"
  "CMakeFiles/wsq_soap.dir/wsq/soap/message.cc.o.d"
  "CMakeFiles/wsq_soap.dir/wsq/soap/xml.cc.o"
  "CMakeFiles/wsq_soap.dir/wsq/soap/xml.cc.o.d"
  "libwsq_soap.a"
  "libwsq_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
