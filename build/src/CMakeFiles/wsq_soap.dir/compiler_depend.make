# Empty compiler generated dependencies file for wsq_soap.
# This may be replaced when dependencies are built.
