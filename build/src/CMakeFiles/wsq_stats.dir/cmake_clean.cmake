file(REMOVE_RECURSE
  "CMakeFiles/wsq_stats.dir/wsq/stats/moving_window.cc.o"
  "CMakeFiles/wsq_stats.dir/wsq/stats/moving_window.cc.o.d"
  "CMakeFiles/wsq_stats.dir/wsq/stats/running_stats.cc.o"
  "CMakeFiles/wsq_stats.dir/wsq/stats/running_stats.cc.o.d"
  "CMakeFiles/wsq_stats.dir/wsq/stats/summary.cc.o"
  "CMakeFiles/wsq_stats.dir/wsq/stats/summary.cc.o.d"
  "libwsq_stats.a"
  "libwsq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
