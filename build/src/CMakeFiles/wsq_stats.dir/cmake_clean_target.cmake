file(REMOVE_RECURSE
  "libwsq_stats.a"
)
