# Empty dependencies file for wsq_stats.
# This may be replaced when dependencies are built.
