file(REMOVE_RECURSE
  "libwsq_linalg.a"
)
