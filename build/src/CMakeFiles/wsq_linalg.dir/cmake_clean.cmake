file(REMOVE_RECURSE
  "CMakeFiles/wsq_linalg.dir/wsq/linalg/least_squares.cc.o"
  "CMakeFiles/wsq_linalg.dir/wsq/linalg/least_squares.cc.o.d"
  "CMakeFiles/wsq_linalg.dir/wsq/linalg/matrix.cc.o"
  "CMakeFiles/wsq_linalg.dir/wsq/linalg/matrix.cc.o.d"
  "CMakeFiles/wsq_linalg.dir/wsq/linalg/rls.cc.o"
  "CMakeFiles/wsq_linalg.dir/wsq/linalg/rls.cc.o.d"
  "libwsq_linalg.a"
  "libwsq_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
