# Empty compiler generated dependencies file for wsq_linalg.
# This may be replaced when dependencies are built.
