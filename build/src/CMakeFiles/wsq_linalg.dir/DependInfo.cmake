
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/linalg/least_squares.cc" "src/CMakeFiles/wsq_linalg.dir/wsq/linalg/least_squares.cc.o" "gcc" "src/CMakeFiles/wsq_linalg.dir/wsq/linalg/least_squares.cc.o.d"
  "/root/repo/src/wsq/linalg/matrix.cc" "src/CMakeFiles/wsq_linalg.dir/wsq/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/wsq_linalg.dir/wsq/linalg/matrix.cc.o.d"
  "/root/repo/src/wsq/linalg/rls.cc" "src/CMakeFiles/wsq_linalg.dir/wsq/linalg/rls.cc.o" "gcc" "src/CMakeFiles/wsq_linalg.dir/wsq/linalg/rls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
