file(REMOVE_RECURSE
  "libwsq_sim.a"
)
