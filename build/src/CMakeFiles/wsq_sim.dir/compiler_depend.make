# Empty compiler generated dependencies file for wsq_sim.
# This may be replaced when dependencies are built.
