file(REMOVE_RECURSE
  "CMakeFiles/wsq_sim.dir/wsq/sim/experiment.cc.o"
  "CMakeFiles/wsq_sim.dir/wsq/sim/experiment.cc.o.d"
  "CMakeFiles/wsq_sim.dir/wsq/sim/ground_truth.cc.o"
  "CMakeFiles/wsq_sim.dir/wsq/sim/ground_truth.cc.o.d"
  "CMakeFiles/wsq_sim.dir/wsq/sim/profile.cc.o"
  "CMakeFiles/wsq_sim.dir/wsq/sim/profile.cc.o.d"
  "CMakeFiles/wsq_sim.dir/wsq/sim/profile_io.cc.o"
  "CMakeFiles/wsq_sim.dir/wsq/sim/profile_io.cc.o.d"
  "CMakeFiles/wsq_sim.dir/wsq/sim/profile_library.cc.o"
  "CMakeFiles/wsq_sim.dir/wsq/sim/profile_library.cc.o.d"
  "CMakeFiles/wsq_sim.dir/wsq/sim/sim_engine.cc.o"
  "CMakeFiles/wsq_sim.dir/wsq/sim/sim_engine.cc.o.d"
  "libwsq_sim.a"
  "libwsq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
