
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/sim/experiment.cc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/experiment.cc.o" "gcc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/experiment.cc.o.d"
  "/root/repo/src/wsq/sim/ground_truth.cc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/ground_truth.cc.o" "gcc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/ground_truth.cc.o.d"
  "/root/repo/src/wsq/sim/profile.cc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/profile.cc.o" "gcc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/profile.cc.o.d"
  "/root/repo/src/wsq/sim/profile_io.cc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/profile_io.cc.o" "gcc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/profile_io.cc.o.d"
  "/root/repo/src/wsq/sim/profile_library.cc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/profile_library.cc.o" "gcc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/profile_library.cc.o.d"
  "/root/repo/src/wsq/sim/sim_engine.cc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/sim_engine.cc.o" "gcc" "src/CMakeFiles/wsq_sim.dir/wsq/sim/sim_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
