# Empty compiler generated dependencies file for wsq_netsim.
# This may be replaced when dependencies are built.
