file(REMOVE_RECURSE
  "CMakeFiles/wsq_netsim.dir/wsq/netsim/link_model.cc.o"
  "CMakeFiles/wsq_netsim.dir/wsq/netsim/link_model.cc.o.d"
  "CMakeFiles/wsq_netsim.dir/wsq/netsim/presets.cc.o"
  "CMakeFiles/wsq_netsim.dir/wsq/netsim/presets.cc.o.d"
  "libwsq_netsim.a"
  "libwsq_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
