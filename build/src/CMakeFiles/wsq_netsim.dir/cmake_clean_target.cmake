file(REMOVE_RECURSE
  "libwsq_netsim.a"
)
