# Empty compiler generated dependencies file for wsq_client.
# This may be replaced when dependencies are built.
