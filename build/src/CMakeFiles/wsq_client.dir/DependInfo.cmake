
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/client/block_fetcher.cc" "src/CMakeFiles/wsq_client.dir/wsq/client/block_fetcher.cc.o" "gcc" "src/CMakeFiles/wsq_client.dir/wsq/client/block_fetcher.cc.o.d"
  "/root/repo/src/wsq/client/block_shipper.cc" "src/CMakeFiles/wsq_client.dir/wsq/client/block_shipper.cc.o" "gcc" "src/CMakeFiles/wsq_client.dir/wsq/client/block_shipper.cc.o.d"
  "/root/repo/src/wsq/client/query_session.cc" "src/CMakeFiles/wsq_client.dir/wsq/client/query_session.cc.o" "gcc" "src/CMakeFiles/wsq_client.dir/wsq/client/query_session.cc.o.d"
  "/root/repo/src/wsq/client/ws_client.cc" "src/CMakeFiles/wsq_client.dir/wsq/client/ws_client.cc.o" "gcc" "src/CMakeFiles/wsq_client.dir/wsq/client/ws_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
