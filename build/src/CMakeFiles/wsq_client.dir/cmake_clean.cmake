file(REMOVE_RECURSE
  "CMakeFiles/wsq_client.dir/wsq/client/block_fetcher.cc.o"
  "CMakeFiles/wsq_client.dir/wsq/client/block_fetcher.cc.o.d"
  "CMakeFiles/wsq_client.dir/wsq/client/block_shipper.cc.o"
  "CMakeFiles/wsq_client.dir/wsq/client/block_shipper.cc.o.d"
  "CMakeFiles/wsq_client.dir/wsq/client/query_session.cc.o"
  "CMakeFiles/wsq_client.dir/wsq/client/query_session.cc.o.d"
  "CMakeFiles/wsq_client.dir/wsq/client/ws_client.cc.o"
  "CMakeFiles/wsq_client.dir/wsq/client/ws_client.cc.o.d"
  "libwsq_client.a"
  "libwsq_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
