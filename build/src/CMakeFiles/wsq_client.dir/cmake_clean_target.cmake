file(REMOVE_RECURSE
  "libwsq_client.a"
)
