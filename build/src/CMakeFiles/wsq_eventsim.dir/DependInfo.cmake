
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsq/eventsim/event_sim.cc" "src/CMakeFiles/wsq_eventsim.dir/wsq/eventsim/event_sim.cc.o" "gcc" "src/CMakeFiles/wsq_eventsim.dir/wsq/eventsim/event_sim.cc.o.d"
  "/root/repo/src/wsq/eventsim/ps_server.cc" "src/CMakeFiles/wsq_eventsim.dir/wsq/eventsim/ps_server.cc.o" "gcc" "src/CMakeFiles/wsq_eventsim.dir/wsq/eventsim/ps_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
