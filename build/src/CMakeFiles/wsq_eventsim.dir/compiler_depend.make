# Empty compiler generated dependencies file for wsq_eventsim.
# This may be replaced when dependencies are built.
