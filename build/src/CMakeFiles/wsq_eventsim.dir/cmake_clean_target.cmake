file(REMOVE_RECURSE
  "libwsq_eventsim.a"
)
