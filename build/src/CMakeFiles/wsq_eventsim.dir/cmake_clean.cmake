file(REMOVE_RECURSE
  "CMakeFiles/wsq_eventsim.dir/wsq/eventsim/event_sim.cc.o"
  "CMakeFiles/wsq_eventsim.dir/wsq/eventsim/event_sim.cc.o.d"
  "CMakeFiles/wsq_eventsim.dir/wsq/eventsim/ps_server.cc.o"
  "CMakeFiles/wsq_eventsim.dir/wsq/eventsim/ps_server.cc.o.d"
  "libwsq_eventsim.a"
  "libwsq_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
