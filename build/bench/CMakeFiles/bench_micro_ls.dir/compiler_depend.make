# Empty compiler generated dependencies file for bench_micro_ls.
# This may be replaced when dependencies are built.
