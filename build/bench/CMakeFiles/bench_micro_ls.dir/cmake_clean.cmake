file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ls.dir/bench_micro_ls.cc.o"
  "CMakeFiles/bench_micro_ls.dir/bench_micro_ls.cc.o.d"
  "bench_micro_ls"
  "bench_micro_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
