# Empty dependencies file for bench_fig6_lan_conf21.
# This may be replaced when dependencies are built.
