file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_soap.dir/bench_micro_soap.cc.o"
  "CMakeFiles/bench_micro_soap.dir/bench_micro_soap.cc.o.d"
  "bench_micro_soap"
  "bench_micro_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
