# Empty compiler generated dependencies file for bench_micro_soap.
# This may be replaced when dependencies are built.
