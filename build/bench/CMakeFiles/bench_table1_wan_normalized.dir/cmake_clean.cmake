file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_wan_normalized.dir/bench_table1_wan_normalized.cc.o"
  "CMakeFiles/bench_table1_wan_normalized.dir/bench_table1_wan_normalized.cc.o.d"
  "bench_table1_wan_normalized"
  "bench_table1_wan_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_wan_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
