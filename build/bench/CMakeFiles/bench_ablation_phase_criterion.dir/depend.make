# Empty dependencies file for bench_ablation_phase_criterion.
# This may be replaced when dependencies are built.
