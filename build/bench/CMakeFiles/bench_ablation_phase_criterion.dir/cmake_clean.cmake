file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_phase_criterion.dir/bench_ablation_phase_criterion.cc.o"
  "CMakeFiles/bench_ablation_phase_criterion.dir/bench_ablation_phase_criterion.cc.o.d"
  "bench_ablation_phase_criterion"
  "bench_ablation_phase_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_phase_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
