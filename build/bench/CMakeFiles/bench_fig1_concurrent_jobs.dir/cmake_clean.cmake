file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_concurrent_jobs.dir/bench_fig1_concurrent_jobs.cc.o"
  "CMakeFiles/bench_fig1_concurrent_jobs.dir/bench_fig1_concurrent_jobs.cc.o.d"
  "bench_fig1_concurrent_jobs"
  "bench_fig1_concurrent_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_concurrent_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
