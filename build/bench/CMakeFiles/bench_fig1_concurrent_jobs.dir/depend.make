# Empty dependencies file for bench_fig1_concurrent_jobs.
# This may be replaced when dependencies are built.
