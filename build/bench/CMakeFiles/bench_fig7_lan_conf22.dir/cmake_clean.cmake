file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lan_conf22.dir/bench_fig7_lan_conf22.cc.o"
  "CMakeFiles/bench_fig7_lan_conf22.dir/bench_fig7_lan_conf22.cc.o.d"
  "bench_fig7_lan_conf22"
  "bench_fig7_lan_conf22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lan_conf22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
