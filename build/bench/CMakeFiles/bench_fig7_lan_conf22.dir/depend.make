# Empty dependencies file for bench_fig7_lan_conf22.
# This may be replaced when dependencies are built.
