# Empty dependencies file for bench_ablation_model_samples.
# This may be replaced when dependencies are built.
