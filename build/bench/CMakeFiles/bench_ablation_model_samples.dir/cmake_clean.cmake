file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_model_samples.dir/bench_ablation_model_samples.cc.o"
  "CMakeFiles/bench_ablation_model_samples.dir/bench_ablation_model_samples.cc.o.d"
  "bench_ablation_model_samples"
  "bench_ablation_model_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_model_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
