file(REMOVE_RECURSE
  "CMakeFiles/bench_linear_schemes.dir/bench_linear_schemes.cc.o"
  "CMakeFiles/bench_linear_schemes.dir/bench_linear_schemes.cc.o.d"
  "bench_linear_schemes"
  "bench_linear_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
