# Empty compiler generated dependencies file for bench_linear_schemes.
# This may be replaced when dependencies are built.
