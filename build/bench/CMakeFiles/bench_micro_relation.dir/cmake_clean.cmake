file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_relation.dir/bench_micro_relation.cc.o"
  "CMakeFiles/bench_micro_relation.dir/bench_micro_relation.cc.o.d"
  "bench_micro_relation"
  "bench_micro_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
