# Empty compiler generated dependencies file for bench_micro_relation.
# This may be replaced when dependencies are built.
