file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_averaging.dir/bench_ablation_averaging.cc.o"
  "CMakeFiles/bench_ablation_averaging.dir/bench_ablation_averaging.cc.o.d"
  "bench_ablation_averaging"
  "bench_ablation_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
