file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dither.dir/bench_ablation_dither.cc.o"
  "CMakeFiles/bench_ablation_dither.dir/bench_ablation_dither.cc.o.d"
  "bench_ablation_dither"
  "bench_ablation_dither.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dither.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
