# Empty compiler generated dependencies file for bench_ablation_dither.
# This may be replaced when dependencies are built.
