# Empty dependencies file for bench_fig4_wan_decisions.
# This may be replaced when dependencies are built.
