file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wan_decisions.dir/bench_fig4_wan_decisions.cc.o"
  "CMakeFiles/bench_fig4_wan_decisions.dir/bench_fig4_wan_decisions.cc.o.d"
  "bench_fig4_wan_decisions"
  "bench_fig4_wan_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wan_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
