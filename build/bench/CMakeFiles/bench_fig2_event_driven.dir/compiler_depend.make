# Empty compiler generated dependencies file for bench_fig2_event_driven.
# This may be replaced when dependencies are built.
