file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_model_based.dir/bench_table2_model_based.cc.o"
  "CMakeFiles/bench_table2_model_based.dir/bench_table2_model_based.cc.o.d"
  "bench_table2_model_based"
  "bench_table2_model_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_model_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
