# Empty compiler generated dependencies file for bench_table2_model_based.
# This may be replaced when dependencies are built.
