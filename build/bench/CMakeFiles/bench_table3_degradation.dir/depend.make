# Empty dependencies file for bench_table3_degradation.
# This may be replaced when dependencies are built.
