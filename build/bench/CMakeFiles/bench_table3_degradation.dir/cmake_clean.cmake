file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_degradation.dir/bench_table3_degradation.cc.o"
  "CMakeFiles/bench_table3_degradation.dir/bench_table3_degradation.cc.o.d"
  "bench_table3_degradation"
  "bench_table3_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
