file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_controllers.dir/bench_micro_controllers.cc.o"
  "CMakeFiles/bench_micro_controllers.dir/bench_micro_controllers.cc.o.d"
  "bench_micro_controllers"
  "bench_micro_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
