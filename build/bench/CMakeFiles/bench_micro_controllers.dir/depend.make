# Empty dependencies file for bench_micro_controllers.
# This may be replaced when dependencies are built.
