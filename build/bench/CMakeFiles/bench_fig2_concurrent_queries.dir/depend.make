# Empty dependencies file for bench_fig2_concurrent_queries.
# This may be replaced when dependencies are built.
