file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_enhanced_model_based.dir/bench_fig9_enhanced_model_based.cc.o"
  "CMakeFiles/bench_fig9_enhanced_model_based.dir/bench_fig9_enhanced_model_based.cc.o.d"
  "bench_fig9_enhanced_model_based"
  "bench_fig9_enhanced_model_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_enhanced_model_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
