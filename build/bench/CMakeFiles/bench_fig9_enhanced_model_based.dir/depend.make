# Empty dependencies file for bench_fig9_enhanced_model_based.
# This may be replaced when dependencies are built.
