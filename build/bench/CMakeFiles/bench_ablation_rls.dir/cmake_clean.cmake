file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rls.dir/bench_ablation_rls.cc.o"
  "CMakeFiles/bench_ablation_rls.dir/bench_ablation_rls.cc.o.d"
  "bench_ablation_rls"
  "bench_ablation_rls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
