# Empty dependencies file for bench_ablation_rls.
# This may be replaced when dependencies are built.
