file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_wan_fixed_profiles.dir/bench_fig3_wan_fixed_profiles.cc.o"
  "CMakeFiles/bench_fig3_wan_fixed_profiles.dir/bench_fig3_wan_fixed_profiles.cc.o.d"
  "bench_fig3_wan_fixed_profiles"
  "bench_fig3_wan_fixed_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_wan_fixed_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
