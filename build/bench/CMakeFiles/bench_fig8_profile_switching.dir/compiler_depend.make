# Empty compiler generated dependencies file for bench_fig8_profile_switching.
# This may be replaced when dependencies are built.
