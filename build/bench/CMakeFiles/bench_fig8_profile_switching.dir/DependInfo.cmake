
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_profile_switching.cc" "bench/CMakeFiles/bench_fig8_profile_switching.dir/bench_fig8_profile_switching.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_profile_switching.dir/bench_fig8_profile_switching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsq_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
