# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/wsq_common_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_linalg_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_stats_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_relation_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_soap_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_netsim_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_server_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_client_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_control_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_sim_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_integration_test[1]_include.cmake")
include("/root/repo/build/tests/wsq_eventsim_test[1]_include.cmake")
