file(REMOVE_RECURSE
  "CMakeFiles/wsq_server_test.dir/server/container_test.cc.o"
  "CMakeFiles/wsq_server_test.dir/server/container_test.cc.o.d"
  "CMakeFiles/wsq_server_test.dir/server/data_service_test.cc.o"
  "CMakeFiles/wsq_server_test.dir/server/data_service_test.cc.o.d"
  "CMakeFiles/wsq_server_test.dir/server/dbms_test.cc.o"
  "CMakeFiles/wsq_server_test.dir/server/dbms_test.cc.o.d"
  "CMakeFiles/wsq_server_test.dir/server/load_model_test.cc.o"
  "CMakeFiles/wsq_server_test.dir/server/load_model_test.cc.o.d"
  "CMakeFiles/wsq_server_test.dir/server/processing_service_test.cc.o"
  "CMakeFiles/wsq_server_test.dir/server/processing_service_test.cc.o.d"
  "wsq_server_test"
  "wsq_server_test.pdb"
  "wsq_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
