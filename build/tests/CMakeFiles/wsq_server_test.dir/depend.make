# Empty dependencies file for wsq_server_test.
# This may be replaced when dependencies are built.
