# Empty compiler generated dependencies file for wsq_stats_test.
# This may be replaced when dependencies are built.
