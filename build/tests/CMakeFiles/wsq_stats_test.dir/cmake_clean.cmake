file(REMOVE_RECURSE
  "CMakeFiles/wsq_stats_test.dir/stats/moving_window_test.cc.o"
  "CMakeFiles/wsq_stats_test.dir/stats/moving_window_test.cc.o.d"
  "CMakeFiles/wsq_stats_test.dir/stats/running_stats_test.cc.o"
  "CMakeFiles/wsq_stats_test.dir/stats/running_stats_test.cc.o.d"
  "CMakeFiles/wsq_stats_test.dir/stats/summary_test.cc.o"
  "CMakeFiles/wsq_stats_test.dir/stats/summary_test.cc.o.d"
  "wsq_stats_test"
  "wsq_stats_test.pdb"
  "wsq_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
