# Empty dependencies file for wsq_relation_test.
# This may be replaced when dependencies are built.
