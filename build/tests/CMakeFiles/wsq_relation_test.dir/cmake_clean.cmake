file(REMOVE_RECURSE
  "CMakeFiles/wsq_relation_test.dir/relation/predicate_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/predicate_test.cc.o.d"
  "CMakeFiles/wsq_relation_test.dir/relation/query_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/query_test.cc.o.d"
  "CMakeFiles/wsq_relation_test.dir/relation/schema_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/schema_test.cc.o.d"
  "CMakeFiles/wsq_relation_test.dir/relation/serializer_property_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/serializer_property_test.cc.o.d"
  "CMakeFiles/wsq_relation_test.dir/relation/tpch_gen_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/tpch_gen_test.cc.o.d"
  "CMakeFiles/wsq_relation_test.dir/relation/tuple_serializer_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/tuple_serializer_test.cc.o.d"
  "CMakeFiles/wsq_relation_test.dir/relation/tuple_table_test.cc.o"
  "CMakeFiles/wsq_relation_test.dir/relation/tuple_table_test.cc.o.d"
  "wsq_relation_test"
  "wsq_relation_test.pdb"
  "wsq_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
