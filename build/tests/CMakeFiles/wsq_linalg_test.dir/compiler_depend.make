# Empty compiler generated dependencies file for wsq_linalg_test.
# This may be replaced when dependencies are built.
