file(REMOVE_RECURSE
  "CMakeFiles/wsq_linalg_test.dir/linalg/least_squares_test.cc.o"
  "CMakeFiles/wsq_linalg_test.dir/linalg/least_squares_test.cc.o.d"
  "CMakeFiles/wsq_linalg_test.dir/linalg/matrix_test.cc.o"
  "CMakeFiles/wsq_linalg_test.dir/linalg/matrix_test.cc.o.d"
  "CMakeFiles/wsq_linalg_test.dir/linalg/rls_test.cc.o"
  "CMakeFiles/wsq_linalg_test.dir/linalg/rls_test.cc.o.d"
  "wsq_linalg_test"
  "wsq_linalg_test.pdb"
  "wsq_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
