# Empty compiler generated dependencies file for wsq_sim_test.
# This may be replaced when dependencies are built.
