file(REMOVE_RECURSE
  "CMakeFiles/wsq_sim_test.dir/sim/experiment_test.cc.o"
  "CMakeFiles/wsq_sim_test.dir/sim/experiment_test.cc.o.d"
  "CMakeFiles/wsq_sim_test.dir/sim/ground_truth_test.cc.o"
  "CMakeFiles/wsq_sim_test.dir/sim/ground_truth_test.cc.o.d"
  "CMakeFiles/wsq_sim_test.dir/sim/profile_io_test.cc.o"
  "CMakeFiles/wsq_sim_test.dir/sim/profile_io_test.cc.o.d"
  "CMakeFiles/wsq_sim_test.dir/sim/profile_library_test.cc.o"
  "CMakeFiles/wsq_sim_test.dir/sim/profile_library_test.cc.o.d"
  "CMakeFiles/wsq_sim_test.dir/sim/profile_test.cc.o"
  "CMakeFiles/wsq_sim_test.dir/sim/profile_test.cc.o.d"
  "CMakeFiles/wsq_sim_test.dir/sim/sim_engine_test.cc.o"
  "CMakeFiles/wsq_sim_test.dir/sim/sim_engine_test.cc.o.d"
  "wsq_sim_test"
  "wsq_sim_test.pdb"
  "wsq_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
