# Empty dependencies file for wsq_client_test.
# This may be replaced when dependencies are built.
