file(REMOVE_RECURSE
  "CMakeFiles/wsq_client_test.dir/client/block_shipper_test.cc.o"
  "CMakeFiles/wsq_client_test.dir/client/block_shipper_test.cc.o.d"
  "CMakeFiles/wsq_client_test.dir/client/client_test.cc.o"
  "CMakeFiles/wsq_client_test.dir/client/client_test.cc.o.d"
  "CMakeFiles/wsq_client_test.dir/client/failure_injection_test.cc.o"
  "CMakeFiles/wsq_client_test.dir/client/failure_injection_test.cc.o.d"
  "wsq_client_test"
  "wsq_client_test.pdb"
  "wsq_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
