# Empty dependencies file for wsq_integration_test.
# This may be replaced when dependencies are built.
