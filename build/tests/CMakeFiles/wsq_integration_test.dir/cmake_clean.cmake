file(REMOVE_RECURSE
  "CMakeFiles/wsq_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/wsq_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/wsq_integration_test.dir/integration/paper_properties_test.cc.o"
  "CMakeFiles/wsq_integration_test.dir/integration/paper_properties_test.cc.o.d"
  "wsq_integration_test"
  "wsq_integration_test.pdb"
  "wsq_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
