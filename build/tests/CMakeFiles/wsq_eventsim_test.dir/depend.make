# Empty dependencies file for wsq_eventsim_test.
# This may be replaced when dependencies are built.
