file(REMOVE_RECURSE
  "CMakeFiles/wsq_eventsim_test.dir/eventsim/event_sim_test.cc.o"
  "CMakeFiles/wsq_eventsim_test.dir/eventsim/event_sim_test.cc.o.d"
  "CMakeFiles/wsq_eventsim_test.dir/eventsim/ps_server_test.cc.o"
  "CMakeFiles/wsq_eventsim_test.dir/eventsim/ps_server_test.cc.o.d"
  "wsq_eventsim_test"
  "wsq_eventsim_test.pdb"
  "wsq_eventsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_eventsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
