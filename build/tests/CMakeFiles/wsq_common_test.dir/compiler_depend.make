# Empty compiler generated dependencies file for wsq_common_test.
# This may be replaced when dependencies are built.
