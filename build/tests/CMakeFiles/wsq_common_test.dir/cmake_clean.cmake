file(REMOVE_RECURSE
  "CMakeFiles/wsq_common_test.dir/common/clock_test.cc.o"
  "CMakeFiles/wsq_common_test.dir/common/clock_test.cc.o.d"
  "CMakeFiles/wsq_common_test.dir/common/csv_writer_test.cc.o"
  "CMakeFiles/wsq_common_test.dir/common/csv_writer_test.cc.o.d"
  "CMakeFiles/wsq_common_test.dir/common/logging_test.cc.o"
  "CMakeFiles/wsq_common_test.dir/common/logging_test.cc.o.d"
  "CMakeFiles/wsq_common_test.dir/common/random_test.cc.o"
  "CMakeFiles/wsq_common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/wsq_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/wsq_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/wsq_common_test.dir/common/text_table_test.cc.o"
  "CMakeFiles/wsq_common_test.dir/common/text_table_test.cc.o.d"
  "wsq_common_test"
  "wsq_common_test.pdb"
  "wsq_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
