file(REMOVE_RECURSE
  "CMakeFiles/wsq_soap_test.dir/soap/envelope_test.cc.o"
  "CMakeFiles/wsq_soap_test.dir/soap/envelope_test.cc.o.d"
  "CMakeFiles/wsq_soap_test.dir/soap/message_test.cc.o"
  "CMakeFiles/wsq_soap_test.dir/soap/message_test.cc.o.d"
  "CMakeFiles/wsq_soap_test.dir/soap/xml_property_test.cc.o"
  "CMakeFiles/wsq_soap_test.dir/soap/xml_property_test.cc.o.d"
  "CMakeFiles/wsq_soap_test.dir/soap/xml_test.cc.o"
  "CMakeFiles/wsq_soap_test.dir/soap/xml_test.cc.o.d"
  "wsq_soap_test"
  "wsq_soap_test.pdb"
  "wsq_soap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_soap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
