# Empty compiler generated dependencies file for wsq_soap_test.
# This may be replaced when dependencies are built.
