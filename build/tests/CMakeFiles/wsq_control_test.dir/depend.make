# Empty dependencies file for wsq_control_test.
# This may be replaced when dependencies are built.
