file(REMOVE_RECURSE
  "CMakeFiles/wsq_control_test.dir/control/controller_factory_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/controller_factory_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/controller_property_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/controller_property_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/fixed_controller_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/fixed_controller_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/hybrid_controller_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/hybrid_controller_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/mimd_controller_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/mimd_controller_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/model_based_controller_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/model_based_controller_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/self_tuning_controller_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/self_tuning_controller_test.cc.o.d"
  "CMakeFiles/wsq_control_test.dir/control/switching_controller_test.cc.o"
  "CMakeFiles/wsq_control_test.dir/control/switching_controller_test.cc.o.d"
  "wsq_control_test"
  "wsq_control_test.pdb"
  "wsq_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
