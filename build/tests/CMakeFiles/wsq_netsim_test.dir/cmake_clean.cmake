file(REMOVE_RECURSE
  "CMakeFiles/wsq_netsim_test.dir/netsim/link_model_test.cc.o"
  "CMakeFiles/wsq_netsim_test.dir/netsim/link_model_test.cc.o.d"
  "wsq_netsim_test"
  "wsq_netsim_test.pdb"
  "wsq_netsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_netsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
