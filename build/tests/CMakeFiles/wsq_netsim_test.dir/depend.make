# Empty dependencies file for wsq_netsim_test.
# This may be replaced when dependencies are built.
